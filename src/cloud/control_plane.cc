#include "cloud/control_plane.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace cloud {

void
ProvisionerPort::startMigration(Lease &lease, unsigned destSlot)
{
    sim::fatal("this provisioner port cannot migrate (lease ",
               lease.id(), " -> slot ", destSlot, ")");
}

ControlPlane::ControlPlane(sim::EventQueue &eq, std::string name,
                           ControlPlaneParams params,
                           ProvisionerPort &port)
    : sim::SimObject(eq, std::move(name)),
      prm_(params),
      port_(port),
      queue_(params.queue),
      obsTrack_(SimObject::name())
{
    const unsigned slots = port_.slots();
    sim::fatalIf(slots == 0, "control plane needs a machine pool");
    slotOwner_.assign(slots, nullptr);
    unsigned racks = 0;
    for (unsigned s = 0; s < slots; ++s)
        racks = std::max(racks, port_.rackOfSlot(s) + 1);
    rackLoad_.assign(racks, 0);
    rackUsable_.assign(racks, true);
    rackDownUntil_.assign(racks, 0);
}

Lease *
ControlPlane::submit(LeaseRequest rq, Lease::ServingFn onServing,
                     Lease::RejectedFn onRejected)
{
    auto owned = std::make_unique<Lease>();
    Lease &l = *owned;
    leases_.push_back(std::move(owned));

    l.id_ = nextId_++;
    l.image_ = std::move(rq.image);
    l.tenant_ = rq.tenant;
    l.qos_ = rq.qos;
    l.failFast_ = rq.failFast;
    l.submittedAt_ = now();
    l.onServing_ = std::move(onServing);
    l.onRejected_ = std::move(onRejected);
    ++stats_.submitted;

    RejectReason why = queue_.push(l);
    if (why != RejectReason::None) {
        reject(l, why);
        return &l;
    }
    noteQueueDepth();
    pump();

    if (l.state_ == LeaseState::Queued && l.failFast_) {
        // The legacy blocking contract: no machine now means no
        // machine at all. Distinguish a full region from a region
        // with capacity stranded in unusable racks.
        queue_.remove(l);
        noteQueueDepth();
        reject(l, freeSlots() == 0 ? RejectReason::RegionFull
                                   : RejectReason::NoUsableRack);
    }
    return &l;
}

void
ControlPlane::reject(Lease &l, RejectReason why)
{
    l.state_ = LeaseState::Rejected;
    l.reject_ = why;
    l.releasedAt_ = now();
    ++stats_.rejected[static_cast<unsigned>(why)];
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.instant(obsTrack_.id(t), "cloud", rejectReasonName(why),
                  now());
    }
    if (l.onRejected_)
        l.onRejected_(l);
}

void
ControlPlane::pump()
{
    // Strict priority with head-of-line blocking: while a Critical
    // lease cannot be placed, nothing below it may jump the line (a
    // Scavenger lease sneaking onto the last usable slot is exactly
    // the inversion the classes exist to prevent).
    while (Lease *head = queue_.head()) {
        if (!tryPlace(*head))
            break;
    }
}

unsigned
ControlPlane::pickSlot() const
{
    const unsigned slots = port_.slots();
    unsigned best = slots;
    unsigned bestLoad = 0;
    std::uint64_t bestScore = 0;
    for (unsigned s = 0; s < slots; ++s) {
        if (slotOwner_[s] != nullptr)
            continue;
        const unsigned rack = port_.rackOfSlot(s);
        if (!rackUsable_[rack])
            continue;
        const unsigned load = rackLoad_[rack];
        const std::uint64_t score = port_.rackScore(rack);
        // Strict lexicographic improvement, slots ascending: ties
        // keep the earliest slot, which is exactly the historical
        // Cloud::provision placement when all racks are usable and
        // the port reports no congestion.
        if (best == slots || load < bestLoad ||
            (load == bestLoad && score < bestScore)) {
            best = s;
            bestLoad = load;
            bestScore = score;
        }
    }
    return best;
}

bool
ControlPlane::tryPlace(Lease &l)
{
    const unsigned slot = pickSlot();
    if (slot == port_.slots())
        return false;

    queue_.remove(l);
    noteQueueDepth();
    l.state_ = LeaseState::Placing;
    l.slot_ = slot;
    l.rack_ = port_.rackOfSlot(slot);
    l.placedAt_ = now();
    slotOwner_[slot] = &l;
    ++rackLoad_[l.rack_];
    ++stats_.placed;
    admissionLat_.record(l.admissionLatency());
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.asyncBegin(obsTrack_.id(t), "cloud", "lease", l.id_, now());
    }
    l.state_ = LeaseState::Deploying;
    port_.startDeployment(l);
    return true;
}

void
ControlPlane::noteServing(std::uint64_t leaseId)
{
    Lease *l = leaseById(leaseId);
    sim::fatalIf(l == nullptr, "noteServing for unknown lease");
    if (l->state_ != LeaseState::Deploying)
        return; // released (or canceled) while the image was landing
    l->state_ = LeaseState::Serving;
    l->servingAt_ = now();
    ++stats_.served;
    if (l->onServing_)
        l->onServing_(*l);
}

void
ControlPlane::release(Lease &l)
{
    sim::fatalIf(l.terminal() || l.state_ == LeaseState::Releasing,
                 "release of lease ", l.id_, " in state ",
                 leaseStateName(l.state_));
    if (l.state_ == LeaseState::Queued) {
        queue_.remove(l);
        noteQueueDepth();
        l.state_ = LeaseState::Released;
        l.releasedAt_ = now();
        ++stats_.canceled;
        return;
    }
    l.state_ = LeaseState::Releasing;
    port_.startRelease(l);
}

MigrateReject
ControlPlane::migrate(std::uint64_t leaseId, unsigned destSlot)
{
    Lease *l = leaseById(leaseId);
    sim::fatalIf(l == nullptr, "migrate for unknown lease");
    sim::fatalIf(destSlot >= port_.slots(),
                 "migrate to slot ", destSlot, " outside the pool");

    MigrateReject why = MigrateReject::None;
    if (l->state_ != LeaseState::Serving)
        why = MigrateReject::NotServing;
    else if (destSlot == l->slot_)
        why = MigrateReject::SameSlot;
    else if (slotOwner_[destSlot] != nullptr)
        why = MigrateReject::DestBusy;
    else if (!rackUsable_[port_.rackOfSlot(destSlot)])
        why = MigrateReject::DestRackDown;
    if (why != MigrateReject::None) {
        ++stats_.migrateRejected[static_cast<unsigned>(why)];
        if (obs::armed()) {
            obs::Tracer &t = obs::tracer();
            t.instant(obsTrack_.id(t), "cloud",
                      migrateRejectName(why), now());
        }
        return why;
    }

    // Reserve the destination before the port runs: a concurrent
    // placement must not land on the slot the stream is filling.
    slotOwner_[destSlot] = l;
    ++rackLoad_[port_.rackOfSlot(destSlot)];
    l->migrateTo_ = destSlot;
    l->migratePending_ = true;
    l->state_ = LeaseState::Migrating;
    port_.startMigration(*l, destSlot);
    return MigrateReject::None;
}

void
ControlPlane::noteMigrated(std::uint64_t leaseId)
{
    Lease *l = leaseById(leaseId);
    sim::fatalIf(l == nullptr, "noteMigrated for unknown lease");
    if (l->state_ != LeaseState::Migrating)
        return; // a release raced the migration and won
    const unsigned oldSlot = l->slot_;
    l->slot_ = l->migrateTo_;
    l->rack_ = port_.rackOfSlot(l->slot_);
    l->migratePending_ = false;
    l->state_ = LeaseState::Serving;
    l->migratedAt_ = now();
    ++stats_.migrated;
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.instant(obsTrack_.id(t), "cloud", "migrated", now());
    }
    reclaimSlot(oldSlot);
}

void
ControlPlane::noteMigrationFailed(std::uint64_t leaseId)
{
    Lease *l = leaseById(leaseId);
    sim::fatalIf(l == nullptr,
                 "noteMigrationFailed for unknown lease");
    if (l->state_ != LeaseState::Migrating)
        return; // a release raced the migration and won
    const unsigned dest = l->migrateTo_;
    l->migratePending_ = false;
    l->state_ = LeaseState::Serving; // still on the source slot
    ++stats_.migrateFailed;
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.instant(obsTrack_.id(t), "cloud", "migrate_failed", now());
    }
    reclaimSlot(dest);
}

void
ControlPlane::reclaimSlot(unsigned slot)
{
    auto freeIt = [this, slot] {
        slotOwner_[slot] = nullptr;
        --rackLoad_[port_.rackOfSlot(slot)];
        pump();
    };
    if (prm_.scrubTime == 0) {
        freeIt();
        return;
    }
    schedule(prm_.scrubTime, freeIt);
}

void
ControlPlane::noteReleased(std::uint64_t leaseId)
{
    Lease *l = leaseById(leaseId);
    sim::fatalIf(l == nullptr || l->state_ != LeaseState::Releasing,
                 "noteReleased for lease not releasing");
    if (prm_.scrubTime == 0) {
        finishRelease(*l); // legacy synchronous path: no events
        return;
    }
    schedule(prm_.scrubTime, [this, l] { finishRelease(*l); });
}

void
ControlPlane::finishRelease(Lease &l)
{
    slotOwner_[l.slot_] = nullptr;
    --rackLoad_[l.rack_];
    if (l.migratePending_) {
        // A release that raced a live migration owns two slots: the
        // reserved destination returns to the pool with the source.
        slotOwner_[l.migrateTo_] = nullptr;
        --rackLoad_[port_.rackOfSlot(l.migrateTo_)];
        l.migratePending_ = false;
    }
    l.state_ = LeaseState::Released;
    l.releasedAt_ = now();
    ++stats_.released;
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.asyncEnd(obsTrack_.id(t), "cloud", "lease", l.id_, now());
    }
    pump();
}

void
ControlPlane::setRackUsable(unsigned rack, bool usable)
{
    const bool was = rackUsable_.at(rack);
    rackUsable_[rack] = usable;
    if (usable && !was)
        pump();
}

bool
ControlPlane::rackUsable(unsigned rack) const
{
    return rackUsable_.at(rack);
}

void
ControlPlane::armRackHealthProbe(sim::FaultInjector *fi,
                                 sim::Tick period)
{
    sim::fatalIf(fi == nullptr || period == 0,
                 "rack health probe needs an injector and a period");
    healthFi_ = fi;
    probePeriod_ = period;
    schedulePeriodic(period, [this] { probeRackHealth(); });
}

void
ControlPlane::probeRackHealth()
{
    for (unsigned r = 0; r < rackUsable_.size(); ++r) {
        if (rackDownUntil_[r] != 0) {
            if (now() >= rackDownUntil_[r]) {
                rackDownUntil_[r] = 0;
                healthFi_->noteFired(sim::FaultSite::RackRecover);
                sim::inform(name(), ": rack ", r, " recovered");
                setRackUsable(r, true);
            }
            continue;
        }
        if (healthFi_->shouldFire(sim::FaultSite::RackOutage, r)) {
            rackDownUntil_[r] =
                now() + healthFi_->magnitude(
                            sim::FaultSite::RackOutage, 10 * sim::kSec);
            sim::inform(name(), ": rack ", r, " out until ",
                        rackDownUntil_[r]);
            setRackUsable(r, false);
        }
    }
}

unsigned
ControlPlane::freeSlots() const
{
    return static_cast<unsigned>(
        std::count(slotOwner_.begin(), slotOwner_.end(), nullptr));
}

unsigned
ControlPlane::busySlots() const
{
    return static_cast<unsigned>(slotOwner_.size()) - freeSlots();
}

unsigned
ControlPlane::rackLoad(unsigned rack) const
{
    return rackLoad_.at(rack);
}

Lease *
ControlPlane::leaseById(std::uint64_t id)
{
    // Ids are dense and start at 1; leases_ is append-only.
    if (id == 0 || id > leases_.size())
        return nullptr;
    return leases_[id - 1].get();
}

void
ControlPlane::noteQueueDepth()
{
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.counter(obsTrack_.id(t), "queue_depth", now(),
                  static_cast<double>(queue_.depth()));
    }
}

void
ControlPlane::publish(obs::Registry &reg,
                      const std::string &prefix) const
{
    reg.counter(prefix + "cp.submitted").set(stats_.submitted);
    reg.counter(prefix + "cp.placed").set(stats_.placed);
    reg.counter(prefix + "cp.served").set(stats_.served);
    reg.counter(prefix + "cp.released").set(stats_.released);
    reg.counter(prefix + "cp.canceled").set(stats_.canceled);
    for (unsigned r = 1; r < stats_.rejected.size(); ++r) {
        reg.counter(prefix + "cp.rejected",
                    rejectReasonName(static_cast<RejectReason>(r)))
            .set(stats_.rejected[r]);
    }
    reg.counter(prefix + "cp.migrated").set(stats_.migrated);
    reg.counter(prefix + "cp.migrate_failed").set(stats_.migrateFailed);
    for (unsigned r = 1; r < stats_.migrateRejected.size(); ++r) {
        reg.counter(prefix + "cp.migrate_rejected",
                    migrateRejectName(static_cast<MigrateReject>(r)))
            .set(stats_.migrateRejected[r]);
    }
    reg.gauge(prefix + "cp.queue_depth")
        .set(static_cast<double>(queue_.depth()));
    reg.counter(prefix + "cp.queue_peak").set(queue_.peakDepth());
    for (std::size_t r = 0; r < rackLoad_.size(); ++r) {
        reg.gauge(prefix + "cp.rack_load",
                  "rack" + std::to_string(r))
            .set(static_cast<double>(rackLoad_[r]));
    }
    reg.gauge(prefix + "cp.admission_latency_ns", "p50")
        .set(static_cast<double>(admissionLat_.quantile(0.5)));
    reg.gauge(prefix + "cp.admission_latency_ns", "p99")
        .set(static_cast<double>(admissionLat_.quantile(0.99)));
    reg.gauge(prefix + "cp.admission_latency_ns", "max")
        .set(static_cast<double>(admissionLat_.max()));
}

} // namespace cloud
