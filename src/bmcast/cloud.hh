/**
 * @file
 * Provider-side facade: a bare-metal cloud region built on BMcast.
 *
 * Owns the management network, the image server and the machine
 * pool, and exposes the one operation a control plane needs:
 * provision a bare-metal instance from a named image, quickly
 * (§1: on-demand self-service, rapid elasticity). Each provisioned
 * instance runs the full BMcast pipeline and reports its lifecycle.
 */

#ifndef BMCAST_CLOUD_HH
#define BMCAST_CLOUD_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aoe/server.hh"
#include "bmcast/deployer.hh"
#include "guest/guest_os.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "simcore/sim_object.hh"
#include "store/fabric.hh"

namespace bmcast {

/** Region-wide configuration. */
struct CloudConfig
{
    /** Machines racked in the region. */
    unsigned machines = 4;
    /**
     * Racks the pool is striped over (machine i lives in rack
     * i % racks). Placement is rack-aware: provision() leases from
     * the least-loaded rack, spreading a deployment storm across
     * failure domains instead of filling rack 0 first. With the
     * default single rack, placement degenerates to the historical
     * lowest-free-slot order.
     */
    unsigned racks = 1;
    hw::StorageKind storage = hw::StorageKind::Ahci;
    hw::MachineConfig machineTemplate;
    aoe::ServerParams server;
    VmmParams vmm;
    guest::GuestOsParams guestTemplate;
    /** Cold firmware init on first power-on. */
    bool coldFirmware = false;
    /** Store tier; disabled keeps the legacy single image server. */
    store::StoreParams store;
};

/** One leased instance. */
class Instance
{
  public:
    enum class State { Provisioning, Serving, BareMetal, Released };

    State state() const { return state_; }
    hw::Machine &machine() { return *machine_; }
    guest::GuestOs &guest() { return *guest_; }
    BmcastDeployer &deployer() { return *deployer_; }
    const std::string &image() const { return image_; }
    /** Rack the leased machine lives in. */
    unsigned rack() const { return rack_; }

    /** Seconds from the provision request to a serving guest. */
    double
    timeToServingSec() const
    {
        const auto &tl = deployer_->timeline();
        return sim::toSeconds(tl.guestBootDone - tl.powerOn);
    }

  private:
    friend class Cloud;

    State state_ = State::Provisioning;
    std::string image_;
    unsigned rack_ = 0;
    hw::Machine *machine_ = nullptr;
    std::unique_ptr<guest::GuestOs> guest_;
    std::unique_ptr<BmcastDeployer> deployer_;
};

/** The region. */
class Cloud : public sim::SimObject
{
  public:
    Cloud(sim::EventQueue &eq, std::string name,
          CloudConfig config = CloudConfig{});

    /** Register a golden image on the storage server(s). */
    void addImage(const std::string &name, sim::Bytes size,
                  std::uint64_t contentBase);

    /**
     * Register an overlay image: @p baseImage with @p deltas applied
     * (elijah-style base + modified runs).  Every seed server exports
     * it as a full target; with the store tier enabled, the catalog
     * additionally dedups every chunk the deltas do not touch against
     * the base image.
     */
    void addOverlayImage(const std::string &name,
                         const std::string &baseImage,
                         const std::vector<store::DeltaRun> &deltas);

    /**
     * Lease the next free machine and deploy @p image onto it with
     * BMcast. @p onServing fires when the guest OS is up (long
     * before the image has fully landed on the local disk).
     * @return the instance handle, or nullptr if the region is full.
     */
    Instance *provision(const std::string &image,
                        std::function<void(Instance &)> onServing);

    /**
     * Return a leased instance's machine to the pool (rapid
     * elasticity needs reclaim as much as provisioning). Powers the
     * machine off — stopping any still-running deployment — scrubs
     * the local disk (tenant data and any saved deployment bitmap)
     * and discards the guest. The handle stays valid in Released
     * state, but its machine/guest/deployer accessors do not.
     */
    void release(Instance &inst);

    /** Machines not yet leased. */
    unsigned freeMachines() const;

    /** Rack of pool slot @p slot (machines stripe round-robin). */
    unsigned rackOf(unsigned slot) const;
    /** Leased machines currently in rack @p rack. */
    unsigned rackLoad(unsigned rack) const;

    net::Network &network() { return lan; }
    aoe::AoeServer &imageServer() { return *servers_.front(); }
    /** Seed server @p i (store mode exports several). */
    aoe::AoeServer &seedServer(unsigned i) { return *servers_[i]; }
    std::size_t seedServerCount() const { return servers_.size(); }
    const std::vector<net::MacAddr> &seedMacs() const
    {
        return serverMacs_;
    }
    /** The store fabric (nullptr when the store tier is disabled). */
    store::StoreFabric *storeFabric() { return fabric_.get(); }
    /** Wire chaos into the LAN, the seed servers, every machine and
     *  the store fabric's peer exporters. */
    void setFaultInjector(sim::FaultInjector *fi);
    const std::vector<std::unique_ptr<Instance>> &instances() const
    {
        return leased;
    }

  private:
    struct Image
    {
        std::uint16_t major;
        sim::Lba sectors;
        std::uint64_t contentBase;
        /** Overlay runs applied on top of contentBase (empty = flat). */
        std::vector<store::DeltaRun> deltas;
    };

    CloudConfig cfg;
    net::Network lan;
    /** Seed image servers; one in legacy mode, params.seedServers in
     *  store mode (the erasure stripe spreads over them). */
    std::vector<net::MacAddr> serverMacs_;
    std::vector<std::unique_ptr<aoe::AoeServer>> servers_;
    std::unique_ptr<store::StoreFabric> fabric_;
    std::vector<std::unique_ptr<hw::Machine>> pool;
    std::vector<bool> inUse;
    std::map<std::string, Image> images;
    std::uint16_t nextMajor = 0;
    std::vector<std::unique_ptr<Instance>> leased;
};

} // namespace bmcast

#endif // BMCAST_CLOUD_HH
