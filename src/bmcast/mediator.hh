/**
 * @file
 * Device mediators (paper §3.2): polling-based device-interface-level
 * I/O mediation.
 *
 * A mediator owns three tasks:
 *  - I/O interpretation: watch the guest's register traffic and
 *    reconstruct command/status/data context;
 *  - I/O redirection (copy-on-read): withhold guest reads that touch
 *    EMPTY blocks, fetch the data from the storage server, place it
 *    in the guest's DMA buffers, and let the *device* generate the
 *    completion interrupt by re-issuing the command as a one-sector
 *    dummy read that hits the on-disk cache;
 *  - I/O multiplexing (background copy): when the device is idle,
 *    inject VMM-issued commands, emulating an idle status register to
 *    the guest, queueing guest requests issued meanwhile, suppressing
 *    the device interrupt (nIEN / PxIE) and detecting completion by
 *    polling from the preemption-timer loop.
 *
 * Mediators never virtualize interrupt controllers and never expose
 * virtual devices: the guest always sees the physical controller's
 * architected interface, which is what makes de-virtualization a
 * plain removal of the intercepts.
 */

#ifndef BMCAST_MEDIATOR_HH
#define BMCAST_MEDIATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "bmcast/block_bitmap.hh"
#include "simcore/types.hh"

namespace obs {
class Registry;
} // namespace obs

namespace bmcast {

/** Services the VMM provides to its mediators. */
struct MediatorServices
{
    /** Copy-on-read fetch: tokens for [lba, lba+count) from the
     *  storage server via the extended AoE protocol. */
    std::function<void(
        sim::Lba, std::uint32_t,
        std::function<void(const std::vector<std::uint64_t> &)>)>
        fetchRemote;

    /** Hand fetched data to the background writer for a lazy local
     *  write ("the VMM also writes the data to the local disk for
     *  future use", §3.1). */
    std::function<void(sim::Lba, std::uint32_t,
                       const std::vector<std::uint64_t> &)>
        stashFetched;

    /** Guest I/O notification feeding the moderation rate meter. */
    std::function<void(bool isWrite, std::uint32_t sectors)> onGuestIo;

    /** Guest-write range notification (issue time).  The store tier
     *  uses it to stop offering chunks the tenant has dirtied. */
    std::function<void(sim::Lba, std::uint32_t)> onGuestWriteRange;

    /** The consistency bitmap (§3.3). */
    BlockBitmap *bitmap = nullptr;

    /** Reserved on-disk region [base, end): bitmap home + dummy
     *  sector; guest access is converted to dummy reads (§3.3). */
    sim::Lba reservedBase = 0;
    sim::Lba reservedEnd = 0;
    /** The dummy sector used for interrupt generation (§3.2). */
    sim::Lba dummyLba = 0;
};

/** Mediator statistics (reported by benches/tests). */
struct MediatorStats
{
    std::uint64_t passthroughReads = 0;
    std::uint64_t passthroughWrites = 0;
    std::uint64_t redirectedReads = 0;
    /** Sectors fetched from the server by redirection. */
    std::uint64_t redirectedSectors = 0;
    /** Redirections that also required local reads (partial fill). */
    std::uint64_t mixedRedirects = 0;
    std::uint64_t vmmOps = 0;
    /** Guest register writes queued during VMM ops. */
    std::uint64_t queuedGuestWrites = 0;
    /** Guest accesses to the reserved region converted to dummies. */
    std::uint64_t reservedConversions = 0;
    /** Dummy-sector restarts issued (one per redirected command). */
    std::uint64_t dummyRestarts = 0;
};

/** Publish a MediatorStats snapshot into @p reg under "mediator.*"
 *  metrics labelled @p label (usually the controller kind). */
void publishMediatorStats(obs::Registry &reg,
                          const std::string &label,
                          const MediatorStats &s);

/** Abstract mediator. */
class DeviceMediator
{
  public:
    virtual ~DeviceMediator() = default;

    /** Install bus intercepts (entering the deployment phase). */
    virtual void install() = 0;

    /** Remove all intercepts (de-virtualization). Must only be
     *  called when quiescent(). */
    virtual void uninstall() = 0;

    /** Abrupt teardown (power failure model): drop all state and
     *  remove intercepts without the quiescence requirement. */
    virtual void powerOff() = 0;

    /** Service routine, called from the VMM's preemption-timer poll
     *  loop: detect VMM-op completions, advance redirections. */
    virtual void poll() = 0;

    /**
     * Multiplex a VMM write of @p count sectors of content
     * @p contentBase at @p lba.
     * @retval false the device is not available now; retry later.
     */
    virtual bool vmmWrite(sim::Lba lba, std::uint32_t count,
                          std::uint64_t contentBase,
                          std::function<void()> done) = 0;

    /** Multiplex a VMM read (bitmap reload, verification). */
    virtual bool
    vmmRead(sim::Lba lba, std::uint32_t count,
            std::function<void(const std::vector<std::uint64_t> &)>
                done) = 0;

    /** True while a VMM-injected command is pending or in flight. */
    virtual bool vmmOpActive() const = 0;

    /** True when no guest command, redirection, VMM op or queued
     *  register write is outstanding — the "consistent hardware
     *  state" de-virtualization waits for (§3.1). */
    virtual bool quiescent() const = 0;

    /**
     * One-shot callback fired at the next instant the mediator is
     * fully quiescent. A guest that is never idle between polls
     * still quiesces for a moment inside each interrupt
     * acknowledgement; this hook is how de-virtualization catches
     * that moment (§3.1).
     */
    void
    setQuiesceCallback(std::function<void()> cb)
    {
        quiesceCb = std::move(cb);
    }

    virtual const MediatorStats &stats() const { return stats_; }

  protected:
    /** Called by implementations whenever quiescence is observed. */
    void
    notifyQuiescent()
    {
        if (quiesceCb) {
            auto cb = std::move(quiesceCb);
            quiesceCb = nullptr;
            cb();
        }
    }

    std::function<void()> quiesceCb;
    MediatorStats stats_;
};

} // namespace bmcast

#endif // BMCAST_MEDIATOR_HH
