/**
 * @file
 * ATA/IDE register layout and bit definitions shared by the
 * controller model, the guest driver, and the BMcast IDE device
 * mediator. Keeping them in one header is what lets the mediator stay
 * small: it interprets exactly these registers and nothing else.
 */

#ifndef HW_IDE_REGS_HH
#define HW_IDE_REGS_HH

#include <cstdint>

#include "simcore/types.hh"

namespace hw::ide {

/** Primary-channel command block base (offsets below are relative). */
constexpr sim::Addr kPioBase = 0x1F0;
constexpr sim::Addr kPioSize = 8;

/** Command block register offsets from kPioBase. */
enum Reg : sim::Addr
{
    kData = 0,      //!< not used by DMA transfers
    kErrorFeat = 1, //!< read: error, write: features
    kSectorCount = 2,
    kLbaLow = 3,
    kLbaMid = 4,
    kLbaHigh = 5,
    kDevice = 6,
    kCmdStatus = 7, //!< read: status (acks INTRQ), write: command
};

/** Device control register (alternate status on read). */
constexpr sim::Addr kCtrlPort = 0x3F6;

/** Bus-master DMA block (PCI BAR4 in real hardware). */
constexpr sim::Addr kBmBase = 0xC000;
constexpr sim::Addr kBmSize = 16;

enum BmReg : sim::Addr
{
    kBmCommand = 0,
    kBmStatus = 2,
    kBmPrdtAddr = 4, //!< 32-bit physical address of the PRD table
};

/** Status register bits. */
constexpr std::uint8_t kStatusErr = 0x01;
constexpr std::uint8_t kStatusDrq = 0x08;
constexpr std::uint8_t kStatusDrdy = 0x40;
constexpr std::uint8_t kStatusBsy = 0x80;

/** Device register bits. */
constexpr std::uint8_t kDeviceLbaMode = 0x40;

/** Device control bits. */
constexpr std::uint8_t kCtrlNIen = 0x02; //!< 1 = suppress INTRQ
constexpr std::uint8_t kCtrlSrst = 0x04; //!< software reset

/** Bus-master command bits. */
constexpr std::uint8_t kBmCmdStart = 0x01;
constexpr std::uint8_t kBmCmdToMemory = 0x08; //!< 1 = device->memory

/** Bus-master status bits. */
constexpr std::uint8_t kBmStActive = 0x01;
constexpr std::uint8_t kBmStError = 0x02;
constexpr std::uint8_t kBmStIrq = 0x04; //!< write 1 to clear

/** ATA commands the model implements. */
constexpr std::uint8_t kCmdReadDma = 0xC8;
constexpr std::uint8_t kCmdWriteDma = 0xCA;
constexpr std::uint8_t kCmdReadDmaExt = 0x25;
constexpr std::uint8_t kCmdWriteDmaExt = 0x35;
constexpr std::uint8_t kCmdFlushCache = 0xE7;
constexpr std::uint8_t kCmdIdentify = 0xEC;

/** True for the four DMA data commands. */
constexpr bool
isDmaCommand(std::uint8_t cmd)
{
    return cmd == kCmdReadDma || cmd == kCmdWriteDma ||
           cmd == kCmdReadDmaExt || cmd == kCmdWriteDmaExt;
}

constexpr bool
isWriteCommand(std::uint8_t cmd)
{
    return cmd == kCmdWriteDma || cmd == kCmdWriteDmaExt;
}

constexpr bool
isExtCommand(std::uint8_t cmd)
{
    return cmd == kCmdReadDmaExt || cmd == kCmdWriteDmaExt;
}

/** One PRD (physical region descriptor) entry: 8 bytes. */
constexpr sim::Bytes kPrdEntrySize = 8;
constexpr std::uint16_t kPrdEot = 0x8000;

/** IRQ vector of the primary channel. */
constexpr unsigned kIrqVector = 14;

} // namespace hw::ide

#endif // HW_IDE_REGS_HH
