#include "hw/phys_mem.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace hw {

const PhysMem::Page *
PhysMem::findPage(sim::Addr page_addr) const
{
    auto it = pages.find(page_addr);
    return it == pages.end() ? nullptr : &it->second;
}

PhysMem::Page &
PhysMem::touchPage(sim::Addr page_addr)
{
    auto [it, inserted] = pages.try_emplace(page_addr);
    if (inserted)
        it->second.fill(0);
    return it->second;
}

void
PhysMem::read(sim::Addr addr, void *out, sim::Bytes len) const
{
    sim::panicIfNot(addr + len <= size_,
                    "phys read out of range: ", addr, "+", len);
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        sim::Addr page_addr = addr & ~(kPageSize - 1);
        sim::Bytes off = addr - page_addr;
        sim::Bytes chunk = std::min<sim::Bytes>(len, kPageSize - off);
        if (const Page *page = findPage(page_addr))
            std::memcpy(dst, page->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
PhysMem::write(sim::Addr addr, const void *in, sim::Bytes len)
{
    sim::panicIfNot(addr + len <= size_,
                    "phys write out of range: ", addr, "+", len);
    auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        sim::Addr page_addr = addr & ~(kPageSize - 1);
        sim::Bytes off = addr - page_addr;
        sim::Bytes chunk = std::min<sim::Bytes>(len, kPageSize - off);
        std::memcpy(touchPage(page_addr).data() + off, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
PhysMem::fill(sim::Addr addr, std::uint8_t value, sim::Bytes len)
{
    sim::panicIfNot(addr + len <= size_,
                    "phys fill out of range: ", addr, "+", len);
    while (len > 0) {
        sim::Addr page_addr = addr & ~(kPageSize - 1);
        sim::Bytes off = addr - page_addr;
        sim::Bytes chunk = std::min<sim::Bytes>(len, kPageSize - off);
        std::memset(touchPage(page_addr).data() + off, value, chunk);
        addr += chunk;
        len -= chunk;
    }
}

} // namespace hw
