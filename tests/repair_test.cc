/**
 * @file
 * Chaos tests of the background repair scheduler: a dead seed is
 * healed back to full stripe health, injected source timeouts and
 * destination crashes force retries on fresh plans without ever
 * double-counting repaired bytes, unarmed injection stays
 * bit-identical, and fault-seed sweeps are deterministic.
 */

#include <gtest/gtest.h>

#include "bmcast/cloud.hh"
#include "simcore/fault_injector.hh"

namespace {

constexpr std::uint64_t kBase = 0xABCD000000000001ULL;
constexpr sim::Bytes kImageBytes = 32 * sim::kMiB;
constexpr unsigned kCrashSeed = 3;

bmcast::CloudConfig
repairConfig(store::ec::CodeKind code = store::ec::CodeKind::FlatRs)
{
    bmcast::CloudConfig cfg;
    cfg.machines = 1;
    cfg.store.enabled = true;
    cfg.store.code = code;
    cfg.store.seedServers = 10;
    cfg.store.repair.enabled = true;
    return cfg;
}

struct HealRun
{
    bool healthy = false;
    std::uint64_t executed = 0;
    sim::Tick endTick = 0;
    store::RepairStats stats;
};

/** Crash one seed, drive until the scheduler heals the pool. */
HealRun
runHeal(const bmcast::CloudConfig &cfg, sim::FaultInjector *fi)
{
    sim::EventQueue eq;
    bmcast::Cloud cloud(eq, "region", cfg);
    if (fi)
        cloud.setFaultInjector(fi);
    cloud.addImage("img", kImageBytes, kBase);
    store::RepairScheduler *sched = cloud.repairScheduler();
    cloud.seedServer(kCrashSeed).crash();

    auto healed = [&]() {
        return sched->idle() && sched->allHealthy();
    };
    while (!healed() && !eq.empty() && eq.now() < 600 * sim::kSec)
        eq.step();

    HealRun r;
    r.healthy = sched->allHealthy();
    r.executed = eq.executed();
    r.endTick = eq.now();
    r.stats = sched->stats();
    return r;
}

TEST(RepairChaos, DeadSeedIsHealedAndRedeploysClean)
{
    sim::EventQueue eq;
    bmcast::Cloud cloud(eq, "region", repairConfig());
    cloud.addImage("img", kImageBytes, kBase);
    store::RepairScheduler *sched = cloud.repairScheduler();
    EXPECT_TRUE(sched->started());
    EXPECT_TRUE(sched->allHealthy());

    cloud.seedServer(kCrashSeed).crash();
    EXPECT_FALSE(sched->allHealthy());

    auto healed = [&]() {
        return sched->idle() && sched->allHealthy();
    };
    while (!healed() && !eq.empty() && eq.now() < 600 * sim::kSec)
        eq.step();
    ASSERT_TRUE(sched->allHealthy());
    EXPECT_GT(sched->stats().deadMembersSeen, 0u);
    EXPECT_GT(sched->stats().jobsCompleted, 0u);
    EXPECT_GT(sched->stats().repairedBytes, 0u);
    EXPECT_GT(sched->stats().dataRepairedBytes, 0u);
    EXPECT_EQ(sched->stats().wireBytes, sched->stats().repairedBytes)
        << "no failed attempts, so no wasted wire bytes";

    // The healed pool serves a deployment with zero degraded reads:
    // every stripe member answers, so nothing reconstructs.
    bmcast::Instance *inst = cloud.provision("img", nullptr);
    ASSERT_NE(inst, nullptr);
    while (inst->state() != bmcast::Instance::State::BareMetal &&
           !eq.empty() && eq.now() < 5000 * sim::kSec)
        eq.step();
    ASSERT_EQ(inst->state(), bmcast::Instance::State::BareMetal);
    ASSERT_TRUE(cloud.storeFabric()->catalog().verifyDisk(
        "img", inst->machine().disk().store()));
    ASSERT_NE(inst->deployer().vmm().streamer(), nullptr);
    EXPECT_EQ(inst->deployer().vmm().streamer()->reconstructions(), 0u)
        << "a repaired stripe reads healthy, not degraded";
}

TEST(RepairChaos, SourceTimeoutsRetryOnFreshPlansWithoutDoubleCount)
{
    HealRun clean = runHeal(repairConfig(), nullptr);
    ASSERT_TRUE(clean.healthy);

    sim::FaultInjector fi(42);
    sim::SitePlan plan;
    plan.probability = 0.05;
    plan.maxTriggers = 12;
    fi.arm(sim::FaultSite::RepairSourceTimeout, plan);
    HealRun faulty = runHeal(repairConfig(), &fi);

    ASSERT_TRUE(faulty.healthy) << "retries must still converge";
    EXPECT_GT(faulty.stats.sourceTimeouts, 0u);
    EXPECT_GT(faulty.stats.retries, 0u);
    EXPECT_EQ(faulty.stats.repairedBytes, clean.stats.repairedBytes)
        << "a retried job books its bytes exactly once";
    EXPECT_EQ(faulty.stats.jobsCompleted, clean.stats.jobsCompleted);
    EXPECT_GT(faulty.stats.wireBytes, faulty.stats.repairedBytes)
        << "the aborted attempts' fetches are wasted wire traffic";
}

TEST(RepairChaos, DestCrashesRetryWithoutDoubleCount)
{
    HealRun clean = runHeal(repairConfig(), nullptr);
    ASSERT_TRUE(clean.healthy);

    sim::FaultInjector fi(7);
    sim::SitePlan plan;
    plan.fireOn = {1, 3};
    fi.arm(sim::FaultSite::RepairDestCrash, plan);
    HealRun faulty = runHeal(repairConfig(), &fi);

    ASSERT_TRUE(faulty.healthy);
    EXPECT_EQ(faulty.stats.destCrashes, 2u);
    EXPECT_EQ(faulty.stats.retries, 2u);
    EXPECT_EQ(faulty.stats.repairedBytes, clean.stats.repairedBytes)
        << "a crashed landing never counts as repaired";
    EXPECT_EQ(faulty.stats.jobsCompleted, clean.stats.jobsCompleted);
}

TEST(RepairChaos, UnarmedInjectorIsBitIdentical)
{
    HealRun bare = runHeal(repairConfig(), nullptr);
    sim::FaultInjector fi(99); // attached but nothing armed
    HealRun armed = runHeal(repairConfig(), &fi);
    EXPECT_EQ(armed.executed, bare.executed);
    EXPECT_EQ(armed.endTick, bare.endTick);
    EXPECT_EQ(armed.stats.repairedBytes, bare.stats.repairedBytes);
}

TEST(RepairChaos, FaultSeedSweepIsDeterministic)
{
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        sim::SitePlan plan;
        plan.probability = 0.05;
        plan.maxTriggers = 8;

        sim::FaultInjector a(seed);
        a.arm(sim::FaultSite::RepairSourceTimeout, plan);
        HealRun ra = runHeal(repairConfig(), &a);

        sim::FaultInjector b(seed);
        b.arm(sim::FaultSite::RepairSourceTimeout, plan);
        HealRun rb = runHeal(repairConfig(), &b);

        ASSERT_TRUE(ra.healthy) << "seed " << seed;
        EXPECT_EQ(ra.executed, rb.executed) << "seed " << seed;
        EXPECT_EQ(ra.endTick, rb.endTick) << "seed " << seed;
        EXPECT_EQ(ra.stats.sourceTimeouts, rb.stats.sourceTimeouts);
        EXPECT_EQ(ra.stats.repairedBytes, rb.stats.repairedBytes);
    }
}

TEST(RepairChaos, StructuredCodesHealCheaperThanFlatRs)
{
    HealRun flat = runHeal(repairConfig(store::ec::CodeKind::FlatRs),
                           nullptr);
    HealRun lrc =
        runHeal(repairConfig(store::ec::CodeKind::Lrc), nullptr);
    ASSERT_TRUE(flat.healthy);
    ASSERT_TRUE(lrc.healthy);
    ASSERT_GT(flat.stats.dataRepairedBytes, 0u);
    EXPECT_LE(2 * lrc.stats.dataRepairedBytes,
              flat.stats.dataRepairedBytes + sim::kMiB)
        << "LRC rebuilds a data member from one local group";
}

TEST(RepairChaos, ElasticTransformQueuesOnlyParityBuilds)
{
    sim::EventQueue eq;
    bmcast::Cloud cloud(eq, "region", repairConfig());
    cloud.addImage("img", kImageBytes, kBase);
    store::RepairScheduler *sched = cloud.repairScheduler();

    sched->transformTo(store::ec::CodeKind::Lrc);
    EXPECT_GT(sched->stats().transforms, 0u);
    while (!sched->idle() && !eq.empty() &&
           eq.now() < 600 * sim::kSec)
        eq.step();
    ASSERT_TRUE(sched->idle());
    EXPECT_TRUE(sched->allHealthy());
    EXPECT_EQ(cloud.storeFabric()->placement().code().kind(),
              store::ec::CodeKind::Lrc);
    EXPECT_GT(sched->stats().transformBytes, 0u);
    EXPECT_EQ(sched->stats().repairedBytes, 0u)
        << "builds are transform traffic, not repairs";

    // Healthy reads of the transformed stripes stay undegraded.
    const auto &images = cloud.storeFabric()->catalog().images();
    for (const auto &[name, desc] : images) {
        for (store::Digest d : desc.chunks) {
            auto plan = cloud.storeFabric()->placement().readPlanFor(
                d, [](net::MacAddr) { return true; }, 64);
            ASSERT_TRUE(plan.has_value());
            EXPECT_FALSE(plan->degraded());
        }
    }
}

} // namespace
