/**
 * @file
 * Fault-injection and edge-case tests built on sim::FaultInjector:
 * injector semantics (scripted plans, key filters, budgets,
 * determinism), a chaos matrix deploying under every fault plan x
 * every storage controller and asserting byte-identical final disk
 * images plus exact trigger counts, seed-sweep determinism of chaotic
 * runs, the AoE initiator's retry budget and terminal-error surface,
 * AoE parser fuzzing, mediator behaviour at region boundaries,
 * moderation edge settings, and the VMM memory reservation.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "aoe/protocol.hh"
#include "bench/migrate_world.hh"
#include "bmcast/cloud.hh"
#include "bmcast/deployer.hh"
#include "migrate/migration.hh"
#include "net/l2.hh"
#include "simcore/fault_injector.hh"
#include "tests/test_util.hh"

using namespace testutil;
using sim::FaultSite;

namespace {

// --- FaultInjector semantics ---

TEST(FaultInjectorUnit, UnarmedSiteNeverCountsOrFires)
{
    sim::FaultInjector fi(7);
    EXPECT_FALSE(fi.anyActive());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fi.shouldFire(FaultSite::NetDrop, i));
    EXPECT_EQ(fi.queries(FaultSite::NetDrop), 0u);
    EXPECT_EQ(fi.triggers(FaultSite::NetDrop), 0u);
}

TEST(FaultInjectorUnit, ScriptedPlanFiresOnExactOccurrences)
{
    sim::FaultInjector fi(7);
    sim::SitePlan plan;
    plan.fireOn = {2, 5};
    fi.arm(FaultSite::NetDrop, plan);

    std::vector<int> fired;
    for (int i = 1; i <= 10; ++i) {
        if (fi.shouldFire(FaultSite::NetDrop))
            fired.push_back(i);
    }
    EXPECT_EQ(fired, (std::vector<int>{2, 5}));
    EXPECT_EQ(fi.queries(FaultSite::NetDrop), 10u);
    EXPECT_EQ(fi.stats(FaultSite::NetDrop).eligible, 10u);
    EXPECT_EQ(fi.triggers(FaultSite::NetDrop), 2u);
}

TEST(FaultInjectorUnit, KeyFilterGatesEligibility)
{
    sim::FaultInjector fi(7);
    sim::SitePlan plan;
    plan.fireOn = {1};
    plan.keyLo = 100;
    plan.keyHi = 200;
    fi.arm(FaultSite::DiskReadError, plan);

    EXPECT_FALSE(fi.shouldFire(FaultSite::DiskReadError, 50));
    EXPECT_FALSE(fi.shouldFire(FaultSite::DiskReadError, 201));
    EXPECT_TRUE(fi.shouldFire(FaultSite::DiskReadError, 150));
    EXPECT_EQ(fi.queries(FaultSite::DiskReadError), 3u);
    EXPECT_EQ(fi.stats(FaultSite::DiskReadError).eligible, 1u);
    EXPECT_EQ(fi.triggers(FaultSite::DiskReadError), 1u);
}

TEST(FaultInjectorUnit, TriggerBudgetStopsFiring)
{
    sim::FaultInjector fi(7);
    sim::SitePlan plan;
    plan.probability = 1.0;
    plan.maxTriggers = 3;
    fi.arm(FaultSite::ServerStall, plan);

    int fired = 0;
    for (int i = 0; i < 10; ++i) {
        if (fi.shouldFire(FaultSite::ServerStall))
            ++fired;
    }
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(fi.triggers(FaultSite::ServerStall), 3u);
    EXPECT_FALSE(fi.active(FaultSite::ServerStall))
        << "an exhausted budget means the site can no longer fire";
}

TEST(FaultInjectorUnit, SitesDrawFromIndependentStreams)
{
    // Arming an unrelated site must not perturb another site's
    // probability draws: each site owns its own Rng stream.
    auto sequence = [](sim::FaultInjector &fi) {
        std::vector<bool> s;
        for (int i = 0; i < 200; ++i)
            s.push_back(fi.shouldFire(FaultSite::NetDrop));
        return s;
    };

    sim::FaultInjector alone(42);
    sim::SitePlan drop;
    drop.probability = 0.3;
    alone.arm(FaultSite::NetDrop, drop);

    sim::FaultInjector crowded(42);
    crowded.arm(FaultSite::NetDrop, drop);
    sim::SitePlan other;
    other.probability = 0.5;
    crowded.arm(FaultSite::DiskWriteError, other);
    // Interleave foreign draws; NetDrop's stream must not notice.
    std::vector<bool> a, b;
    for (int i = 0; i < 200; ++i) {
        a.push_back(alone.shouldFire(FaultSite::NetDrop));
        (void)crowded.shouldFire(FaultSite::DiskWriteError);
        b.push_back(crowded.shouldFire(FaultSite::NetDrop));
    }
    EXPECT_EQ(a, b);

    // And the same seed reproduces the same sequence wholesale.
    sim::FaultInjector again(42);
    again.arm(FaultSite::NetDrop, drop);
    EXPECT_EQ(sequence(again), [&]() {
        sim::FaultInjector fresh(42);
        fresh.arm(FaultSite::NetDrop, drop);
        return sequence(fresh);
    }());
}

TEST(FaultInjectorUnit, SummaryNamesTouchedSites)
{
    sim::FaultInjector fi(7);
    sim::SitePlan plan;
    plan.fireOn = {1};
    fi.arm(FaultSite::NetCorrupt, plan);
    (void)fi.shouldFire(FaultSite::NetCorrupt);
    std::string s = fi.summary();
    EXPECT_NE(s.find("net.corrupt"), std::string::npos) << s;
}

TEST(FaultInjectorUnit, StoreSitesAreNamedInSummaries)
{
    sim::FaultInjector fi(7);
    sim::SitePlan plan;
    plan.fireOn = {1};
    fi.arm(FaultSite::StoreSourceTimeout, plan);
    fi.arm(FaultSite::StoreShardCorrupt, plan);
    EXPECT_TRUE(fi.shouldFire(FaultSite::StoreSourceTimeout));
    EXPECT_TRUE(fi.shouldFire(FaultSite::StoreShardCorrupt));
    std::string s = fi.summary();
    EXPECT_NE(s.find("store.source_timeout"), std::string::npos) << s;
    EXPECT_NE(s.find("store.shard_corrupt"), std::string::npos) << s;
}

// --- Store-tier chaos: source timeouts and corrupted shards ---

TEST(StoreChaos, DeploymentSurvivesSourceTimeoutsAndCorruption)
{
    sim::EventQueue eq;
    bmcast::CloudConfig cfg;
    cfg.machines = 1;
    cfg.machineTemplate.disk.capacityBytes = 2 * sim::kGiB;
    cfg.vmm.bootTime = 5 * sim::kSec;
    cfg.vmm.moderation.vmmWriteInterval = 2 * sim::kMs;
    cfg.vmm.moderation.guestIoFreqThreshold = 1e9;
    cfg.guestTemplate.boot.loaderBytes = 1 * sim::kMiB;
    cfg.guestTemplate.boot.kernelBytes = 4 * sim::kMiB;
    cfg.guestTemplate.boot.numReads = 40;
    cfg.guestTemplate.boot.cpuTotal = 500 * sim::kMs;
    cfg.guestTemplate.boot.regionBytes = 16 * sim::kMiB;
    cfg.store.enabled = true;
    cfg.store.seedServers = 4;
    cfg.store.dataShards = 2;
    cfg.store.parityShards = 2;
    bmcast::Cloud cloud(eq, "region", cfg);

    constexpr std::uint64_t image_base = 0xAAAA000000000001ULL;
    constexpr sim::Bytes image_bytes = 24 * sim::kMiB;
    constexpr sim::Lba image_sectors = image_bytes / sim::kSectorSize;
    cloud.addImage("img", image_bytes, image_base);

    sim::FaultInjector fi(1234);
    sim::SitePlan swallow;
    swallow.probability = 0.02;
    fi.arm(FaultSite::StoreSourceTimeout, swallow);
    sim::SitePlan corrupt;
    corrupt.probability = 0.02;
    fi.arm(FaultSite::StoreShardCorrupt, corrupt);
    cloud.setFaultInjector(&fi);

    bmcast::Instance *a = cloud.provision("img", nullptr);
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(runUntil(eq, 80000 * sim::kSec, [&]() {
        return a->state() == bmcast::Instance::State::BareMetal;
    })) << "store chaos must degrade, not stall; injector: "
        << fi.summary();

    EXPECT_GT(fi.triggers(FaultSite::StoreSourceTimeout), 0u);
    EXPECT_GT(fi.triggers(FaultSite::StoreShardCorrupt), 0u);
    // Per-fragment digests catch every injected corruption and the
    // piece is re-fetched: the landed image is still byte-exact.
    aoe::AoeInitiator &ini = a->deployer().vmm().initiator();
    EXPECT_GT(ini.shardDigestMismatches(), 0u);
    EXPECT_TRUE(a->machine().disk().store().rangeHasBase(
        0, image_sectors, image_base));
    EXPECT_TRUE(cloud.storeFabric()->catalog().verifyDisk(
        "img", a->machine().disk().store()));
}

// --- Chaos matrix: fault plan x storage controller ---

struct ChaosPlan
{
    const char *name;
    void (*arm)(sim::FaultInjector &fi);
    void (*check)(const sim::FaultInjector &fi, Rig &rig);
};

const ChaosPlan kChaosPlans[] = {
    {"NetLoss",
     [](sim::FaultInjector &fi) {
         sim::SitePlan p;
         p.probability = 0.05;
         fi.arm(FaultSite::NetDrop, p);
     },
     [](const sim::FaultInjector &fi, Rig &) {
         EXPECT_GT(fi.triggers(FaultSite::NetDrop), 0u);
     }},
    {"NetChaos",
     [](sim::FaultInjector &fi) {
         sim::SitePlan dup;
         dup.probability = 0.03;
         fi.arm(FaultSite::NetDuplicate, dup);
         sim::SitePlan reorder;
         reorder.probability = 0.03;
         reorder.magnitude = 300 * sim::kUs;
         fi.arm(FaultSite::NetReorder, reorder);
         sim::SitePlan corrupt;
         corrupt.probability = 0.02;
         fi.arm(FaultSite::NetCorrupt, corrupt);
     },
     [](const sim::FaultInjector &fi, Rig &) {
         EXPECT_GT(fi.triggers(FaultSite::NetDuplicate), 0u);
         EXPECT_GT(fi.triggers(FaultSite::NetReorder), 0u);
         EXPECT_GT(fi.triggers(FaultSite::NetCorrupt), 0u);
     }},
    {"DiskFaults",
     [](sim::FaultInjector &fi) {
         sim::SitePlan werr;
         werr.fireOn = {3, 9};
         fi.arm(FaultSite::DiskWriteError, werr);
         sim::SitePlan spike;
         spike.fireOn = {5};
         spike.magnitude = 20 * sim::kMs;
         fi.arm(FaultSite::DiskLatencySpike, spike);
     },
     [](const sim::FaultInjector &fi, Rig &rig) {
         // Scripted plans fire exactly as written.
         EXPECT_EQ(fi.triggers(FaultSite::DiskWriteError), 2u);
         EXPECT_EQ(fi.triggers(FaultSite::DiskLatencySpike), 1u);
         EXPECT_EQ(rig.machine->disk().mediaRetries(), 2u);
     }},
    {"ServerStalls",
     [](sim::FaultInjector &fi) {
         sim::SitePlan stall;
         stall.fireOn = {5, 25};
         stall.magnitude = 50 * sim::kMs;
         fi.arm(FaultSite::ServerStall, stall);
     },
     [](const sim::FaultInjector &fi, Rig &rig) {
         EXPECT_EQ(fi.triggers(FaultSite::ServerStall), 2u);
         EXPECT_EQ(rig.server->crashes(), 0u);
     }},
    {"IrqChaos",
     [](sim::FaultInjector &fi) {
         // Mediated controllers raise only a handful of real IRQs
         // per deployment, so script the very first occurrences.
         // The spurious injection rides the first raise; the second
         // raise is swallowed (losing the first could suppress the
         // rest: completions recovered by a watchdog poll never
         // re-raise).
         sim::SitePlan lost;
         lost.fireOn = {2};
         fi.arm(FaultSite::IrqLost, lost);
         sim::SitePlan spurious;
         spurious.fireOn = {1};
         fi.arm(FaultSite::IrqSpurious, spurious);
     },
     [](const sim::FaultInjector &fi, Rig &rig) {
         EXPECT_EQ(fi.triggers(FaultSite::IrqLost), 1u);
         EXPECT_EQ(fi.triggers(FaultSite::IrqSpurious), 1u);
         EXPECT_EQ(rig.machine->intc().lostIrqs(), 1u);
         EXPECT_EQ(rig.machine->intc().injectedSpurious(), 1u);
     }},
    {"Everything",
     [](sim::FaultInjector &fi) {
         sim::SitePlan drop;
         drop.probability = 0.02;
         fi.arm(FaultSite::NetDrop, drop);
         sim::SitePlan dup;
         dup.probability = 0.01;
         fi.arm(FaultSite::NetDuplicate, dup);
         sim::SitePlan werr;
         werr.fireOn = {7};
         fi.arm(FaultSite::DiskWriteError, werr);
         sim::SitePlan stall;
         stall.fireOn = {25};
         stall.magnitude = 30 * sim::kMs;
         fi.arm(FaultSite::ServerStall, stall);
         sim::SitePlan lost;
         lost.fireOn = {2};
         fi.arm(FaultSite::IrqLost, lost);
     },
     [](const sim::FaultInjector &fi, Rig &) {
         EXPECT_GT(fi.triggers(FaultSite::NetDrop), 0u);
         EXPECT_EQ(fi.triggers(FaultSite::DiskWriteError), 1u);
         EXPECT_EQ(fi.triggers(FaultSite::ServerStall), 1u);
         EXPECT_EQ(fi.triggers(FaultSite::IrqLost), 1u);
         EXPECT_FALSE(fi.summary().empty());
     }},
};

constexpr int kNumChaosPlans =
    static_cast<int>(sizeof(kChaosPlans) / sizeof(kChaosPlans[0]));

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<int, hw::StorageKind>>
{
};

TEST_P(ChaosMatrix, DeploysByteIdenticalImage)
{
    const ChaosPlan &plan = kChaosPlans[std::get<0>(GetParam())];

    RigOptions o;
    o.storage = std::get<1>(GetParam());
    o.imageSectors = (16 * sim::kMiB) / sim::kSectorSize;
    Rig rig(o);

    sim::FaultInjector fi(1234);
    plan.arm(fi);
    rig.attachInjector(fi);

    bmcast::BmcastDeployer dep(rig.eq, "dep", *rig.machine,
                               *rig.guest, kServerMac, o.imageSectors,
                               rig.fastVmmParams(), false);
    dep.run([]() {});
    ASSERT_TRUE(runUntil(rig.eq, 40000 * sim::kSec,
                         [&]() { return dep.bareMetalReached(); }))
        << "deployment must survive plan " << plan.name
        << "; injector: " << fi.summary();

    // The final disk image must be byte-identical to a fault-free
    // deployment: every image sector carries the golden content.
    EXPECT_TRUE(rig.machine->disk().store().rangeHasBase(
        0, o.imageSectors, kImageBase))
        << "corrupted final image under plan " << plan.name;

    plan.check(fi, rig);
}

INSTANTIATE_TEST_SUITE_P(
    PlansByController, ChaosMatrix,
    ::testing::Combine(::testing::Range(0, kNumChaosPlans),
                       ::testing::Values(hw::StorageKind::Ide,
                                         hw::StorageKind::Ahci,
                                         hw::StorageKind::Nvme)),
    [](const auto &info) {
        return std::string(kChaosPlans[std::get<0>(info.param)].name) +
               "_" + storageName(std::get<1>(info.param));
    });

// --- Seed-sweep determinism ---

struct RunFingerprint
{
    std::uint64_t executed = 0;
    sim::Tick endTick = 0;
    bmcast::MediatorStats ms;
    std::array<std::uint64_t, sim::kNumFaultSites> triggers{};
    std::uint64_t retx = 0;
    std::uint64_t served = 0;
};

void
armMixedPlan(sim::FaultInjector &fi)
{
    sim::SitePlan drop;
    drop.probability = 0.04;
    fi.arm(FaultSite::NetDrop, drop);
    sim::SitePlan dup;
    dup.probability = 0.02;
    fi.arm(FaultSite::NetDuplicate, dup);
    sim::SitePlan werr;
    werr.probability = 0.01;
    fi.arm(FaultSite::DiskWriteError, werr);
    sim::SitePlan spike;
    spike.probability = 0.01;
    spike.magnitude = 10 * sim::kMs;
    fi.arm(FaultSite::DiskLatencySpike, spike);
    sim::SitePlan stall;
    stall.fireOn = {10};
    stall.magnitude = 20 * sim::kMs;
    fi.arm(FaultSite::ServerStall, stall);
}

RunFingerprint
chaosRun(std::uint64_t injectorSeed)
{
    RigOptions o;
    o.imageSectors = (8 * sim::kMiB) / sim::kSectorSize;
    Rig rig(o);
    sim::FaultInjector fi(injectorSeed);
    armMixedPlan(fi);
    rig.attachInjector(fi);

    bmcast::BmcastDeployer dep(rig.eq, "dep", *rig.machine,
                               *rig.guest, kServerMac, o.imageSectors,
                               rig.fastVmmParams(), false);
    dep.run([]() {});
    EXPECT_TRUE(runUntil(rig.eq, 40000 * sim::kSec,
                         [&]() { return dep.bareMetalReached(); }));

    RunFingerprint fp;
    fp.executed = rig.eq.executed();
    fp.endTick = rig.eq.now();
    fp.ms = dep.vmm().mediator().stats();
    for (std::size_t s = 0; s < sim::kNumFaultSites; ++s)
        fp.triggers[s] = fi.triggers(static_cast<FaultSite>(s));
    fp.retx = dep.vmm().initiator().retransmissions();
    fp.served = rig.server->requestsServed();
    return fp;
}

void
expectSameFingerprint(const RunFingerprint &a, const RunFingerprint &b)
{
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.endTick, b.endTick);
    EXPECT_EQ(a.triggers, b.triggers);
    EXPECT_EQ(a.retx, b.retx);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.ms.passthroughReads, b.ms.passthroughReads);
    EXPECT_EQ(a.ms.passthroughWrites, b.ms.passthroughWrites);
    EXPECT_EQ(a.ms.redirectedReads, b.ms.redirectedReads);
    EXPECT_EQ(a.ms.redirectedSectors, b.ms.redirectedSectors);
    EXPECT_EQ(a.ms.mixedRedirects, b.ms.mixedRedirects);
    EXPECT_EQ(a.ms.vmmOps, b.ms.vmmOps);
    EXPECT_EQ(a.ms.queuedGuestWrites, b.ms.queuedGuestWrites);
    EXPECT_EQ(a.ms.reservedConversions, b.ms.reservedConversions);
    EXPECT_EQ(a.ms.dummyRestarts, b.ms.dummyRestarts);
}

TEST(ChaosDeterminism, SameSeedSamePlanIsBitIdentical)
{
    for (std::uint64_t seed : {7ULL, 1234ULL, 999ULL}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        RunFingerprint a = chaosRun(seed);
        RunFingerprint b = chaosRun(seed);
        expectSameFingerprint(a, b);
    }
}

TEST(ChaosDeterminism, DifferentSeedsDiverge)
{
    RunFingerprint a = chaosRun(7);
    RunFingerprint b = chaosRun(8);
    EXPECT_TRUE(a.executed != b.executed || a.triggers != b.triggers ||
                a.endTick != b.endTick)
        << "two injector seeds produced indistinguishable chaos";
}

// --- AoE initiator retry budget ---

struct InitiatorHarness
{
    explicit InitiatorHarness(aoe::InitiatorParams ip)
        : port(rig.lan.attach(0x525400000042ULL,
                              net::PortConfig{1e9, 9000, 0.0})),
          endpoint(port),
          ini(rig.eq, "ini", endpoint, kServerMac, ip)
    {
    }

    Rig rig;
    net::Port &port;
    net::PortEndpoint endpoint;
    aoe::AoeInitiator ini;
};

aoe::InitiatorParams
fastRetryParams(int maxRetries)
{
    aoe::InitiatorParams ip;
    ip.maxRetries = maxRetries;
    ip.minTimeout = 1 * sim::kMs;
    return ip;
}

TEST(RetryBudget, ExhaustedBudgetSurfacesTerminalError)
{
    InitiatorHarness h(fastRetryParams(3));
    h.rig.server->crash(); // never answers

    std::vector<aoe::DeployError> errs;
    h.ini.setErrorHandler([&](const aoe::DeployError &e) {
        errs.push_back(e);
        return aoe::ErrorAction::Drop;
    });

    bool done = false;
    h.ini.readSectors(100, 8, [&](const auto &) { done = true; });
    ASSERT_TRUE(runUntil(h.rig.eq, 100 * sim::kSec,
                         [&]() { return !errs.empty(); }));

    ASSERT_EQ(errs.size(), 1u);
    EXPECT_FALSE(errs[0].isWrite);
    EXPECT_EQ(errs[0].lba, 100u);
    EXPECT_EQ(errs[0].count, 8u);
    EXPECT_EQ(errs[0].retries, 3);
    EXPECT_EQ(errs[0].server, kServerMac);
    EXPECT_EQ(h.ini.terminalErrors(), 1u);
    EXPECT_EQ(h.ini.retransmissions(), 3u);
    EXPECT_EQ(h.ini.inflight(), 0u) << "dropped requests must vacate";
    EXPECT_FALSE(done) << "a dropped request's callback never fires";

    // The queue must drain: no retransmission lives on.
    runUntil(h.rig.eq, h.rig.eq.now() + 10 * sim::kSec,
             []() { return false; });
    EXPECT_EQ(h.ini.retransmissions(), 3u);
}

TEST(RetryBudget, DefaultHandlerDropsDoomedRequests)
{
    InitiatorHarness h(fastRetryParams(2));
    h.rig.server->crash();

    bool done = false;
    h.ini.readSectors(0, 4, [&](const auto &) { done = true; });
    ASSERT_TRUE(runUntil(h.rig.eq, 100 * sim::kSec, [&]() {
        return h.ini.terminalErrors() == 1;
    }));
    EXPECT_EQ(h.ini.inflight(), 0u);
    EXPECT_FALSE(done);
}

TEST(RetryBudget, RetryActionResetsBudgetAndRecovers)
{
    InitiatorHarness h(fastRetryParams(2));
    h.rig.server->crash();

    int errors = 0;
    h.ini.setErrorHandler([&](const aoe::DeployError &) {
        if (++errors == 1)
            h.rig.server->restart(); // failback before retrying
        return aoe::ErrorAction::Retry;
    });

    std::vector<std::uint64_t> got;
    h.ini.readSectors(64, 4, [&](const auto &t) { got = t; });
    ASSERT_TRUE(runUntil(h.rig.eq, 100 * sim::kSec,
                         [&]() { return !got.empty(); }));
    EXPECT_GE(errors, 1);
    ASSERT_EQ(got.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(got[i], hw::sectorToken(kImageBase, 64 + i));
    EXPECT_EQ(h.ini.terminalErrors(),
              static_cast<std::uint64_t>(errors));
}

TEST(RetryBudget, NegativeBudgetRetriesForever)
{
    InitiatorHarness h(fastRetryParams(-1));
    h.rig.server->crash();

    std::vector<std::uint64_t> got;
    h.ini.readSectors(8, 2, [&](const auto &t) { got = t; });
    runUntil(h.rig.eq, 2 * sim::kSec, []() { return false; });
    EXPECT_EQ(h.ini.terminalErrors(), 0u);
    EXPECT_GT(h.ini.retransmissions(), 5u);
    EXPECT_EQ(h.ini.inflight(), 1u);

    h.rig.server->restart();
    ASSERT_TRUE(runUntil(h.rig.eq, h.rig.eq.now() + 100 * sim::kSec,
                         [&]() { return !got.empty(); }));
    EXPECT_EQ(got[0], hw::sectorToken(kImageBase, 8));
}

// --- AoE parser fuzz: random bytes must never crash ---

class AoeFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(AoeFuzz, RandomFramesParseSafely)
{
    sim::Rng rng(GetParam() * 977);
    for (int i = 0; i < 2000; ++i) {
        net::Frame f;
        f.etherType = rng.chance(0.5)
                          ? aoe::kEtherType
                          : static_cast<std::uint16_t>(rng.next());
        f.payload.resize(rng.uniformInt(0, 200));
        for (auto &b : f.payload)
            b = static_cast<std::uint8_t>(rng.next());
        auto parsed = aoe::parse(f); // must not throw or crash
        if (parsed) {
            // Whatever parsed must re-serialize without issue.
            (void)aoe::toFrame(*parsed, 0x1);
        }
    }
    SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AoeFuzz, ::testing::Range(1, 5));

// --- Region-boundary behaviour ---

class BoundaryTest : public ::testing::TestWithParam<hw::StorageKind>
{
  protected:
    struct World
    {
        explicit World(hw::StorageKind kind)
        {
            RigOptions o;
            o.storage = kind;
            o.imageSectors = (16 * sim::kMiB) / sim::kSectorSize;
            rig = std::make_unique<Rig>(o);
            vmm = std::make_unique<bmcast::Vmm>(
                rig->eq, "vmm", *rig->machine, kServerMac,
                o.imageSectors, rig->fastVmmParams());
            bool ready = false;
            vmm->netboot([&]() { ready = true; });
            runUntil(rig->eq, 60 * sim::kSec,
                     [&]() { return ready; });
            bool booted = false;
            rig->guest->start([&]() { booted = true; });
            runUntil(rig->eq, 1000 * sim::kSec,
                     [&]() { return booted; });
        }
        std::unique_ptr<Rig> rig;
        std::unique_ptr<bmcast::Vmm> vmm;
    };
};

TEST_P(BoundaryTest, ReadStraddlingImageEndIsServed)
{
    World w(GetParam());
    sim::Lba img = w.rig->opts.imageSectors;
    // [img-8, img+8): half image (EMPTY -> fetch), half beyond-image
    // (pre-marked FILLED, local zeros).
    std::vector<std::uint64_t> got;
    w.rig->guest->blk().read(img - 8, 16,
                             [&](const auto &t) { got = t; });
    ASSERT_TRUE(runUntil(w.rig->eq, 100 * sim::kSec,
                         [&]() { return !got.empty(); }));
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(got[i], hw::sectorToken(kImageBase, img - 8 + i));
    for (int i = 8; i < 16; ++i)
        EXPECT_EQ(got[i], 0u) << "beyond-image sector must be local";
}

TEST_P(BoundaryTest, SingleSectorOps)
{
    World w(GetParam());
    std::vector<std::uint64_t> got;
    w.rig->guest->blk().read(5, 1, [&](const auto &t) { got = t; });
    ASSERT_TRUE(runUntil(w.rig->eq, 100 * sim::kSec,
                         [&]() { return !got.empty(); }));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], hw::sectorToken(kImageBase, 5));

    bool wrote = false;
    w.rig->guest->blk().write(5, 1, 0xF00ULL << 8 | 1,
                              [&]() { wrote = true; });
    ASSERT_TRUE(runUntil(w.rig->eq, 100 * sim::kSec,
                         [&]() { return wrote; }));
    EXPECT_EQ(w.rig->machine->disk().store().baseAt(5),
              0xF00ULL << 8 | 1);
}

TEST_P(BoundaryTest, BackToBackRedirectsSerialize)
{
    World w(GetParam());
    // Two immediately consecutive cold reads: the second must queue
    // behind the first's redirection and still return image data.
    std::vector<std::uint64_t> a, b;
    w.rig->guest->blk().read(4096, 32, [&](const auto &t) { a = t; });
    w.rig->guest->blk().read(8192, 32, [&](const auto &t) { b = t; });
    ASSERT_TRUE(runUntil(w.rig->eq, 100 * sim::kSec, [&]() {
        return !a.empty() && !b.empty();
    }));
    EXPECT_EQ(a[0], hw::sectorToken(kImageBase, 4096));
    EXPECT_EQ(b[0], hw::sectorToken(kImageBase, 8192));
    EXPECT_GE(w.vmm->mediator().stats().redirectedReads, 2u);
}

TEST_P(BoundaryTest, DevirtUnderContinuousLoad)
{
    World w(GetParam());
    // Guest hammers the disk while the copy finishes; the devirt
    // point must still be found and be seamless (no lost ops).
    std::uint64_t completed = 0;
    bool stop = false;
    std::function<void(int)> pump = [&](int i) {
        if (stop)
            return;
        sim::Lba lba = (sim::Lba(i) * 911) %
                       (w.rig->opts.imageSectors - 64);
        w.rig->guest->blk().read(lba, 16, [&, i](const auto &) {
            ++completed;
            pump(i + 1);
        });
    };
    pump(0);

    bool bare = false;
    w.vmm->onBareMetal([&]() { bare = true; });
    ASSERT_TRUE(runUntil(w.rig->eq, 40000 * sim::kSec,
                         [&]() { return bare; }));
    std::uint64_t at_devirt = completed;
    // Keep going after devirt: I/O must continue uninterrupted.
    ASSERT_TRUE(runUntil(w.rig->eq,
                         w.rig->eq.now() + 10 * sim::kSec, [&]() {
                             return completed > at_devirt + 20;
                         }));
    stop = true;
    EXPECT_FALSE(w.rig->machine->bus().anyInterceptActive());
}

INSTANTIATE_TEST_SUITE_P(AllControllers, BoundaryTest,
                         ::testing::Values(hw::StorageKind::Ide,
                                           hw::StorageKind::Ahci,
                                           hw::StorageKind::Nvme),
                         [](const auto &info) {
                             return storageName(info.param);
                         });

// --- VMM memory reservation ---

TEST(VmmMemory, ReservedViaE820)
{
    RigOptions o;
    o.imageSectors = (16 * sim::kMiB) / sim::kSectorSize;
    Rig rig(o);
    bmcast::VmmParams p = rig.fastVmmParams();
    bmcast::Vmm vmm(rig.eq, "vmm", *rig.machine, kServerMac,
                    o.imageSectors, p);
    bool ready = false;
    vmm.netboot([&]() { ready = true; });
    ASSERT_TRUE(
        runUntil(rig.eq, 60 * sim::kSec, [&]() { return ready; }));

    // The BIOS map hides the VMM region from the guest (§3.4)...
    EXPECT_TRUE(rig.machine->firmware().overlapsReserved(
        p.reservedBase, p.reservedBytes));
    // ...and, as in the prototype (§4.3), it is NOT released after
    // de-virtualization.
    bool bare = false;
    vmm.onBareMetal([&]() { bare = true; });
    rig.guest->start([]() {});
    ASSERT_TRUE(runUntil(rig.eq, 40000 * sim::kSec,
                         [&]() { return bare; }));
    EXPECT_TRUE(rig.machine->firmware().overlapsReserved(
        p.reservedBase, p.reservedBytes));
}

// --- Moderation edge settings ---

TEST(ModerationEdge, ZeroIntervalIsFullSpeed)
{
    RigOptions o;
    o.imageSectors = (32 * sim::kMiB) / sim::kSectorSize;
    Rig rig(o);
    bmcast::VmmParams p = rig.fastVmmParams();
    p.moderation.vmmWriteInterval = 1; // effectively no idle gap
    bmcast::BmcastDeployer dep(rig.eq, "dep", *rig.machine,
                               *rig.guest, kServerMac, o.imageSectors,
                               p, false);
    dep.run([]() {});
    ASSERT_TRUE(runUntil(rig.eq, 4000 * sim::kSec,
                         [&]() { return dep.bareMetalReached(); }));
    // 32 MiB at full speed finishes well inside the boot+copy span.
    EXPECT_LT(sim::toSeconds(dep.timeline().bareMetal), 120.0);
}

TEST(ModerationEdge, HugeSuspendStillCompletes)
{
    RigOptions o;
    o.imageSectors = (16 * sim::kMiB) / sim::kSectorSize;
    Rig rig(o);
    bmcast::VmmParams p = rig.fastVmmParams();
    p.moderation.guestIoFreqThreshold = 0.5; // trigger on any I/O
    p.moderation.vmmWriteSuspendInterval = 2 * sim::kSec;
    p.moderation.vmmWriteInterval = 2 * sim::kMs;
    bmcast::BmcastDeployer dep(rig.eq, "dep", *rig.machine,
                               *rig.guest, kServerMac, o.imageSectors,
                               p, false);
    dep.run([]() {});
    ASSERT_TRUE(runUntil(rig.eq, 40000 * sim::kSec,
                         [&]() { return dep.bareMetalReached(); }));
    EXPECT_GT(dep.vmm().backgroundCopy().suspensions(), 0u);
}

// --- Migration chaos: aborted mobility must roll back losslessly ---

constexpr std::uint64_t kMigImg = 0xCCAA000000000001ULL;

bmcast::CloudConfig
migChaosConfig()
{
    bmcast::CloudConfig cfg;
    cfg.machines = 2;
    cfg.machineTemplate.disk.capacityBytes = 2 * sim::kGiB;
    cfg.vmm.bootTime = 5 * sim::kSec;
    cfg.vmm.moderation.vmmWriteInterval = 2 * sim::kMs;
    cfg.vmm.moderation.guestIoFreqThreshold = 1e9;
    cfg.guestTemplate.boot.loaderBytes = 1 * sim::kMiB;
    cfg.guestTemplate.boot.kernelBytes = 4 * sim::kMiB;
    cfg.guestTemplate.boot.numReads = 40;
    cfg.guestTemplate.boot.cpuTotal = 500 * sim::kMs;
    cfg.guestTemplate.boot.regionBytes = 16 * sim::kMiB;
    cfg.migrate.memoryBytes = 8 * sim::kMiB;
    cfg.migrate.memoryDirtyBytesPerSec = 1 * sim::kMiB;
    cfg.migrate.stopCopyThresholdBytes = 2 * sim::kMiB;
    cfg.migrate.handoffTime = 50 * sim::kMs;
    return cfg;
}

/** Stripe-isolated random writer mirroring issued writes into a
 *  shadow disk (same contract as tests/migration_test.cc). */
struct MigWriter
{
    MigWriter(sim::EventQueue &eq, bmcast::Instance &inst,
              std::uint64_t seed, sim::Lba sectors)
        : eq(eq), inst(inst), rng(seed), sectors(sectors)
    {
        shadow.write(0, sectors, kMigImg);
        arm();
    }

    void
    arm()
    {
        eq.schedule(3 * sim::kMs, [this]() {
            migrate::MigrationManager *mig = inst.migration();
            if (mig && mig->finished())
                return;
            if ((!mig || !mig->paused()) &&
                (seq + 1) * 64 <= sectors) {
                sim::Lba off = rng.uniformInt(0, 31);
                std::uint64_t burst = rng.uniformInt(1, 64 - off);
                sim::Lba lba = seq * 64 + off;
                std::uint64_t base =
                    0xD000000000000000ULL | rng.next() >> 16;
                shadow.write(lba, burst, base);
                inst.guest().blk().write(
                    lba, static_cast<std::uint32_t>(burst), base,
                    [this]() { ++done; });
                ++seq;
                ++issued;
            }
            arm();
        });
    }

    sim::EventQueue &eq;
    bmcast::Instance &inst;
    sim::Rng rng;
    sim::Lba sectors;
    hw::DiskStore shadow;
    std::uint64_t seq = 0;
    std::uint64_t issued = 0;
    std::uint64_t done = 0;
};

/** Deploy, write, migrate into an armed fault plan; assert the
 *  migration aborts exactly once and the source rolls back with
 *  every completed write intact. */
void
runAbortedMigration(sim::FaultInjector &fi, FaultSite site)
{
    const sim::Lba img_sectors = (16 * sim::kMiB) / sim::kSectorSize;
    sim::EventQueue eq;
    bmcast::Cloud cloud(eq, "region", migChaosConfig());
    cloud.setFaultInjector(&fi);
    cloud.addImage("img", 16 * sim::kMiB, kMigImg);

    bmcast::Instance *inst = cloud.provision("img", nullptr);
    ASSERT_NE(inst, nullptr);
    ASSERT_TRUE(runUntil(eq, 40000 * sim::kSec, [&]() {
        return inst->state() == bmcast::Instance::State::BareMetal &&
               inst->lease().state() == cloud::LeaseState::Serving;
    }));

    hw::Machine &src = inst->machine();
    const unsigned src_slot = inst->lease().slot();
    MigWriter wr(eq, *inst, 77, img_sectors);

    ASSERT_EQ(cloud.migrate(*inst, 1u - src_slot),
              cloud::MigrateReject::None);
    migrate::MigrationManager *mig = inst->migration();

    // The plan fires exactly once, the migration aborts, and the
    // source de-virtualizes back to bare metal.
    ASSERT_TRUE(runUntil(eq, 40000 * sim::kSec, [&]() {
        return mig->finished() &&
               inst->state() == bmcast::Instance::State::BareMetal &&
               inst->lease().state() == cloud::LeaseState::Serving;
    })) << "aborted migration never rolled back; injector: "
        << fi.summary();

    EXPECT_TRUE(mig->stats().aborted);
    EXPECT_EQ(fi.triggers(site), 1u);
    EXPECT_GE(fi.queries(site), 1u);

    // The instance never moved: same machine, same slot, lease
    // Serving on the source, the failure counted.
    EXPECT_EQ(&inst->machine(), &src);
    EXPECT_EQ(inst->lease().slot(), src_slot);
    EXPECT_EQ(cloud.plane().stats().migrated, 0u);
    EXPECT_EQ(cloud.plane().stats().migrateFailed, 1u);

    // Zero lost writes: drain the tail, then the source disk must
    // hold the image plus every write the guest issued.
    ASSERT_TRUE(runUntil(eq, eq.now() + 400 * sim::kSec, [&]() {
        return wr.done == wr.issued && inst->guest().blk().idle();
    }));
    EXPECT_GT(wr.issued, 0u);
    EXPECT_TRUE(migrate::diffDisks(src.disk().store(), wr.shadow, 0,
                                   img_sectors)
                    .empty())
        << "rollback lost guest writes";

    // The reserved destination slot returns to the pool.
    ASSERT_TRUE(runUntil(eq, eq.now() + 400 * sim::kSec, [&]() {
        return cloud.freeMachines() == 1u;
    }));
}

TEST(MigrateChaos, StreamDropDuringPreCopyRollsBackToSource)
{
    sim::FaultInjector fi(99);
    sim::SitePlan drop;
    drop.fireOn = {2}; // second pre-copy round's shipment
    fi.arm(FaultSite::MigrateStreamDrop, drop);
    runAbortedMigration(fi, FaultSite::MigrateStreamDrop);
}

TEST(MigrateChaos, StreamDropAtStopAndCopyRollsBackToSource)
{
    // Key filter pins the drop to the stop-and-copy shipment (keyed
    // rounds+1); every pre-copy round passes unharmed, so the guest
    // was already paused when the abort unpauses it.
    sim::FaultInjector fi(99);
    sim::SitePlan drop;
    drop.probability = 1.0;
    drop.keyLo = 2;
    drop.keyHi = 1000;
    fi.arm(FaultSite::MigrateStreamDrop, drop);
    runAbortedMigration(fi, FaultSite::MigrateStreamDrop);
}

TEST(MigrateChaos, DestCrashAtHandoffRollsBackToSource)
{
    sim::FaultInjector fi(31);
    sim::SitePlan crash;
    crash.fireOn = {1};
    fi.arm(FaultSite::MigrateDestCrash, crash);
    runAbortedMigration(fi, FaultSite::MigrateDestCrash);
}

// Seed-sweep determinism for chaotic sharded migrations: the same
// (seed, plan) is bit-identical across shard counts, and different
// seeds genuinely diverge.
TEST(MigrateChaos, ChaoticShardedMigrationsAreSeedDeterministic)
{
    auto world = [](std::uint64_t seed, unsigned shards) {
        migratebench::MigrateWorldParams p;
        p.racks = 4;
        p.shards = shards;
        p.seed = seed;
        p.imageBytes = 8 * sim::kMiB;
        p.migrate.memoryBytes = 4 * sim::kMiB;
        p.migrate.memoryDirtyBytesPerSec = 512 * sim::kKiB;
        p.migrate.stopCopyThresholdBytes = 1 * sim::kMiB;
        p.migrate.handoffTime = 20 * sim::kMs;
        p.runFor = 5 * sim::kSec;
        p.streamDrop.probability = 0.25;
        p.destCrash.probability = 0.25;
        migratebench::MigrateWorld w(p);
        w.run();
        return w.fingerprint();
    };

    bool saw_divergence = false;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        std::uint64_t serial = world(seed, 1);
        EXPECT_EQ(world(seed, 2), serial) << "seed " << seed;
        EXPECT_EQ(world(seed, 4), serial) << "seed " << seed;
        if (serial != world(seed + 100, 1))
            saw_divergence = true;
    }
    EXPECT_TRUE(saw_divergence)
        << "chaos plans never changed an outcome across seeds";
}

} // namespace
