/**
 * @file
 * An ordered set of disjoint half-open integer intervals with
 * coalescing. Backs the BMcast block bitmap (EMPTY/FILLED state per
 * disk block): streaming deployment fills enormous contiguous ranges,
 * so intervals are orders of magnitude more compact than a bit per
 * sector while keeping every query O(log n).
 */

#ifndef SIMCORE_INTERVAL_SET_HH
#define SIMCORE_INTERVAL_SET_HH

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace sim {

/** A set of disjoint [start, end) intervals over uint64. */
class IntervalSet
{
  public:
    using Value = std::uint64_t;
    using Range = std::pair<Value, Value>; //!< [first, second)

    /** Insert [start, end), merging with any overlapping/adjacent
     *  intervals. */
    void insert(Value start, Value end);

    /** Remove [start, end) from the set. */
    void erase(Value start, Value end);

    /** True if every point of [start, end) is in the set. */
    bool covers(Value start, Value end) const;

    /** True if any point of [start, end) is in the set. */
    bool intersects(Value start, Value end) const;

    /** True if the single point is in the set. */
    bool contains(Value point) const { return covers(point, point + 1); }

    /**
     * Sub-ranges of [start, end) NOT in the set, in ascending order.
     */
    std::vector<Range> gaps(Value start, Value end) const;

    /**
     * The first point >= @p from that is not in the set, bounded by
     * @p limit; std::nullopt if [from, limit) is fully covered.
     */
    std::optional<Value> firstGap(Value from, Value limit) const;

    /** Total points covered. */
    Value coveredCount() const;

    /** Number of stored intervals. */
    std::size_t intervalCount() const { return ivs.size(); }

    bool empty() const { return ivs.empty(); }
    void clear() { ivs.clear(); }

    /** All intervals in order (serialization / tests). */
    std::vector<Range> intervals() const;

  private:
    /** start -> end (exclusive). */
    std::map<Value, Value> ivs;
};

} // namespace sim

#endif // SIMCORE_INTERVAL_SET_HH
