/**
 * @file
 * The conventional-VMM baseline: KVM with the ELI (exit-less
 * interrupts) patch, processor pinning and 2-GB huge pages — the
 * strongest configuration the paper compares against (§5).
 *
 * The guest runs para-virtualized storage (virtio) over a local disk
 * or a network image (NFS / iSCSI), and direct device assignment for
 * InfiniBand. Unlike BMcast, the virtualization layer never goes
 * away: the cost profile stays installed, and the virtio path adds
 * per-operation work forever.
 */

#ifndef BASELINES_KVM_HH
#define BASELINES_KVM_HH

#include <functional>
#include <memory>

#include "aoe/initiator.hh"
#include "guest/block_driver.hh"
#include "hw/e1000_driver.hh"
#include "hw/machine.hh"
#include "simcore/sim_object.hh"

namespace baselines {

/** Guest image/storage backend. */
enum class KvmStorage { Local, Nfs, Iscsi };

/** KVM configuration and calibrated overhead knobs. */
struct KvmConfig
{
    bool eli = true;
    bool hugePages = true;
    bool pinned = true;
    KvmStorage storage = KvmStorage::Local;

    /** Host OS + KVM boot (paper §5.1: 30 s). */
    sim::Tick hostBoot = 30 * sim::kSec;

    /** Host OS background activity. */
    double hostCpuSteal = 0.015;
    /** Nested paging with huge pages: lower miss rate, 2D walks. */
    double tlbMissRateMult = 1.6;
    double tlbMissLatencyMult = 2.0;
    double tlbMissRateMultNoHuge = 4.0;
    /** Host-kernel/QEMU cache footprint (paper §5.5.1). */
    double cachePollution = 0.35;
    /** Lock-holder preemption (paper §5.5.1, [47]). */
    double lockHolderPreemptProb = 0.004;
    sim::Tick vcpuDescheduleNs = 150 * sim::kUs;
    double lockHolderPreemptProbUnpinned = 0.015;
    /** IOMMU + nested paging on the RDMA path (§5.5.3: +23.6%). */
    double rdmaLatencyOverhead = 0.236;
    /** Per-interrupt software cost (ELI nearly removes it). */
    sim::Tick interruptExtraEli = 550;       // ns
    sim::Tick interruptExtraNoEli = 5000;    // ns

    /** virtio-blk per-request and per-byte costs (vring handling,
     *  grant/copy work; writes copy once more than reads). */
    sim::Tick virtioPerOp = 140 * sim::kUs;
    double virtioPerKiBReadNs = 820.0;
    double virtioPerKiBWriteNs = 1090.0;

    /** Extra per-op server-side cost for file-level NFS vs
     *  block-level iSCSI. */
    sim::Tick nfsPerOp = 250 * sim::kUs;
    sim::Tick iscsiPerOp = 400 * sim::kUs;
};

/** virtio-blk front end + host back end (local disk or network). */
class KvmBlockDriver : public sim::SimObject,
                       public guest::BlockDriver
{
  public:
    KvmBlockDriver(sim::EventQueue &eq, std::string name,
                   hw::Machine &machine, KvmConfig config,
                   net::MacAddr serverMac);

    void initialize() override;
    void read(sim::Lba lba, std::uint32_t count,
              guest::ReadDone done) override;
    void write(sim::Lba lba, std::uint32_t count,
               std::uint64_t contentBase,
               guest::WriteDone done) override;
    std::uint64_t opsCompleted() const override { return numOps; }
    sim::Tick totalLatency() const override { return latencySum; }

  private:
    sim::Tick virtioCost(sim::Bytes bytes, bool isWrite) const;
    sim::Tick backendPerOp() const;

    hw::Machine &machine_;
    KvmConfig cfg;
    net::MacAddr serverMac;

    std::unique_ptr<hw::MemArena> arena;
    std::unique_ptr<hw::E1000Driver> nic;
    std::unique_ptr<aoe::AoeInitiator> aoe_;

    std::uint64_t numOps = 0;
    sim::Tick latencySum = 0;
};

/** The hypervisor instance on one machine. */
class KvmVmm : public sim::SimObject
{
  public:
    KvmVmm(sim::EventQueue &eq, std::string name, hw::Machine &machine,
           KvmConfig config, net::MacAddr serverMac);

    /** Boot the host + KVM; the guest may start afterwards. */
    void boot(std::function<void()> ready);

    /** The virtio driver to hand to the guest. */
    KvmBlockDriver &blockDriver() { return *blk; }

    /** The cost profile KVM imposes (never removed). */
    hw::VirtProfile profile() const;

    const KvmConfig &config() const { return cfg; }

  private:
    hw::Machine &machine_;
    KvmConfig cfg;
    std::unique_ptr<KvmBlockDriver> blk;
};

} // namespace baselines

#endif // BASELINES_KVM_HH
