#include "simcore/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "simcore/logging.hh"

namespace sim {

Table::Table(std::vector<std::string> headers_)
    : headers(std::move(headers_))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIfNot(cells.size() == headers.size(),
               "table row width mismatch: ", cells.size(), " vs ",
               headers.size());
    rows.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << "  ";
            // Left-align the first column (labels), right-align rest.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(width[c])) << cells[c];
        }
        os << "\n";
    };

    print_row(headers);
    std::string sep;
    for (std::size_t c = 0; c < headers.size(); ++c) {
        if (c)
            sep += "  ";
        sep += std::string(width[c], '-');
    }
    os << sep << "\n";
    for (const auto &row : rows)
        print_row(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::pct(double value, double baseline)
{
    if (baseline == 0.0)
        return "n/a";
    double rel = (value / baseline - 1.0) * 100.0;
    std::ostringstream os;
    os << std::showpos << std::fixed << std::setprecision(1) << rel
       << "%";
    return os.str();
}

void
printBarChart(std::ostream &os, const std::string &title,
              const std::vector<std::pair<std::string, double>> &bars,
              const std::string &unit, int width)
{
    os << title << "\n";
    double max_v = 0.0;
    std::size_t label_w = 0;
    for (const auto &[label, v] : bars) {
        max_v = std::max(max_v, v);
        label_w = std::max(label_w, label.size());
    }
    for (const auto &[label, v] : bars) {
        int n = max_v > 0.0
                    ? static_cast<int>(v / max_v *
                                       static_cast<double>(width))
                    : 0;
        os << "  " << std::left
           << std::setw(static_cast<int>(label_w)) << label << " |"
           << std::string(static_cast<std::size_t>(n), '#')
           << std::string(static_cast<std::size_t>(width - n), ' ')
           << "| " << Table::num(v) << " " << unit << "\n";
    }
}

} // namespace sim
