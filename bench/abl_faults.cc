/**
 * @file
 * Ablation: deployment robustness under injected faults.
 *
 * Runs one full BMcast deployment per scenario through the central
 * sim::FaultInjector and reports instance-up / bare-metal times plus
 * the recovery telemetry (retransmissions, terminal fetch errors,
 * failovers). Scenarios:
 *
 *  - no_injector:   plain deployment, no injector attached.
 *  - inactive:      injector attached but nothing armed. Must finish
 *                   at the exact same tick as no_injector — the
 *                   determinism contract says an unarmed injector
 *                   draws no randomness and adds no events.
 *  - loss_2 / loss_10: Bernoulli frame drops at the switch; the AoE
 *                   retransmission machinery absorbs them.
 *  - disk_faults:   media errors (drive-internal retries) + latency
 *                   spikes on the local disk.
 *  - failover_50:   a secondary vblade server; the primary crashes
 *                   for good at 50% deployed and the stream must
 *                   finish from the secondary via the block bitmap.
 *
 * Every scenario must end with a byte-identical deployed image.
 * Emits machine-readable BENCH_faults.json; EXPERIMENTS.md records
 * the baseline numbers. `--smoke` shrinks the image for the
 * bench-smoke ctest label.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "simcore/fault_injector.hh"
#include "simcore/table.hh"

namespace {

constexpr net::MacAddr kServer2Mac = 0x525400000002ULL;

enum class Mode {
    NoInjector,
    Inactive,
    Loss2,
    Loss10,
    DiskFaults,
    Failover50,
};

struct Result
{
    std::string name;
    bool ok = false;
    sim::Tick bareTick = 0;
    double upSec = 0.0;
    double bareSec = 0.0;
    std::uint64_t retx = 0;
    std::uint64_t fetchErrors = 0;
    std::uint64_t failovers = 0;
    std::string faults;
    bench::ScaleRecord rec; ///< uniform cross-bench scaling record
};

Result
runScenario(const char *name, Mode mode, sim::Lba imageSectors)
{
    Result r;
    r.name = name;

    bench::Testbed tb(1, hw::StorageKind::Ahci, imageSectors);

    std::unique_ptr<aoe::AoeServer> server2;
    std::vector<net::MacAddr> chain{bench::kServerMac};
    if (mode == Mode::Failover50) {
        net::Port &p2 = tb.lan.attach(
            kServer2Mac, net::PortConfig{1e9, 9000, 0.0});
        aoe::ServerParams sp;
        sp.workers = 8;
        server2 = std::make_unique<aoe::AoeServer>(tb.eq, "server2",
                                                   p2, sp);
        server2->addTarget(0, 0, imageSectors, bench::kImageBase);
        chain.push_back(kServer2Mac);
    }

    sim::FaultInjector fi(2026);
    switch (mode) {
      case Mode::Loss2: {
          sim::SitePlan p;
          p.probability = 0.02;
          fi.arm(sim::FaultSite::NetDrop, p);
          break;
      }
      case Mode::Loss10: {
          sim::SitePlan p;
          p.probability = 0.10;
          fi.arm(sim::FaultSite::NetDrop, p);
          break;
      }
      case Mode::DiskFaults: {
          sim::SitePlan err;
          err.probability = 0.002;
          fi.arm(sim::FaultSite::DiskReadError, err);
          fi.arm(sim::FaultSite::DiskWriteError, err);
          sim::SitePlan spike;
          spike.probability = 0.001;
          spike.magnitude = 20 * sim::kMs;
          fi.arm(sim::FaultSite::DiskLatencySpike, spike);
          break;
      }
      default:
        break;
    }
    if (mode != Mode::NoInjector) {
        tb.lan.setFaultInjector(&fi);
        tb.server->setFaultInjector(&fi);
        if (server2)
            server2->setFaultInjector(&fi);
        tb.machine().setFaultInjector(&fi);
    }

    bmcast::BmcastDeployer dep(tb.eq, "dep", tb.machine(), tb.guest(),
                               chain, imageSectors,
                               bench::paperVmmParams(), false);

    bool observing = false;
    bool killed = false;
    sim::Lba baseFilled = 0;
    dep.run([]() {});
    const auto t0 = std::chrono::steady_clock::now();
    bool done = tb.runUntil(500000 * sim::kSec, [&]() {
        if (mode == Mode::Failover50) {
            bmcast::Vmm &vmm = dep.vmm();
            if (!observing &&
                vmm.phase() == bmcast::Vmm::Phase::Deployment) {
                observing = true;
                baseFilled = vmm.bitmap().filledCount();
            }
            if (observing && !killed &&
                vmm.bitmap().filledCount() - baseFilled >=
                    imageSectors / 2) {
                killed = true;
                tb.server->crash(); // stays down for good
            }
        }
        return dep.bareMetalReached();
    });
    const auto t1 = std::chrono::steady_clock::now();

    r.rec.nodes = 1;
    r.rec.shards = 1;
    r.rec.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.rec.events = tb.eq.executed();
    r.rec.eventsPerSec =
        r.rec.wallMs > 0.0
            ? static_cast<double>(r.rec.events) /
                  (r.rec.wallMs / 1000.0)
            : 0.0;

    r.ok = done &&
           tb.machine().disk().store().rangeHasBase(
               0, imageSectors, bench::kImageBase);
    if (mode == Mode::Failover50)
        r.ok = r.ok && killed && dep.vmm().failovers() == 1;
    r.bareTick = dep.timeline().bareMetal;
    r.upSec = sim::toSeconds(dep.timeline().guestBootDone);
    r.bareSec = sim::toSeconds(dep.timeline().bareMetal);
    r.retx = dep.vmm().initiator().retransmissions();
    r.fetchErrors = dep.vmm().fetchErrors();
    r.failovers = dep.vmm().failovers();
    r.faults = fi.summary();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const sim::Lba image_sectors =
        (smoke ? 128 * sim::kMiB : 2 * sim::kGiB) / sim::kSectorSize;

    bench::figureHeader(
        "Ablation: deployment robustness under injected faults");
    std::cout << "image: "
              << (image_sectors * sim::kSectorSize) / sim::kMiB
              << " MiB" << (smoke ? " (smoke)" : "") << "\n";

    std::vector<Result> rows;
    rows.push_back(
        runScenario("no_injector", Mode::NoInjector, image_sectors));
    rows.push_back(
        runScenario("inactive", Mode::Inactive, image_sectors));
    rows.push_back(runScenario("loss_2", Mode::Loss2, image_sectors));
    rows.push_back(
        runScenario("loss_10", Mode::Loss10, image_sectors));
    rows.push_back(
        runScenario("disk_faults", Mode::DiskFaults, image_sectors));
    rows.push_back(
        runScenario("failover_50", Mode::Failover50, image_sectors));

    sim::Table t({"Scenario", "OK", "Instance up (s)",
                  "Bare metal (s)", "Retx", "Errors", "Failovers"});
    for (const auto &r : rows)
        t.addRow({r.name, r.ok ? "yes" : "NO",
                  sim::Table::num(r.upSec, 2),
                  sim::Table::num(r.bareSec, 2),
                  std::to_string(r.retx),
                  std::to_string(r.fetchErrors),
                  std::to_string(r.failovers)});
    t.print(std::cout);
    for (const auto &r : rows) {
        if (!r.faults.empty())
            std::cout << r.name << " faults: " << r.faults << "\n";
    }

    // Determinism contract: an attached-but-unarmed injector changes
    // nothing, down to the exact bare-metal tick.
    bool identical = rows[0].bareTick == rows[1].bareTick;
    std::cout << "\nunarmed-injector timing identical to baseline: "
              << (identical ? "yes" : "NO") << "\n";

    std::ofstream json("BENCH_faults.json");
    json << "{\n  \"bench\": \"abl_faults\",\n"
         << "  \"image_mib\": "
         << (image_sectors * sim::kSectorSize) / sim::kMiB << ",\n"
         << "  \"unarmed_identical\": "
         << (identical ? "true" : "false") << ",\n"
         << "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        json << "    {\"name\": \"" << r.name << "\", "
             << "\"ok\": " << (r.ok ? "true" : "false") << ", "
             << "\"instance_up_sec\": " << r.upSec << ", "
             << "\"bare_metal_sec\": " << r.bareSec << ", "
             << "\"retransmissions\": " << r.retx << ", "
             << "\"fetch_errors\": " << r.fetchErrors << ", "
             << "\"failovers\": " << r.failovers << ", "
             << "\"record\": " << bench::scaleRecordJson(r.rec)
             << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    std::vector<bench::ScaleRecord> recs;
    for (const auto &r : rows)
        recs.push_back(r.rec);
    json << "  ],\n  " << bench::scaleRecordsJson(recs, "  ")
         << "\n}\n";
    json.close();
    std::cout << "wrote BENCH_faults.json\n";

    bool ok = identical;
    for (const auto &r : rows)
        ok = ok && r.ok;
    return ok ? 0 : 1;
}
