/**
 * @file
 * Fleet-scale control-plane world on the sharded kernel.
 *
 * Extends the storm world's shape — R racks, each with its own ToR
 * segment, seed server and machines, one ShardGroup rack per queue —
 * with the full PR-7 control stack:
 *
 *  - a cloud::ControlPlane lives on rack 0's queue; its
 *    ProvisionerPort implementation (FleetPort) carries deployment
 *    and release orders to the owning rack as cross-shard messages
 *    and the completion notifications back, so lease admission,
 *    placement and teardown are exercised *through* the mailbox
 *    fabric rather than inline;
 *  - a shared net::Topology charges every cross-rack frame on the
 *    source rack's up-link (at hand-off, on the source shard) and
 *    the destination rack's down-link (at arrival, on the
 *    destination shard) — the split-charging contract; links model
 *    FIFO occupancy, so deployment and serving flows genuinely
 *    queue behind each other;
 *  - an optional cloud::CongestionController shapes each lease's
 *    deployment fetches against its rack lane (linkShare of the
 *    effective aggregation capacity), which is what keeps serving
 *    headroom during a flash crowd;
 *  - per-rack serving traffic: rack r streams stamped frames to a
 *    sink in rack (r+1) % R, sharing the sink rack's down-link with
 *    deployment data. Goodput counts only frames delivered within
 *    the one-way latency SLO — the paper's agility claim is that
 *    provisioning storms must not break serving tenants.
 *
 * Deployments are also deliberately cross-rack: rack r's nodes pull
 * their image from rack (r+1) % R's seed, so deployment data rides
 * up_[r+1] and down_[r] for the whole run.
 *
 * The world is a pure function of (nodes, racks, window, image,
 * seed, shaping): the shard count changes which thread executes a
 * rack and nothing else, which fingerprint() asserts.
 */

#ifndef BENCH_FLEET_WORLD_HH
#define BENCH_FLEET_WORLD_HH

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "aoe/server.hh"
#include "bench/harness.hh"
#include "bench/storm_world.hh"
#include "bmcast/deployer.hh"
#include "cloud/congestion.hh"
#include "cloud/control_plane.hh"
#include "guest/guest_os.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "simcore/fault_injector.hh"
#include "simcore/logging.hh"
#include "simcore/shard_group.hh"

namespace bench {

struct FleetParams
{
    unsigned nodes = 96; ///< must be a multiple of racks
    unsigned racks = 8;
    unsigned shards = 1;
    /** Inter-rack link latency == the conservative lookahead. */
    sim::Tick uplinkLatency = 1 * sim::kMs;
    sim::Bytes imageBytes = 16 * sim::kMiB;
    std::uint64_t seed = 1;

    /** @name Aggregation fabric */
    /// @{
    double uplinkBps = 4e9;
    double oversubscription = 4.0; ///< effective link = 1 Gb/s
    /// @}

    /** @name Deployment shaping (the congestion controller) */
    /// @{
    bool shaped = true;
    double linkShare = 0.6; ///< deployment's share of a rack link
    double tenantShare = 0.5; ///< per-tenant cap inside a lane
    /// @}

    /** @name Control plane */
    /// @{
    std::size_t queueCapacity = 4096;
    std::size_t perTenantQueueCap = 0;
    sim::Tick scrubTime = 0;
    /// @}

    /** @name Serving traffic (0 interval disables) */
    /// @{
    sim::Bytes servingPayload = 8 * sim::kKiB;
    sim::Tick servingInterval = 250 * sim::kUs;
    /**
     * One-way delivery SLO; later frames count as lost goodput. A
     * cross-rack serving frame traverses two aggregation links, and a
     * shaped deployment keeps at most one 1 MiB copy block in flight
     * per rack lane (8.4 ms of serialization at the 1 Gb/s effective
     * link), so the shaped worst case is one burst on each link:
     * ~17 ms. The SLO sits just above that. Unshaped deployment
     * stacks one burst per concurrent flow on the same links, so a
     * flash crowd pushes serving delay far past the SLO.
     */
    sim::Tick servingSlo = 20 * sim::kMs;
    /// @}
};

class FleetWorld
{
  public:
    /** MAC scheme: 0x5254 | rack (bits 24-31) | kind (bits 20-23) |
     *  station index. The uplink routes on the rack field alone. */
    static net::MacAddr
    serverMac(unsigned rack)
    {
        return 0x525400000001ULL + (net::MacAddr(rack) << 24);
    }
    static net::MacAddr
    nodeMac(unsigned rack, unsigned i)
    {
        return 0x525400100000ULL + (net::MacAddr(rack) << 24) + i;
    }
    static net::MacAddr
    mgmtMac(unsigned rack, unsigned i)
    {
        return 0x525400200000ULL + (net::MacAddr(rack) << 24) + i;
    }
    static net::MacAddr
    servSrcMac(unsigned rack)
    {
        return 0x525400300000ULL + (net::MacAddr(rack) << 24);
    }
    static net::MacAddr
    servSinkMac(unsigned rack)
    {
        return 0x525400300001ULL + (net::MacAddr(rack) << 24);
    }
    static unsigned
    rackOfMac(net::MacAddr mac)
    {
        return static_cast<unsigned>((mac >> 24) & 0xFF);
    }

    /** EtherType of serving-traffic frames (sink filter). */
    static constexpr std::uint16_t kServEtherType = 0x88B5;

    explicit FleetWorld(FleetParams p)
        : prm(p),
          group(sim::ShardGroup::Params{
              p.racks, p.shards, p.uplinkLatency, 4096}),
          port_(*this)
    {
        sim::fatalIf(prm.racks == 0 || prm.nodes % prm.racks != 0,
                     "fleet nodes must stripe evenly over racks");
        sectors_ = prm.imageBytes / sim::kSectorSize;

        net::TopologyConfig tc;
        tc.racks = prm.racks;
        tc.uplinkBps = prm.uplinkBps;
        tc.oversubscription = prm.oversubscription;
        topo_ = std::make_unique<net::Topology>(tc);
        if (prm.shaped) {
            cloud::CongestionParams cp;
            cp.enabled = true;
            cp.linkShare = prm.linkShare;
            cp.tenantShare = prm.tenantShare;
            congestion_ =
                std::make_unique<cloud::CongestionController>(
                    cp, prm.racks, topo_.get());
        }

        activeDeploys_.assign(prm.racks, 0);
        racks_.reserve(prm.racks);
        for (unsigned r = 0; r < prm.racks; ++r) {
            auto rack = std::make_unique<Rack>();
            sim::EventQueue &eq = group.rackQueue(r);

            rack->net = std::make_unique<net::Network>(
                eq, "rack" + std::to_string(r) + ".tor",
                4 * sim::kUs,
                sim::Rng::seedForShard("tor", prm.seed, r));
            rack->faults =
                std::make_unique<sim::FaultInjector>(prm.seed, r);
            rack->net->setFaultInjector(rack->faults.get());

            // A 10G seed NIC: the aggregation fabric, not the seed
            // port, is the scarce resource the controller manages.
            net::Port &sp = rack->net->attach(
                serverMac(r), net::PortConfig{10e9, 9000, 0.0});
            aoe::ServerParams spar;
            spar.workers = 8;
            spar.cacheHitRate = 0.9;
            rack->server = std::make_unique<aoe::AoeServer>(
                eq, "rack" + std::to_string(r) + ".seed", sp, spar);
            rack->server->addTarget(0, 0, sectors_, kImageBase);
            rack->server->setFaultInjector(rack->faults.get());

            if (prm.servingInterval > 0 && prm.racks > 1) {
                rack->servPort = &rack->net->attach(
                    servSrcMac(r), net::PortConfig{1e9, 9000, 0.0});
                net::Port &sink = rack->net->attach(
                    servSinkMac(r), net::PortConfig{1e9, 9000, 0.0});
                Rack *rk = rack.get();
                sink.onReceive([this, rk, r](const net::Frame &f) {
                    onServingFrame(*rk, r, f);
                });
            }

            // Cross-rack frames: book the source rack's up-link
            // here (source shard), ship through the mailbox, book
            // the destination's down-link on arrival (its shard).
            rack->net->setUplink([this, r](const net::Frame &f,
                                           sim::Tick depart) {
                unsigned dst = rackOfMac(f.dst);
                if (dst >= prm.racks || dst == r)
                    return; // not routable: drop at the spine
                sim::Bytes wire = f.wireSize();
                sim::Tick up = topo_->chargeUplink(r, wire, depart);
                sim::Tick arrive = up +
                                   topo_->config().aggHopLatency +
                                   prm.uplinkLatency;
                group.postToRack(r, dst, arrive, [this, dst, f,
                                                  wire]() {
                    Rack &rk = *racks_[dst];
                    sim::EventQueue &q = group.rackQueue(dst);
                    sim::Tick done =
                        topo_->chargeDownlink(dst, wire, q.now());
                    if (done <= q.now()) {
                        rk.net->inject(f);
                    } else {
                        q.scheduleAt(done,
                                     [net = rk.net.get(), f]() {
                                         net->inject(f);
                                     });
                    }
                });
            });

            racks_.push_back(std::move(rack));
        }

        // Machines: slot s lives in rack s % racks (the plane's
        // rackOfSlot contract), persistent across leases.
        const unsigned per_rack = prm.nodes / prm.racks;
        for (unsigned r = 0; r < prm.racks; ++r)
            racks_[r]->slots.resize(per_rack);
        for (unsigned s = 0; s < prm.nodes; ++s) {
            unsigned r = s % prm.racks;
            unsigned idx = s / prm.racks;
            Rack &rack = *racks_[r];
            sim::EventQueue &eq = group.rackQueue(r);

            hw::MachineConfig mc;
            mc.name = "rack" + std::to_string(r) + ".node" +
                      std::to_string(idx);
            mc.storage = hw::StorageKind::Ahci;
            mc.disk.capacityBytes = 4 * prm.imageBytes;
            mc.hasInfiniBand = false;
            mc.seed = sim::Rng::seedForShard(
                "machine" + std::to_string(s), prm.seed, r);
            rack.slots[idx].machine = std::make_unique<hw::Machine>(
                eq, mc, *rack.net, nodeMac(r, idx), *rack.net,
                mgmtMac(r, idx));
            rack.slots[idx].machine->setFaultInjector(
                rack.faults.get());
        }

        cloud::ControlPlaneParams cpp;
        cpp.queue.capacity = prm.queueCapacity;
        cpp.queue.perTenantCap = prm.perTenantQueueCap;
        cpp.scrubTime = prm.scrubTime;
        plane_ = std::make_unique<cloud::ControlPlane>(
            group.rackQueue(0), "fleet.cp", cpp, port_);
    }

    /** @name Control-plane surface (rack-0 context or between runs) */
    /// @{
    cloud::Lease *
    submitLease(cloud::LeaseRequest rq,
                cloud::Lease::ServingFn onServing = {},
                cloud::Lease::RejectedFn onRejected = {})
    {
        return plane_->submit(
            std::move(rq),
            [this, fn = std::move(onServing)](cloud::Lease &l) {
                if (activeDeploys_[l.rack()] > 0)
                    --activeDeploys_[l.rack()];
                deployDone_.insert(l.id());
                if (fn)
                    fn(l);
            },
            std::move(onRejected));
    }

    void releaseLease(cloud::Lease &l) { plane_->release(l); }
    cloud::ControlPlane &plane() { return *plane_; }
    cloud::CongestionController *congestion()
    {
        return congestion_.get();
    }
    net::Topology &topology() { return *topo_; }
    /// @}

    /** @name Serving traffic */
    /// @{
    /** Start every rack's serving stream (slightly desynchronized)
     *  until @p until. Call before the first run(). */
    void
    startServing(sim::Tick start, sim::Tick until)
    {
        if (prm.servingInterval == 0 || prm.racks < 2)
            return;
        for (unsigned r = 0; r < prm.racks; ++r) {
            sim::Tick t0 = start + r * 37 * sim::kUs;
            group.rackQueue(r).scheduleAt(
                t0, [this, r, until]() { servTick(r, until); });
        }
    }

    /** Goodput bytes (within the SLO) summed over sinks; safe to
     *  read between run() calls — the window snapshots. */
    sim::Bytes
    servingGoodBytes() const
    {
        sim::Bytes b = 0;
        for (const auto &r : racks_)
            b += r->servGoodBytes;
        return b;
    }
    sim::Bytes
    servingRxBytes() const
    {
        sim::Bytes b = 0;
        for (const auto &r : racks_)
            b += r->servRxBytes;
        return b;
    }
    std::uint64_t
    servingLateFrames() const
    {
        std::uint64_t n = 0;
        for (const auto &r : racks_)
            n += r->servLate;
        return n;
    }
    sim::Tick
    servingMaxDelay() const
    {
        sim::Tick d = 0;
        for (const auto &r : racks_)
            d = std::max(d, r->servMaxDelay);
        return d;
    }
    /// @}

    /** @name Driving */
    /// @{
    /** Advance the group to @p t in lookahead-aligned chunks. */
    void
    runTo(sim::Tick t, sim::Tick chunk = 250 * sim::kMs)
    {
        chunk -= chunk % group.window();
        if (chunk == 0)
            chunk = group.window();
        t -= t % group.window();
        while (group.committed() < t)
            group.run(std::min(t, group.committed() + chunk));
    }

    /** Run until @p pred (checked between chunks) or @p deadline. */
    template <typename Pred>
    bool
    runUntil(sim::Tick deadline, Pred &&pred,
             sim::Tick chunk = 250 * sim::kMs)
    {
        chunk -= chunk % group.window();
        if (chunk == 0)
            chunk = group.window();
        deadline -= deadline % group.window();
        while (!pred() && group.committed() < deadline)
            group.run(
                std::min(deadline, group.committed() + chunk));
        return pred();
    }
    /// @}

    /**
     * Deterministic fold of the simulated result stream: every
     * lease's recorded timeline and final state, every seed's bytes,
     * every link's occupancy counters, every sink's goodput, every
     * rack queue's event total. Equal across shard counts by the
     * ShardGroup contract.
     */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = sim::kFingerprintSeed;
        for (unsigned r = 0; r < prm.racks; ++r) {
            const Rack &rack = *racks_[r];
            h = sim::fingerprintMix(h, rack.server->dataBytesOut());
            h = sim::fingerprintMix(h, rack.net->framesForwarded());
            h = sim::fingerprintMix(h, rack.net->framesUplinked());
            h = sim::fingerprintMix(h, rack.servTx);
            h = sim::fingerprintMix(h, rack.servRxBytes);
            h = sim::fingerprintMix(h, rack.servGoodBytes);
            h = sim::fingerprintMix(h, topo_->uplinkBytes(r));
            h = sim::fingerprintMix(h, topo_->downlinkBytes(r));
            h = sim::fingerprintMix(h, topo_->uplinkFrames(r));
            h = sim::fingerprintMix(h, topo_->downlinkFrames(r));
            if (congestion_) {
                h = sim::fingerprintMix(
                    h, congestion_->grantedBytes(r));
                h = sim::fingerprintMix(
                    h, congestion_->throttleDelay(r));
            }
            h = sim::fingerprintMix(h,
                                    group.rackQueue(r).executed());
        }
        for (const auto &lp : plane_->leases()) {
            const cloud::Lease &l = *lp;
            h = sim::fingerprintMix(h, l.id());
            h = sim::fingerprintMix(
                h, static_cast<std::uint64_t>(l.state()));
            h = sim::fingerprintMix(
                h, static_cast<std::uint64_t>(l.rejectReason()));
            h = sim::fingerprintMix(h, l.slot());
            h = sim::fingerprintMix(h, l.rack());
            h = sim::fingerprintMix(h, l.submittedAt());
            h = sim::fingerprintMix(h, l.placedAt());
            h = sim::fingerprintMix(h, l.servingAt());
            h = sim::fingerprintMix(h, l.releasedAt());
        }
        const cloud::ControlPlaneStats &st = plane_->stats();
        h = sim::fingerprintMix(h, st.submitted);
        h = sim::fingerprintMix(h, st.placed);
        h = sim::fingerprintMix(h, st.served);
        h = sim::fingerprintMix(h, st.released);
        h = sim::fingerprintMix(h, st.canceled);
        for (std::uint64_t rej : st.rejected)
            h = sim::fingerprintMix(h, rej);
        return h;
    }

    std::uint64_t totalEvents() const { return group.totalExecuted(); }

    /** One slot: a persistent machine plus the current lease's guest
     *  and deployer (retired pairs park in the rack graveyard). */
    struct Slot
    {
        std::unique_ptr<hw::Machine> machine;
        std::unique_ptr<guest::GuestOs> guest;
        std::unique_ptr<bmcast::BmcastDeployer> dep;
        std::uint64_t leaseId = 0;
    };

    struct Rack
    {
        std::unique_ptr<net::Network> net;
        std::unique_ptr<sim::FaultInjector> faults;
        std::unique_ptr<aoe::AoeServer> server;
        std::vector<Slot> slots;
        /** Halted guests/deployers of released leases: queued events
         *  may still reference them; they retire harmlessly. */
        std::vector<std::unique_ptr<guest::GuestOs>> oldGuests;
        std::vector<std::unique_ptr<bmcast::BmcastDeployer>> oldDeps;
        net::Port *servPort = nullptr;
        std::uint64_t servTx = 0;
        sim::Bytes servRxBytes = 0;
        sim::Bytes servGoodBytes = 0;
        std::uint64_t servLate = 0;
        sim::Tick servMaxDelay = 0;
        std::uint64_t releases = 0;
    };

    FleetParams prm;
    sim::ShardGroup group;

  private:
    /** The plane's mechanism boundary: orders travel to the owning
     *  rack as cross-shard messages, completions travel back. */
    class FleetPort : public cloud::ProvisionerPort
    {
      public:
        explicit FleetPort(FleetWorld &w) : w_(w) {}

        unsigned slots() const override { return w_.prm.nodes; }
        unsigned
        rackOfSlot(unsigned slot) const override
        {
            return slot % w_.prm.racks;
        }
        void
        startDeployment(cloud::Lease &l) override
        {
            w_.beginDeploy(l);
        }
        void
        startRelease(cloud::Lease &l) override
        {
            w_.beginRelease(l);
        }
        /** In-flight deployments per rack — plane-shard state; the
         *  topology's link watermarks belong to other shards. */
        std::uint64_t
        rackScore(unsigned rack) const override
        {
            return w_.activeDeploys_[rack];
        }

      private:
        FleetWorld &w_;
    };

    /** Ship @p cb from the plane's rack (0) to @p dstRack one
     *  lookahead window out; same-rack orders keep the same delay so
     *  rack 0 is not privileged. */
    template <typename F>
    void
    postFromPlane(unsigned dstRack, F &&cb)
    {
        sim::EventQueue &q0 = group.rackQueue(0);
        sim::Tick when = q0.now() + group.window();
        if (dstRack == 0)
            q0.scheduleAt(when, std::forward<F>(cb));
        else
            group.postToRack(0, dstRack, when, std::forward<F>(cb));
    }

    /** Ship a completion notification back to the plane. */
    template <typename F>
    void
    postToPlane(unsigned srcRack, F &&cb)
    {
        sim::EventQueue &q = group.rackQueue(srcRack);
        sim::Tick when = q.now() + group.window();
        if (srcRack == 0)
            q.scheduleAt(when, std::forward<F>(cb));
        else
            group.postToRack(srcRack, 0, when, std::forward<F>(cb));
    }

    void
    beginDeploy(cloud::Lease &l)
    {
        ++activeDeploys_[l.rack()];
        unsigned slot = l.slot();
        std::uint64_t id = l.id();
        cloud::TenantId tenant = l.tenant();
        postFromPlane(l.rack(), [this, slot, id, tenant]() {
            rackStartDeploy(slot, id, tenant);
        });
    }

    void
    beginRelease(cloud::Lease &l)
    {
        // A lease torn down mid-deployment still holds a rack score
        // credit; give it back (Serving leases already did).
        if (deployDone_.count(l.id()) == 0 &&
            activeDeploys_[l.rack()] > 0)
            --activeDeploys_[l.rack()];
        unsigned slot = l.slot();
        std::uint64_t id = l.id();
        postFromPlane(l.rack(), [this, slot, id]() {
            rackStartRelease(slot, id);
        });
    }

    void
    rackStartDeploy(unsigned slot, std::uint64_t id,
                    cloud::TenantId tenant)
    {
        unsigned r = slot % prm.racks;
        unsigned idx = slot / prm.racks;
        Rack &rack = *racks_[r];
        Slot &sl = rack.slots[idx];
        sim::EventQueue &eq = group.rackQueue(r);
        sl.leaseId = id;

        guest::GuestOsParams gp;
        gp.boot = StormWorld::stormBootTrace();
        gp.seed = sim::Rng::seedForShard(
            "guest" + std::to_string(slot) + "." +
                std::to_string(id),
            prm.seed, r);
        sl.guest = std::make_unique<guest::GuestOs>(
            eq, sl.machine->name() + ".guest", *sl.machine, gp);

        // Deployment data always crosses the fabric: the image comes
        // from the next rack's seed.
        unsigned target = (r + 1) % prm.racks;
        sl.dep = std::make_unique<bmcast::BmcastDeployer>(
            eq, sl.machine->name() + ".dep", *sl.machine, *sl.guest,
            serverMac(target), sectors_,
            StormWorld::stormVmmParams(), false);
        if (congestion_)
            sl.dep->setRateGate(congestion_->gateFor(r, tenant));
        sl.dep->run([this, r, id]() {
            postToPlane(r,
                        [this, id]() { plane_->noteServing(id); });
        });
    }

    void
    rackStartRelease(unsigned slot, std::uint64_t id)
    {
        unsigned r = slot % prm.racks;
        unsigned idx = slot / prm.racks;
        Rack &rack = *racks_[r];
        Slot &sl = rack.slots[idx];

        if (sl.dep)
            sl.dep->vmm().powerOff();
        if (sl.guest)
            sl.guest->halt();
        sl.machine->disk().store().clear();
        sl.machine->clearProfile();
        if (sl.guest)
            rack.oldGuests.push_back(std::move(sl.guest));
        if (sl.dep)
            rack.oldDeps.push_back(std::move(sl.dep));
        sl.leaseId = 0;
        ++rack.releases;

        postToPlane(r, [this, id]() { plane_->noteReleased(id); });
    }

    void
    servTick(unsigned r, sim::Tick until)
    {
        Rack &rack = *racks_[r];
        sim::EventQueue &q = group.rackQueue(r);
        sim::Tick now = q.now();
        if (now >= until)
            return;
        net::Frame f;
        f.dst = servSinkMac((r + 1) % prm.racks);
        f.etherType = kServEtherType;
        f.payload.resize(8);
        for (unsigned i = 0; i < 8; ++i)
            f.payload[i] =
                static_cast<std::uint8_t>((now >> (8 * i)) & 0xFF);
        f.padding = prm.servingPayload - f.payload.size();
        rack.servPort->send(f);
        ++rack.servTx;
        q.scheduleAt(now + prm.servingInterval,
                     [this, r, until]() { servTick(r, until); });
    }

    void
    onServingFrame(Rack &rack, unsigned r, const net::Frame &f)
    {
        if (f.etherType != kServEtherType || f.payload.size() != 8)
            return; // segment broadcast noise, not serving traffic
        sim::Tick sent = 0;
        for (unsigned i = 0; i < 8; ++i)
            sent |= sim::Tick(f.payload[i]) << (8 * i);
        sim::Tick delay = group.rackQueue(r).now() - sent;
        rack.servRxBytes += f.wirePayload();
        if (delay <= prm.servingSlo)
            rack.servGoodBytes += f.wirePayload();
        else
            ++rack.servLate;
        rack.servMaxDelay = std::max(rack.servMaxDelay, delay);
    }

    sim::Lba sectors_ = 0;
    FleetPort port_;
    std::unique_ptr<net::Topology> topo_;
    std::unique_ptr<cloud::CongestionController> congestion_;
    std::vector<std::unique_ptr<Rack>> racks_;
    std::unique_ptr<cloud::ControlPlane> plane_;
    /** In-flight deployments per rack (plane-shard state, mirrors
     *  what the rack shards are doing for placement scoring). */
    std::vector<std::uint64_t> activeDeploys_;
    /** Leases whose deployment reached serving (score bookkeeping). */
    std::set<std::uint64_t> deployDone_;
};

} // namespace bench

#endif // BENCH_FLEET_WORLD_HH
