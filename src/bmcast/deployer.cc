#include "bmcast/deployer.hh"

#include "simcore/logging.hh"

namespace bmcast {

BmcastDeployer::BmcastDeployer(sim::EventQueue &eq, std::string name,
                               hw::Machine &machine,
                               guest::GuestOs &guest_,
                               net::MacAddr server_mac,
                               sim::Lba image_sectors,
                               VmmParams params, bool cold_firmware,
                               bool vmxoff_supported)
    : sim::SimObject(eq, std::move(name)),
      machine_(machine), guest(guest_), coldFirmware(cold_firmware)
{
    vmm_ = std::make_unique<Vmm>(eq, this->name() + ".vmm", machine,
                                 server_mac, image_sectors, params,
                                 vmxoff_supported);
}

BmcastDeployer::BmcastDeployer(sim::EventQueue &eq, std::string name,
                               hw::Machine &machine,
                               guest::GuestOs &guest_,
                               std::vector<net::MacAddr> server_macs,
                               sim::Lba image_sectors,
                               VmmParams params, bool cold_firmware,
                               bool vmxoff_supported)
    : sim::SimObject(eq, std::move(name)),
      machine_(machine), guest(guest_), coldFirmware(cold_firmware)
{
    vmm_ = std::make_unique<Vmm>(eq, this->name() + ".vmm", machine,
                                 std::move(server_macs),
                                 image_sectors, params,
                                 vmxoff_supported);
}

void
BmcastDeployer::run(std::function<void()> on_guest_ready)
{
    guestReadyCb = std::move(on_guest_ready);
    tl.powerOn = now();

    vmm_->onBareMetal([this]() {
        tl.copyComplete =
            vmm_->phaseEnteredAt(Vmm::Phase::Devirtualization);
        tl.bareMetal = now();
        if (bareMetalCb)
            bareMetalCb();
    });

    auto boot_vmm = [this]() {
        tl.firmwareDone = now();
        vmm_->netboot([this]() {
            tl.vmmReady = now();
            guest.start([this]() {
                tl.guestBootDone = now();
                if (guestReadyCb)
                    guestReadyCb();
            });
        });
    };

    if (coldFirmware)
        machine_.firmware().powerOn(boot_vmm);
    else
        boot_vmm();
}

} // namespace bmcast
