/**
 * @file
 * NVMe controller register layout and queue-entry offsets shared by
 * the controller model, the guest NVMe driver, and the BMcast NVMe
 * device mediator.
 *
 * Two queue pairs are modelled: QP0 is reserved for the VMM's
 * mediator (its interrupt vector stays masked via INTMS and the
 * mediator polls its completion queue), QP1 carries guest I/O.
 *
 * Documented simplifications relative to NVMe 1.4:
 *  - I/O queues are programmed through model-specific base/depth
 *    registers instead of admin Create-I/O-Queue commands; the
 *    admin queue machinery adds nothing to the mediation protocol,
 *    which operates purely on doorbells and queue memory.
 *  - PRP1 names one physically contiguous data buffer (no PRP2 or
 *    PRP lists); drivers allocate contiguous per-slot buffers.
 */

#ifndef HW_NVME_REGS_HH
#define HW_NVME_REGS_HH

#include <cstdint>

#include "simcore/types.hh"

namespace hw::nvme {

/** MMIO base and size (doorbells start at 0x1000). */
constexpr sim::Addr kBase = 0xFEB40000;
constexpr sim::Addr kSize = 0x1100;

/** @name Controller registers (offsets from kBase). */
/// @{
constexpr sim::Addr kCap = 0x00;   //!< RO
constexpr sim::Addr kVs = 0x08;    //!< RO, 1.4
constexpr sim::Addr kIntms = 0x0C; //!< W1S vector mask
constexpr sim::Addr kIntmc = 0x10; //!< W1C vector mask
constexpr sim::Addr kCc = 0x14;
constexpr sim::Addr kCsts = 0x1C;
/// @}

/** CC / CSTS bits. */
constexpr std::uint32_t kCcEn = 1u << 0;
constexpr std::uint32_t kCstsRdy = 1u << 0;

/** Number of queue pairs (QP0 = VMM/mediator, QP1 = guest). */
constexpr unsigned kNumQueuePairs = 2;

/** @name Queue-configuration registers (model-specific; see @file).
 *  One block of three 32-bit registers per queue pair. */
/// @{
constexpr sim::Addr
sqBaseReg(unsigned qp)
{
    return 0x40 + sim::Addr(qp) * 0x10;
}
constexpr sim::Addr
cqBaseReg(unsigned qp)
{
    return 0x44 + sim::Addr(qp) * 0x10;
}
constexpr sim::Addr
qDepthReg(unsigned qp)
{
    return 0x48 + sim::Addr(qp) * 0x10;
}
/// @}

/** @name Doorbells (stride 4, as CAP.DSTRD = 0). */
/// @{
constexpr sim::Addr
sqTailDb(unsigned qp)
{
    return 0x1000 + sim::Addr(2 * qp) * 4;
}
constexpr sim::Addr
cqHeadDb(unsigned qp)
{
    return 0x1000 + sim::Addr(2 * qp + 1) * 4;
}
/// @}

/** Submission-queue entry layout (64 bytes). */
constexpr sim::Bytes kSqEntrySize = 64;
constexpr sim::Bytes kSqeOpcode = 0;  //!< u8
constexpr sim::Bytes kSqeCid = 2;     //!< u16
constexpr sim::Bytes kSqePrp1 = 24;   //!< u64
constexpr sim::Bytes kSqeSlba = 40;   //!< u64
constexpr sim::Bytes kSqeNlb = 48;    //!< u16, 0-based

/** NVM command set opcodes. */
constexpr std::uint8_t kOpWrite = 0x01;
constexpr std::uint8_t kOpRead = 0x02;

/** Completion-queue entry layout (16 bytes). */
constexpr sim::Bytes kCqEntrySize = 16;
constexpr sim::Bytes kCqeSqHead = 8;  //!< u16
constexpr sim::Bytes kCqeSqId = 10;   //!< u16
constexpr sim::Bytes kCqeCid = 12;    //!< u16
constexpr sim::Bytes kCqeStatus = 14; //!< u16, bit 0 = phase tag

/** Status codes carried in CQE status bits 15:1. */
constexpr std::uint16_t kScInvalidOpcode = 0x01;

/** Interrupt vectors (per queue pair). */
constexpr unsigned kIrqVectorQ0 = 12;
constexpr unsigned kIrqVectorQ1 = 13;

constexpr unsigned
irqVector(unsigned qp)
{
    return qp == 0 ? kIrqVectorQ0 : kIrqVectorQ1;
}

} // namespace hw::nvme

#endif // HW_NVME_REGS_HH
