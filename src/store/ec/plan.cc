#include "store/ec/plan.hh"

#include <sstream>

namespace store::ec {

const char *
stepOpName(StepOp op)
{
    switch (op) {
      case StepOp::Fetch: return "fetch";
      case StepOp::Xor: return "xor";
      case StepOp::GfCombine: return "gf";
    }
    return "?";
}

std::uint32_t
Plan::fetchSectors() const
{
    std::uint32_t total = 0;
    for (const PlanStep &s : steps)
        if (s.op == StepOp::Fetch)
            total += s.sectors;
    return total;
}

sim::Bytes
Plan::fetchBytes() const
{
    return sim::Bytes(fetchSectors()) * sim::kSectorSize;
}

sim::Tick
Plan::combineCost() const
{
    sim::Tick total = 0;
    for (const PlanStep &s : steps)
        if (s.op != StepOp::Fetch)
            total += s.cost;
    return total;
}

std::size_t
Plan::fetches() const
{
    std::size_t n = 0;
    for (const PlanStep &s : steps)
        if (s.op == StepOp::Fetch)
            ++n;
    return n;
}

std::string
Plan::describe() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        const PlanStep &s = steps[i];
        if (i)
            os << "; ";
        os << stepOpName(s.op);
        if (s.op == StepOp::Fetch) {
            os << " m" << s.member << " " << s.sectors << "s";
        } else {
            os << " <-";
            for (std::uint16_t in : s.inputs)
                os << " #" << in;
        }
    }
    return os.str();
}

} // namespace store::ec
