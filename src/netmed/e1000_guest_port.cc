#include "netmed/e1000_guest_port.hh"

#include "hw/nic.hh"
#include "hw/nic_doorbell.hh"
#include "simcore/logging.hh"

namespace netmed {

using namespace hw::e1000;
using hw::IoSpace;

namespace {

/** On-wire size of a frame from its descriptor fields alone. */
sim::Bytes
descWireSize(std::uint16_t len, std::uint16_t special)
{
    net::Frame f;
    f.payload.resize(len > 14 ? len - 14 : 0);
    f.padding = sim::Bytes(special) << 3;
    return f.wireSize();
}

} // namespace

E1000GuestPort::E1000GuestPort(std::string name, hw::IoBus &bus_,
                               hw::PhysMem &mem_,
                               sim::Addr window_base,
                               bool virtual_window, MedMode mode_,
                               sim::Addr doorbell,
                               hw::InterruptController *intc_,
                               unsigned irq_vector)
    : name_(std::move(name)), bus(bus_), mem(mem_), base(window_base),
      virtualWindow(virtual_window), mode(mode_), dbPage(doorbell),
      intc(intc_), irqVector(irq_vector)
{
    sim::fatalIf(virtualWindow && intc == nullptr,
                 name_, ": a virtual window needs an interrupt path");
}

void
E1000GuestPort::attach(GuestPortHooks hooks)
{
    sim::panicIfNot(!attached, name_, ": guest port attached twice");
    if (virtualWindow && !deviceAdded) {
        // Stub device: the bus requires a range to intercept, and
        // unvirtualized reads (STATUS) must still look like a NIC.
        bus.addDevice(
            IoSpace::Mmio, base, kMmioSize,
            hw::IoDevice{name_,
                         [](sim::Addr o, unsigned) -> std::uint64_t {
                             return o == kStatus ? 0x2 : 0;
                         },
                         [](sim::Addr, std::uint64_t, unsigned) {}});
        deviceAdded = true;
    }
    hooks_ = std::move(hooks);
    g = GuestRingState{};
    bus.intercept(IoSpace::Mmio, base, kMmioSize, this);
    attached = true;
    if (dbPage)
        hw::nicdb::init(mem, dbPage, 0, 0);
}

void
E1000GuestPort::detach()
{
    sim::panicIfNot(attached, name_, ": guest port not attached");
    bus.removeIntercept(IoSpace::Mmio, base, kMmioSize);
    attached = false;
}

bool
E1000GuestPort::syncDoorbell()
{
    if (!dbPage)
        return false;
    std::uint32_t tx = hw::nicdb::txTail(mem, dbPage);
    g.rdt = hw::nicdb::rxTail(mem, dbPage);
    bool moved = tx != g.tdt;
    g.tdt = tx;
    return moved;
}

sim::Bytes
E1000GuestPort::peekTxWire()
{
    unsigned count = g.tdlen / kDescSize;
    if (count == 0 || g.tdh == g.tdt)
        return 0;
    sim::Addr d = sim::Addr(g.tdbal) + g.tdh * kDescSize;
    return descWireSize(mem.read16(d + 8), mem.read16(d + 14));
}

bool
E1000GuestPort::takeTx(net::Frame &frame)
{
    unsigned count = g.tdlen / kDescSize;
    if (count == 0 || g.tdh == g.tdt)
        return false;
    sim::Addr d = sim::Addr(g.tdbal) + g.tdh * kDescSize;
    sim::Addr buf = mem.read64(d);
    std::uint16_t len = mem.read16(d + 8);
    std::uint16_t special = mem.read16(d + 14);

    std::uint64_t dst = 0, src = 0;
    for (int i = 0; i < 6; ++i) {
        dst = (dst << 8) | mem.read8(buf + i);
        src = (src << 8) | mem.read8(buf + 6 + i);
    }
    frame.dst = dst;
    frame.src = src;
    frame.etherType = static_cast<std::uint16_t>(
        (mem.read8(buf + 12) << 8) | mem.read8(buf + 13));
    frame.payload.resize(len > 14 ? len - 14 : 0);
    if (!frame.payload.empty())
        mem.read(buf + 14, frame.payload.data(), frame.payload.size());
    frame.padding = sim::Bytes(special) << 3;

    // Complete the guest descriptor.
    mem.write8(d + 12,
               static_cast<std::uint8_t>(mem.read8(d + 12) | kDescDd));
    g.tdh = (g.tdh + 1) % count;
    return true;
}

bool
E1000GuestPort::deliverRx(const net::Frame &frame)
{
    unsigned count = g.rdlen / kDescSize;
    if (!(g.rctl & kRctlEn) || count == 0 || g.rdh == g.rdt)
        return false; // guest not ready: drop, as hardware would
    sim::Addr d = sim::Addr(g.rdbal) + g.rdh * kDescSize;
    sim::Addr buf = mem.read64(d);
    for (int i = 0; i < 6; ++i) {
        mem.write8(buf + i, static_cast<std::uint8_t>(
                                frame.dst >> (8 * (5 - i))));
        mem.write8(buf + 6 + i, static_cast<std::uint8_t>(
                                    frame.src >> (8 * (5 - i))));
    }
    mem.write8(buf + 12,
               static_cast<std::uint8_t>(frame.etherType >> 8));
    mem.write8(buf + 13, static_cast<std::uint8_t>(frame.etherType));
    if (!frame.payload.empty())
        mem.write(buf + 14, frame.payload.data(),
                  frame.payload.size());
    mem.write16(d + 8, static_cast<std::uint16_t>(
                           14 + frame.payload.size()));
    mem.write8(d + 12,
               static_cast<std::uint8_t>(kDescDd | kRxStEop));
    mem.write16(d + 14,
                static_cast<std::uint16_t>(frame.padding >> 3));
    g.rdh = (g.rdh + 1) % count;
    return true;
}

void
E1000GuestPort::postCause(std::uint32_t cause)
{
    if (dbPage)
        hw::nicdb::postCause(mem, dbPage, cause);
    else
        g.icr |= cause;
    if (intc && (g.ims & cause))
        intc->raise(irqVector);
}

void
E1000GuestPort::postTxCause()
{
    postCause(kIcrTxdw);
}

void
E1000GuestPort::postRxCause()
{
    postCause(kIcrRxt0);
}

GuestRingState
E1000GuestPort::rings() const
{
    return g;
}

bool
E1000GuestPort::interceptRead(sim::Addr addr, unsigned size,
                              std::uint64_t &value)
{
    (void)size;
    switch (addr - base) {
      case kIcr: {
        // Guest ISR entry: sync the shadow RX into the guest ring
        // before the guest looks, then hand over the causes.
        if (hooks_.rxSync)
            hooks_.rxSync();
        value = g.icr;
        g.icr = 0;
        return true;
      }
      case kTdh:
        value = g.tdh;
        return true;
      case kTdt:
        value = g.tdt;
        return true;
      case kRdh:
        value = g.rdh;
        return true;
      case kRdt:
        value = g.rdt;
        return true;
      case kTdbal:
        value = g.tdbal;
        return true;
      case kRdbal:
        value = g.rdbal;
        return true;
      case kIms:
        value = g.ims;
        return true;
      default:
        // Real window: STATUS etc. pass through to the device.
        // Virtual window: the stub device answers.
        return false;
    }
}

bool
E1000GuestPort::interceptWrite(sim::Addr addr, std::uint64_t value,
                               unsigned size)
{
    (void)size;
    auto v = static_cast<std::uint32_t>(value);
    switch (addr - base) {
      case kTdbal:
        g.tdbal = v;
        return true;
      case kTdlen:
        g.tdlen = v;
        return true;
      case kTdh:
        g.tdh = v;
        return true;
      case kTdt:
        g.tdt = v;
        if (hooks_.txKick)
            hooks_.txKick();
        // The guest expects a TX-done interrupt; the real device
        // raises one for the shadow descriptors carrying its frames,
        // and virtual windows get a virtual edge.
        if (dbPage)
            hw::nicdb::postCause(mem, dbPage, kIcrTxdw);
        else
            g.icr |= kIcrTxdw;
        if (virtualWindow && intc && (g.ims & kIcrTxdw))
            intc->raise(irqVector);
        return true;
      case kRdbal:
        g.rdbal = v;
        return true;
      case kRdlen:
        g.rdlen = v;
        return true;
      case kRdh:
        g.rdh = v;
        return true;
      case kRdt:
        g.rdt = v;
        return true;
      case kRctl:
        g.rctl = v;
        return true;
      case kTctl:
        g.tctl = v;
        return true;
      case kIms:
        g.ims |= v;
        return true;
      case kImc:
        g.ims &= ~v;
        return true;
      default:
        return false;
    }
}

} // namespace netmed
