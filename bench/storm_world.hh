/**
 * @file
 * A datacenter-scale deploy-storm world on the sharded kernel.
 *
 * Topology: R racks, each with its own ToR Ethernet segment
 * (net::Network), its own AoE seed server exporting the golden
 * image, its own sim::FaultInjector (per-rack counter-mode streams),
 * and nodes/R machines running the full BMcast pipeline (VMM, AoE
 * initiator, guest boot, background copy, devirtualization). Each
 * rack lives on its own sim::ShardGroup EventQueue; rack segments
 * are joined by inter-rack uplinks whose latency equals the group's
 * conservative lookahead window, routed through the bounded SPSC
 * mailboxes (net::Network::setUplink -> ShardGroup::postToRack ->
 * net::Network::inject on the destination shard).
 *
 * Most nodes deploy from their rack-local seed; every remoteEvery-th
 * node deploys from the *next* rack's seed, so real AoE traffic —
 * requests and data responses — crosses shard boundaries both ways
 * for the whole run.
 *
 * The world is a pure function of (nodes, racks, window, image,
 * seed): the shard count changes which thread executes a rack and
 * nothing else, which is what fingerprint() asserts across shard
 * counts. With racks = 1 there are no channels and the group is the
 * serial kernel (abl_storm checks that too, against a plain
 * EventQueue build of the same single-segment world).
 */

#ifndef BENCH_STORM_WORLD_HH
#define BENCH_STORM_WORLD_HH

#include <memory>
#include <string>
#include <vector>

#include "aoe/server.hh"
#include "bench/harness.hh"
#include "bmcast/deployer.hh"
#include "guest/guest_os.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "simcore/fault_injector.hh"
#include "simcore/shard_group.hh"

namespace bench {

struct StormParams
{
    unsigned nodes = 512;
    unsigned racks = 8;
    unsigned shards = 1;
    /** Inter-rack link latency == the conservative lookahead. */
    sim::Tick uplinkLatency = 1 * sim::kMs;
    sim::Bytes imageBytes = 16 * sim::kMiB;
    /** Every Nth node deploys from the next rack's seed (0 = all
     *  rack-local). */
    unsigned remoteEvery = 7;
    /** Provision arrival stagger between consecutive nodes. */
    sim::Tick stagger = 20 * sim::kMs;
    std::uint64_t seed = 1;
};

class StormWorld
{
  public:
    /** MAC scheme: 0x5254 | rack (bits 24-31) | kind (bits 20-23) |
     *  station index (bits 0-19). The uplink routes on the rack
     *  field alone. */
    static net::MacAddr
    serverMac(unsigned rack)
    {
        return 0x525400000001ULL + (net::MacAddr(rack) << 24);
    }
    static net::MacAddr
    nodeMac(unsigned rack, unsigned i)
    {
        return 0x525400100000ULL + (net::MacAddr(rack) << 24) + i;
    }
    static net::MacAddr
    mgmtMac(unsigned rack, unsigned i)
    {
        return 0x525400200000ULL + (net::MacAddr(rack) << 24) + i;
    }
    static unsigned
    rackOfMac(net::MacAddr mac)
    {
        return static_cast<unsigned>((mac >> 24) & 0xFF);
    }

    explicit StormWorld(StormParams p)
        : prm(p),
          group(sim::ShardGroup::Params{
              p.racks, p.shards, p.uplinkLatency, 4096})
    {
        const sim::Lba sectors = prm.imageBytes / sim::kSectorSize;
        racks_.reserve(prm.racks);
        for (unsigned r = 0; r < prm.racks; ++r) {
            auto rack = std::make_unique<Rack>();
            sim::EventQueue &eq = group.rackQueue(r);

            rack->net = std::make_unique<net::Network>(
                eq, "rack" + std::to_string(r) + ".tor",
                4 * sim::kUs,
                sim::Rng::seedForShard("tor", prm.seed, r));
            rack->faults = std::make_unique<sim::FaultInjector>(
                prm.seed, r);
            rack->net->setFaultInjector(rack->faults.get());

            net::Port &sp = rack->net->attach(
                serverMac(r), net::PortConfig{1e9, 9000, 0.0});
            aoe::ServerParams spar;
            spar.workers = 8;
            spar.cacheHitRate = 0.9;
            rack->server = std::make_unique<aoe::AoeServer>(
                eq, "rack" + std::to_string(r) + ".seed", sp, spar);
            rack->server->addTarget(0, 0, sectors, kImageBase);
            rack->server->setFaultInjector(rack->faults.get());

            // Frames for MACs outside this segment cross the
            // inter-rack link: one lookahead window of latency,
            // delivered through the destination rack's mailbox and
            // re-injected into its ToR segment on its own shard.
            rack->net->setUplink(
                [this, r](const net::Frame &f, sim::Tick depart) {
                    unsigned dst = rackOfMac(f.dst);
                    if (dst >= prm.racks || dst == r)
                        return; // not routable: drop at the spine
                    group.postToRack(
                        r, dst, depart + prm.uplinkLatency,
                        [net = racks_[dst]->net.get(), f]() {
                            net->inject(f);
                        });
                });

            racks_.push_back(std::move(rack));
        }

        // Machines, guests, deployers — round-robin across racks so
        // the storm lands rack-aware, like Cloud placement.
        for (unsigned i = 0; i < prm.nodes; ++i) {
            unsigned r = i % prm.racks;
            Rack &rack = *racks_[r];
            sim::EventQueue &eq = group.rackQueue(r);
            unsigned slot =
                static_cast<unsigned>(rack.machines.size());

            hw::MachineConfig mc;
            mc.name = "rack" + std::to_string(r) + ".node" +
                      std::to_string(slot);
            mc.storage = hw::StorageKind::Ahci;
            mc.disk.capacityBytes = 4 * prm.imageBytes;
            mc.hasInfiniBand = false;
            mc.seed = sim::Rng::seedForShard(
                "machine" + std::to_string(slot), prm.seed, r);
            rack.machines.push_back(std::make_unique<hw::Machine>(
                eq, mc, *rack.net, nodeMac(r, slot), *rack.net,
                mgmtMac(r, slot)));
            rack.machines.back()->setFaultInjector(
                rack.faults.get());

            guest::GuestOsParams gp;
            gp.boot = stormBootTrace();
            gp.seed = sim::Rng::seedForShard(
                "guest" + std::to_string(slot), prm.seed, r);
            rack.guests.push_back(std::make_unique<guest::GuestOs>(
                eq, mc.name + ".guest", *rack.machines.back(), gp));

            // Cross-rack deployments exercise the mailbox path with
            // real AoE request/response streams.
            unsigned target_rack = r;
            if (prm.remoteEvery > 0 && prm.racks > 1 &&
                i % prm.remoteEvery == 0)
                target_rack = (r + 1) % prm.racks;
            rack.deps.push_back(
                std::make_unique<bmcast::BmcastDeployer>(
                    eq, mc.name + ".dep", *rack.machines.back(),
                    *rack.guests.back(), serverMac(target_rack),
                    sectors, stormVmmParams(), false));
        }
    }

    /** Stagger the provision arrivals and start every deployment. */
    void
    deployAll()
    {
        for (unsigned r = 0; r < prm.racks; ++r) {
            Rack &rack = *racks_[r];
            for (std::size_t i = 0; i < rack.deps.size(); ++i) {
                // Global arrival order interleaves racks the way
                // round-robin placement filled them.
                sim::Tick at =
                    (i * prm.racks + r) * prm.stagger + 1;
                bmcast::BmcastDeployer *dep = rack.deps[i].get();
                Rack *rk = &rack;
                group.rackQueue(r).scheduleAt(at, [dep, rk]() {
                    dep->onBareMetal([rk]() { ++rk->done; });
                    dep->run([rk]() { ++rk->serving; });
                });
            }
        }
    }

    bool
    allDone() const
    {
        for (const auto &rack : racks_)
            if (rack->done != rack->deps.size())
                return false;
        return true;
    }

    /**
     * Drive the group in lookahead-aligned chunks until every
     * deployment reached bare metal (or @p deadline). Chunk size is
     * part of neither the model nor the result stream — any chunking
     * lands the same drain grid.
     */
    bool
    runToCompletion(sim::Tick deadline, sim::Tick chunk = sim::kSec)
    {
        chunk -= chunk % group.window();
        if (chunk == 0)
            chunk = group.window();
        while (!allDone() && group.committed() < deadline)
            group.run(group.committed() + chunk);
        return allDone();
    }

    /**
     * Deterministic fold of the simulated result stream, in rack
     * order: every deployment's timeline ticks, every seed server's
     * bytes shipped, every segment's forwarding counts, every rack
     * queue's event totals. Equal across shard counts by the
     * ShardGroup contract.
     */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = sim::kFingerprintSeed;
        for (unsigned r = 0; r < prm.racks; ++r) {
            const Rack &rack = *racks_[r];
            for (const auto &dep : rack.deps) {
                const auto &tl = dep->timeline();
                h = sim::fingerprintMix(h, tl.powerOn);
                h = sim::fingerprintMix(h, tl.vmmReady);
                h = sim::fingerprintMix(h, tl.guestBootDone);
                h = sim::fingerprintMix(h, tl.copyComplete);
                h = sim::fingerprintMix(h, tl.bareMetal);
            }
            h = sim::fingerprintMix(h, rack.server->dataBytesOut());
            h = sim::fingerprintMix(h,
                                    rack.net->framesForwarded());
            h = sim::fingerprintMix(h, rack.net->framesUplinked());
            h = sim::fingerprintMix(
                h, group.rackQueue(r).executed());
        }
        return h;
    }

    /** Every deployed disk carries the full golden image. */
    bool
    imagesIntact() const
    {
        const sim::Lba sectors = prm.imageBytes / sim::kSectorSize;
        for (const auto &rack : racks_) {
            for (const auto &m : rack->machines) {
                if (!m->disk().store().rangeHasBase(0, sectors,
                                                    kImageBase))
                    return false;
            }
        }
        return true;
    }

    std::uint64_t
    totalEvents() const
    {
        return group.totalExecuted();
    }

    std::uint64_t
    crossRackMessages() const
    {
        return group.counters().messages;
    }

    /** Small, fast boot working set: the storm varies fleet scale,
     *  not per-node boot cost. */
    static guest::BootTrace
    stormBootTrace()
    {
        guest::BootTrace b;
        b.loaderBytes = 256 * sim::kKiB;
        b.kernelBytes = 1 * sim::kMiB;
        b.numReads = 40;
        b.avgReadBytes = 8 * sim::kKiB;
        b.seqFraction = 0.35;
        b.cpuTotal = 400 * sim::kMs;
        b.regionBytes = 4 * sim::kMiB;
        return b;
    }

    static bmcast::VmmParams
    stormVmmParams()
    {
        bmcast::VmmParams p;
        p.bootTime = 500 * sim::kMs;
        p.moderation.vmmWriteInterval = 2 * sim::kMs;
        p.moderation.guestIoFreqThreshold = 1e9;
        return p;
    }

    struct Rack
    {
        std::unique_ptr<net::Network> net;
        std::unique_ptr<sim::FaultInjector> faults;
        std::unique_ptr<aoe::AoeServer> server;
        std::vector<std::unique_ptr<hw::Machine>> machines;
        std::vector<std::unique_ptr<guest::GuestOs>> guests;
        std::vector<std::unique_ptr<bmcast::BmcastDeployer>> deps;
        unsigned serving = 0;
        unsigned done = 0;
    };

    StormParams prm;
    sim::ShardGroup group;
    std::vector<std::unique_ptr<Rack>> racks_;
};

} // namespace bench

#endif // BENCH_STORM_WORLD_HH
