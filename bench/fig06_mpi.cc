/**
 * @file
 * Figure 6: OSU MPI collective latency on a 10-node InfiniBand
 * cluster (paper §5.3).
 *
 * Three cluster states: bare metal, all nodes on BMcast in the
 * deployment phase, all nodes on KVM with direct device assignment.
 * The paper's headline: BMcast is near bare metal on most
 * collectives while KVM reaches 235% on Allgather and 135% on
 * Allreduce.
 */

#include "baselines/kvm.hh"
#include "bench/harness.hh"
#include "workloads/osu_mpi.hh"

using namespace bench;

namespace {

constexpr unsigned kNodes = 10;

std::vector<hw::Machine *>
clusterOf(Testbed &tb)
{
    std::vector<hw::Machine *> v;
    for (auto &m : tb.machines)
        v.push_back(m.get());
    return v;
}

using Results = std::map<workloads::Collective, double>;

Results
measure(Testbed &tb, const std::string &label)
{
    (void)label;
    Results out;
    workloads::OsuMpi osu(tb.eq, "osu", clusterOf(tb));
    for (auto c :
         {workloads::Collective::Allgather,
          workloads::Collective::Allreduce,
          workloads::Collective::Alltoall,
          workloads::Collective::Barrier,
          workloads::Collective::Bcast,
          workloads::Collective::Reduce}) {
        bool done = false;
        sim::Tick mean = 0;
        osu.run(c, [&](sim::Tick m) {
            mean = m;
            done = true;
        });
        tb.runUntil(tb.eq.now() + 600 * sim::kSec,
                    [&]() { return done; });
        out[c] = sim::toMicros(mean);
    }
    return out;
}

} // namespace

int
main()
{
    figureHeader("Figure 6: OSU MPI collective latency, 10-node "
                 "InfiniBand cluster (us)");

    // Bare metal.
    Testbed bare(kNodes);
    Results r_bare = measure(bare, "bare");

    // BMcast deployment phase on every node.
    Testbed bm(kNodes);
    {
        std::vector<std::unique_ptr<bmcast::BmcastDeployer>> deps;
        unsigned ready = 0;
        for (unsigned i = 0; i < kNodes; ++i) {
            deps.push_back(std::make_unique<bmcast::BmcastDeployer>(
                bm.eq, "dep" + std::to_string(i), bm.machine(i),
                bm.guest(i), kServerMac, bm.imageSectors,
                paperVmmParams(), false));
            deps.back()->run([&ready]() { ++ready; });
        }
        bm.runUntil(4000 * sim::kSec,
                    [&]() { return ready == kNodes; });
        Results r_bm = measure(bm, "bmcast");

        // KVM with direct IB assignment on every node.
        Testbed kvm(kNodes);
        std::vector<std::unique_ptr<baselines::KvmVmm>> kvms;
        for (unsigned i = 0; i < kNodes; ++i) {
            baselines::KvmConfig cfg;
            kvms.push_back(std::make_unique<baselines::KvmVmm>(
                kvm.eq, "kvm" + std::to_string(i), kvm.machine(i),
                cfg, kServerMac));
            kvm.machine(i).setProfile(kvms.back()->profile());
        }
        Results r_kvm = measure(kvm, "kvm");

        sim::Table t({"Collective", "Baremetal", "BMcast", "KVM",
                      "BMcast vs bare", "KVM vs bare"});
        for (auto &[c, v] : r_bare) {
            t.addRow({workloads::collectiveName(c),
                      sim::Table::num(v, 1),
                      sim::Table::num(r_bm[c], 1),
                      sim::Table::num(r_kvm[c], 1),
                      sim::Table::num(r_bm[c] / v * 100, 0) + "%",
                      sim::Table::num(r_kvm[c] / v * 100, 0) + "%"});
        }
        t.print(std::cout);
        std::cout << "\nPaper: KVM Allgather 235% of bare metal, "
                     "Allreduce 135%; BMcast near-identical to bare "
                     "metal\n(22% overhead on Allreduce was its worst "
                     "case).\n";
    }
    return 0;
}
