/**
 * @file
 * A sharded stripe-repair world: erasure-coded chunks spread over R
 * racks, a rack failure, and a rack-0 repair dispatcher rebuilding
 * the lost members from coding plans while every live rack keeps
 * pushing serving traffic.
 *
 * The world exists to prove two things bench/abl_repair gates on:
 * that background repair paced by the Scavenger congestion lane
 * restores full stripe health without starving serving goodput, and
 * that the whole schedule is a pure function of (racks, seed, code)
 * — never of the shard count.
 *
 * Layout: stripe member i of chunk c lives in rack (c + i) % R, so a
 * rack failure clips at most one member from any stripe (the classic
 * fault-domain placement). Rack killAt's own queue marks it dead and
 * posts a death notice to rack 0 — the mailbox-delivered equivalent
 * of the health-probe edge store::RepairScheduler detects in-region.
 * The dispatcher asks the ec::Code for one repair plan per lost
 * member and executes it cross-rack in the split-charge style of
 * bench/migrate_world.hh: each fetch step books the *source* rack's
 * scavenger lane (cloud::CongestionController) and uplink, crosses
 * the fabric, pays the destination downlink, and acknowledges back
 * to rack 0; the job completes after the plan's combine cost and
 * re-homes the member onto the destination rack. Serving traffic
 * rides the same uplinks through the serving lane, so repair
 * pressure shows up in serving completion times exactly as far as
 * the scavenger share lets it.
 *
 * fingerprint() folds the dispatcher's job stream, every rack's
 * serving counters, the topology byte meters and the congestion
 * telemetry into one order-sensitive hash: equal fingerprints across
 * shard counts mean equal simulated outcomes.
 */

#ifndef BENCH_REPAIR_WORLD_HH
#define BENCH_REPAIR_WORLD_HH

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cloud/congestion.hh"
#include "net/topology.hh"
#include "simcore/logging.hh"
#include "simcore/shard_group.hh"
#include "simcore/types.hh"
#include "store/ec/code.hh"

namespace repairbench {

struct RepairWorldParams
{
    unsigned racks = 8;
    unsigned shards = 1;
    std::uint64_t seed = 1;

    /** Stripe algebra; the width may not exceed `racks`. */
    store::ec::CodeKind code = store::ec::CodeKind::Lrc;
    unsigned dataShards = 4;
    unsigned parityShards = 2; //!< globals (locals on top for LRC)
    unsigned lrcGroups = 2;

    unsigned chunks = 48;
    sim::Bytes chunkBytes = sim::kMiB;

    /** Aggregation fabric (shared; split-charged per rack). */
    double uplinkBps = 10e9;
    double oversubscription = 4.0;
    /** Cross-rack latency == the shard group's lookahead window. */
    sim::Tick linkLatency = sim::kMs;

    /** Serving lane + Scavenger lane shares of each rack's link. */
    double servingShare = 0.5;
    double scavengerShare = 0.1;

    /** Per-rack serving process: one burst every interval. */
    sim::Tick servingInterval = 2 * sim::kMs;
    sim::Bytes servingBurst = 256 * sim::kKiB;

    /** Rack to kill (-1 = healthy run) and when. */
    int killRack = -1;
    sim::Tick killAt = 100 * sim::kMs;

    sim::Tick runFor = 10 * sim::kSec;
};

/** Rack-0 dispatcher counters (see RepairWorld::stats()). */
struct RepairWorldStats
{
    std::uint64_t jobsQueued = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t replans = 0; //!< dead-source nacks re-planned
    sim::Bytes repairedBytes = 0;
    sim::Bytes dataRepairedBytes = 0;
    sim::Tick lastRepairDone = 0;
};

class RepairWorld
{
  public:
    explicit RepairWorld(RepairWorldParams p)
        : prm(p),
          code_(store::ec::makeCode(
              p.code, store::ec::CodeParams{p.dataShards,
                                            p.parityShards,
                                            p.lrcGroups})),
          group(sim::ShardGroup::Params{p.racks, p.shards,
                                        p.linkLatency, 4096})
    {
        sim::fatalIf(code_->width() > prm.racks,
                     "repair world: stripe wider than the rack row");
        chunkSectors_ =
            static_cast<std::uint32_t>(prm.chunkBytes /
                                       sim::kSectorSize);

        net::TopologyConfig tc;
        tc.racks = prm.racks;
        tc.uplinkBps = prm.uplinkBps;
        tc.oversubscription = prm.oversubscription;
        topo_ = std::make_unique<net::Topology>(tc);

        cloud::CongestionParams cp;
        cp.enabled = true;
        cp.linkShare = 1.0 - prm.servingShare - prm.scavengerShare;
        cp.servingShare = prm.servingShare;
        cp.scavengerShare = prm.scavengerShare;
        congestion_ = std::make_unique<cloud::CongestionController>(
            cp, prm.racks, topo_.get());

        memberRack_.assign(prm.chunks,
                           std::vector<unsigned>(code_->width(), 0));
        for (unsigned c = 0; c < prm.chunks; ++c)
            for (unsigned i = 0; i < code_->width(); ++i)
                memberRack_[c][i] = (c + i) % prm.racks;
        liveRack_.assign(prm.racks, true);

        racks_.reserve(prm.racks);
        for (unsigned r = 0; r < prm.racks; ++r)
            racks_.push_back(std::make_unique<Rack>());
        for (unsigned r = 0; r < prm.racks; ++r)
            armServing(r);

        if (prm.killRack >= 0) {
            const auto kr = static_cast<unsigned>(prm.killRack);
            sim::fatalIf(kr >= prm.racks,
                         "repair world: kill rack out of range");
            group.rackQueue(kr).scheduleAt(prm.killAt, [this, kr]() {
                racks_[kr]->dead = true;
                // The death notice: what the in-region health probe
                // would deliver, one mailbox hop later.
                group.postToRack(
                    kr, 0,
                    group.rackQueue(kr).now() + group.window() +
                        prm.linkLatency,
                    [this, kr]() { noteRackDead(kr); });
            });
        }
    }

    /** Drive to runFor (window-aligned), chunked. */
    void
    run()
    {
        const sim::Tick w = group.window();
        sim::Tick until = ((prm.runFor + w - 1) / w) * w;
        group.run(until);
    }

    /** Every stripe member sits in a live rack. */
    bool
    allHealthy() const
    {
        for (const auto &stripe : memberRack_)
            for (unsigned r : stripe)
                if (!liveRack_[r])
                    return false;
        return true;
    }

    const RepairWorldStats &stats() const { return stats_; }
    /** Serving bytes completed by racks other than @p excludeRack
     *  (pass the killed rack to measure repair interference on the
     *  survivors rather than the victim's own silence). */
    sim::Bytes
    servedBytes(int excludeRack = -1) const
    {
        sim::Bytes b = 0;
        for (unsigned r = 0; r < prm.racks; ++r)
            if (static_cast<int>(r) != excludeRack)
                b += racks_[r]->servedBytes;
        return b;
    }
    std::uint64_t
    totalExecuted() const
    {
        return group.totalExecuted();
    }

    /** Order-sensitive digest of every simulated outcome. */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = sim::kFingerprintSeed;
        h = sim::fingerprintMix(h, stats_.jobsQueued);
        h = sim::fingerprintMix(h, stats_.jobsCompleted);
        h = sim::fingerprintMix(h, stats_.replans);
        h = sim::fingerprintMix(h, stats_.repairedBytes);
        h = sim::fingerprintMix(h, stats_.dataRepairedBytes);
        h = sim::fingerprintMix(h, stats_.lastRepairDone);
        for (unsigned r = 0; r < prm.racks; ++r) {
            const Rack &rk = *racks_[r];
            h = sim::fingerprintMix(h, rk.servedBursts);
            h = sim::fingerprintMix(h, rk.servedBytes);
            h = sim::fingerprintMix(h, rk.dead);
            h = sim::fingerprintMix(h, topo_->uplinkBytes(r));
            h = sim::fingerprintMix(h, topo_->downlinkBytes(r));
            h = sim::fingerprintMix(h, congestion_->servingBytes(r));
            h = sim::fingerprintMix(h,
                                    congestion_->scavengerBytes(r));
            h = sim::fingerprintMix(h,
                                    congestion_->scavengerDelay(r));
        }
        for (const auto &stripe : memberRack_)
            for (unsigned r : stripe)
                h = sim::fingerprintMix(h, r);
        return h;
    }

    const RepairWorldParams prm;

  private:
    struct Rack
    {
        bool dead = false;
        std::uint64_t servedBursts = 0;
        sim::Bytes servedBytes = 0;
    };

    /** One in-flight rebuild of stripe slot (chunk, member). */
    struct Job
    {
        unsigned chunk = 0;
        unsigned member = 0;
        unsigned destRack = 0;
        unsigned stepsLeft = 0;
        sim::Tick combine = 0;
        bool dead = false; //!< nacked; superseded by a re-plan
    };

    static net::MacAddr
    memberMac(unsigned chunk, unsigned member)
    {
        return 0xEE0000000000ULL + chunk * 64ULL + member;
    }

    std::vector<net::MacAddr>
    stripeMacs(unsigned chunk) const
    {
        std::vector<net::MacAddr> s;
        s.reserve(code_->width());
        for (unsigned i = 0; i < code_->width(); ++i)
            s.push_back(memberMac(chunk, i));
        return s;
    }

    /** Member liveness as the dispatcher knows it: the rack holding
     *  the member answered its last probe. */
    bool
    memberLive(net::MacAddr mac) const
    {
        const auto idx =
            static_cast<unsigned>(mac - 0xEE0000000000ULL);
        return liveRack_[memberRack_[idx / 64][idx % 64]];
    }

    /** Dispatcher (rack 0): a rack died — queue one rebuild per
     *  stripe member it held. */
    void
    noteRackDead(unsigned rack)
    {
        liveRack_[rack] = false;
        for (unsigned c = 0; c < prm.chunks; ++c) {
            for (unsigned i = 0; i < code_->width(); ++i)
                if (memberRack_[c][i] == rack)
                    startJob(c, i);
        }
    }

    /** Least-loaded live rack for the rebuilt member (deterministic:
     *  lowest index wins ties). */
    unsigned
    pickDestRack(unsigned chunk) const
    {
        std::vector<unsigned> load(prm.racks, 0);
        for (unsigned i = 0; i < code_->width(); ++i)
            ++load[memberRack_[chunk][i]];
        unsigned best = prm.racks;
        for (unsigned r = 0; r < prm.racks; ++r) {
            if (!liveRack_[r])
                continue;
            if (best == prm.racks || load[r] < load[best])
                best = r;
        }
        sim::panicIfNot(best < prm.racks, "no live rack to repair to");
        return best;
    }

    void
    startJob(unsigned chunk, unsigned member)
    {
        auto plan = code_->repairPlan(
            stripeMacs(chunk), member,
            [this](net::MacAddr m) { return memberLive(m); },
            chunkSectors_);
        if (!plan)
            return; // unreconstructable; surfaces as !allHealthy()
        ++stats_.jobsQueued;
        auto job = std::make_shared<Job>();
        job->chunk = chunk;
        job->member = member;
        job->destRack = pickDestRack(chunk);
        job->stepsLeft = static_cast<unsigned>(plan->fetches());
        job->combine = plan->combineCost();
        for (const store::ec::PlanStep &step : plan->steps) {
            if (step.op != store::ec::StepOp::Fetch)
                continue;
            dispatchFetch(job, memberRack_[chunk][step.member],
                          static_cast<sim::Bytes>(step.sectors) *
                              sim::kSectorSize);
        }
    }

    /** One plan fetch: rack 0 -> source rack (scavenger admit +
     *  uplink) -> dest rack (downlink) -> ack back to rack 0. */
    void
    dispatchFetch(std::shared_ptr<Job> job, unsigned srcRack,
                  sim::Bytes bytes)
    {
        sim::EventQueue &dq = group.rackQueue(0);
        group.postToRack(
            0, srcRack, dq.now() + group.window() + prm.linkLatency,
            [this, job, srcRack, bytes]() {
                sim::EventQueue &sq = group.rackQueue(srcRack);
                if (racks_[srcRack]->dead) {
                    // Source died under the plan: nack so the
                    // dispatcher re-plans from the survivors.
                    group.postToRack(
                        srcRack, 0,
                        sq.now() + group.window() + prm.linkLatency,
                        [this, job]() { nackJob(job); });
                    return;
                }
                sim::Tick at = congestion_->admitScavenger(
                    srcRack, 0, bytes, sq.now());
                sq.scheduleAt(
                    std::max(at, sq.now()),
                    [this, job, srcRack, bytes]() {
                        sim::EventQueue &q = group.rackQueue(srcRack);
                        sim::Tick up = topo_->chargeUplink(
                            srcRack, bytes, q.now());
                        sim::Tick arrive =
                            std::max(up +
                                         topo_->config().aggHopLatency,
                                     q.now()) +
                            prm.linkLatency;
                        relayToDest(job, srcRack, bytes, arrive);
                    });
            });
    }

    void
    relayToDest(std::shared_ptr<Job> job, unsigned srcRack,
                sim::Bytes bytes, sim::Tick arrive)
    {
        group.postToRack(
            srcRack, job->destRack, arrive,
            [this, job, bytes]() {
                sim::EventQueue &dq = group.rackQueue(job->destRack);
                sim::Tick clear = std::max(
                    topo_->chargeDownlink(job->destRack, bytes,
                                          dq.now()),
                    dq.now());
                group.postToRack(job->destRack, 0,
                                 clear + prm.linkLatency,
                                 [this, job, bytes]() {
                                     stepDone(job, bytes);
                                 });
            });
    }

    /** Dispatcher: one fetch landed; the last one completes the job
     *  after the plan's combine cost. */
    void
    stepDone(std::shared_ptr<Job> job, sim::Bytes bytes)
    {
        if (job->dead)
            return;
        jobBytes_[job.get()] += bytes;
        if (--job->stepsLeft > 0)
            return;
        group.rackQueue(0).schedule(job->combine, [this, job]() {
            if (job->dead)
                return;
            memberRack_[job->chunk][job->member] = job->destRack;
            ++stats_.jobsCompleted;
            sim::Bytes total = jobBytes_[job.get()];
            jobBytes_.erase(job.get());
            stats_.repairedBytes += total;
            if (job->member < code_->dataShards())
                stats_.dataRepairedBytes += total;
            stats_.lastRepairDone = group.rackQueue(0).now();
        });
    }

    /** Dispatcher: a source died mid-plan — abandon this attempt and
     *  start over against the survivors. */
    void
    nackJob(std::shared_ptr<Job> job)
    {
        if (job->dead)
            return;
        job->dead = true;
        jobBytes_.erase(job.get());
        ++stats_.replans;
        startJob(job->chunk, job->member);
    }

    /** The serving process: a fixed offered load per live rack,
     *  admitted through the serving lane and charged on the same
     *  uplink repair traffic crosses. */
    void
    armServing(unsigned r)
    {
        group.rackQueue(r).schedule(prm.servingInterval, [this, r]() {
            Rack &rk = *racks_[r];
            if (rk.dead)
                return;
            sim::EventQueue &q = group.rackQueue(r);
            sim::Tick at = congestion_->admitServing(
                r, 0, prm.servingBurst, q.now());
            q.scheduleAt(
                std::max(at, q.now()), [this, r]() {
                    sim::EventQueue &q2 = group.rackQueue(r);
                    sim::Tick clear = topo_->chargeUplink(
                        r, prm.servingBurst, q2.now());
                    q2.scheduleAt(std::max(clear, q2.now()),
                                  [this, r]() {
                                      Rack &rk2 = *racks_[r];
                                      ++rk2.servedBursts;
                                      rk2.servedBytes +=
                                          prm.servingBurst;
                                  });
                });
            armServing(r);
        });
    }

    std::shared_ptr<const store::ec::Code> code_;

  public:
    sim::ShardGroup group;

  private:
    std::uint32_t chunkSectors_ = 0;
    std::unique_ptr<net::Topology> topo_;
    std::unique_ptr<cloud::CongestionController> congestion_;
    std::vector<std::unique_ptr<Rack>> racks_;

    /** @name Dispatcher state — rack 0's shard only. */
    /// @{
    std::vector<std::vector<unsigned>> memberRack_;
    std::vector<bool> liveRack_;
    std::map<const Job *, sim::Bytes> jobBytes_;
    RepairWorldStats stats_;
    /// @}
};

} // namespace repairbench

#endif // BENCH_REPAIR_WORLD_HH
