#include "workloads/ib_perftest.hh"

#include <memory>

#include "simcore/logging.hh"

namespace workloads {

IbPerftest::IbPerftest(sim::EventQueue &eq, std::string name,
                       hw::Machine &client_, hw::Machine &server_,
                       IbPerftestParams params_)
    : sim::SimObject(eq, std::move(name)),
      client(client_), server(server_), params(params_)
{
    sim::fatalIf(client.hca() == nullptr || server.hca() == nullptr,
                 "perftest machines need HCAs");
}

void
IbPerftest::runBandwidth(std::function<void(IbPerftestResult)> done)
{
    // Post everything at once; the HCA's command queuing pipelines
    // the transfers (paper: "the virtualization overhead was hidden
    // by the command queuing of the RDMA hardware").
    auto remaining = std::make_shared<unsigned>(params.iterations);
    sim::Tick start = now();
    auto done_sp =
        std::make_shared<std::function<void(IbPerftestResult)>>(
            std::move(done));
    for (unsigned i = 0; i < params.iterations; ++i) {
        client.hca()->rdma(
            server.hca()->nodeId(), params.messageBytes,
            [this, remaining, start, done_sp]() {
                if (--*remaining == 0) {
                    IbPerftestResult r;
                    sim::Bytes total =
                        sim::Bytes(params.iterations) *
                        params.messageBytes;
                    r.mbPerSec = sim::toMBps(total, now() - start);
                    (*done_sp)(r);
                }
            });
    }
}

void
IbPerftest::runLatency(std::function<void(IbPerftestResult)> done)
{
    latencyStep(params.iterations, 0, std::move(done));
}

void
IbPerftest::latencyStep(unsigned remaining, sim::Tick latSum,
                        std::function<void(IbPerftestResult)> done)
{
    if (remaining == 0) {
        IbPerftestResult r;
        r.meanLatencyUs =
            sim::toMicros(latSum) /
            static_cast<double>(params.iterations);
        done(r);
        return;
    }
    sim::Tick issued = now();
    client.hca()->rdma(server.hca()->nodeId(), params.messageBytes,
                       [this, remaining, latSum, issued,
                        done = std::move(done)]() mutable {
                           latencyStep(remaining - 1,
                                       latSum + (now() - issued),
                                       std::move(done));
                       });
}

} // namespace workloads
