/**
 * @file
 * Shared test rig: one simulated machine on a management network
 * with an AoE storage server exporting a golden image, plus a guest
 * OS with a small boot trace. Used by integration and property
 * tests.
 */

#ifndef TESTS_TEST_UTIL_HH
#define TESTS_TEST_UTIL_HH

#include <memory>

#include "aoe/server.hh"
#include "bmcast/deployer.hh"
#include "guest/guest_os.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "simcore/event_queue.hh"
#include "simcore/fault_injector.hh"

namespace testutil {

constexpr net::MacAddr kServerMac = 0x525400000001ULL;
constexpr net::MacAddr kServer2Mac = 0x525400000002ULL;
constexpr net::MacAddr kGuestMac = 0x525400000010ULL;
constexpr net::MacAddr kMgmtMac = 0x525400000011ULL;

/** Content base of the golden image exported by the server. */
constexpr std::uint64_t kImageBase = 0xABCD000000000001ULL;

/** Parameterized-test name for a storage kind. */
inline const char *
storageName(hw::StorageKind kind)
{
    switch (kind) {
      case hw::StorageKind::Ide:
        return "Ide";
      case hw::StorageKind::Ahci:
        return "Ahci";
      case hw::StorageKind::Nvme:
        return "Nvme";
    }
    return "Unknown";
}

/** Rig options. */
struct RigOptions
{
    hw::StorageKind storage = hw::StorageKind::Ahci;
    /** Image size in sectors (64 MiB default: fast tests). */
    sim::Lba imageSectors = (64 * sim::kMiB) / sim::kSectorSize;
    /** Small disk so bitmap edges are reachable quickly. */
    sim::Bytes diskBytes = 2 * sim::kGiB;
    unsigned serverWorkers = 4;
    double lossProbability = 0.0;
    bool tinyBoot = true;
    /** Attach a secondary AoE server ("server2") with the same
     *  image for failover tests. */
    bool secondaryServer = false;
};

/** The rig. */
struct Rig
{
    explicit Rig(RigOptions opt = RigOptions{})
        : opts(opt),
          lan(eq, "lan", 4 * sim::kUs, 42),
          serverPort(lan.attach(kServerMac,
                                net::PortConfig{1e9, 9000,
                                                opt.lossProbability}))
    {
        aoe::ServerParams sp;
        sp.workers = opt.serverWorkers;
        server = std::make_unique<aoe::AoeServer>(eq, "server",
                                                  serverPort, sp);
        server->addTarget(0, 0, opt.imageSectors, kImageBase);

        if (opt.secondaryServer) {
            net::Port &p2 = lan.attach(
                kServer2Mac, net::PortConfig{1e9, 9000, 0.0});
            server2 = std::make_unique<aoe::AoeServer>(
                eq, "server2", p2, sp);
            server2->addTarget(0, 0, opt.imageSectors, kImageBase);
        }

        hw::MachineConfig mc;
        mc.name = "node0";
        mc.storage = opt.storage;
        mc.disk.capacityBytes = opt.diskBytes;
        mc.firmwareColdInit = 133 * sim::kSec;
        machine = std::make_unique<hw::Machine>(
            eq, mc, lan, kGuestMac, lan, kMgmtMac);

        guest::GuestOsParams gp;
        if (opt.tinyBoot) {
            gp.boot.loaderBytes = 1 * sim::kMiB;
            gp.boot.kernelBytes = 4 * sim::kMiB;
            gp.boot.numReads = 40;
            gp.boot.avgReadBytes = 16 * sim::kKiB;
            gp.boot.cpuTotal = 500 * sim::kMs;
            gp.boot.regionBytes = 32 * sim::kMiB;
        }
        guest = std::make_unique<guest::GuestOs>(eq, "guest",
                                                 *machine, gp);
    }

    /** VMM parameters tuned for fast tests. */
    bmcast::VmmParams
    fastVmmParams() const
    {
        bmcast::VmmParams p;
        p.bootTime = 5 * sim::kSec;
        p.moderation.vmmWriteInterval = 2 * sim::kMs;
        p.moderation.guestIoFreqThreshold = 1e9; // no suspensions
        return p;
    }

    /** Wire a fault injector into every site of this rig. */
    void
    attachInjector(sim::FaultInjector &fi)
    {
        lan.setFaultInjector(&fi);
        machine->setFaultInjector(&fi);
        server->setFaultInjector(&fi);
        if (server2)
            server2->setFaultInjector(&fi);
    }

    RigOptions opts;
    sim::EventQueue eq;
    net::Network lan;
    net::Port &serverPort;
    std::unique_ptr<aoe::AoeServer> server;
    std::unique_ptr<aoe::AoeServer> server2;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<guest::GuestOs> guest;
};

/** Run the queue until the predicate holds or the deadline passes.
 *  @return true if the predicate held. */
template <typename Pred>
bool
runUntil(sim::EventQueue &eq, sim::Tick deadline, Pred &&pred)
{
    while (!pred()) {
        if (eq.now() > deadline || eq.empty())
            return pred();
        eq.step();
    }
    return true;
}

} // namespace testutil

#endif // TESTS_TEST_UTIL_HH
