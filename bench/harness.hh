/**
 * @file
 * Shared benchmark testbed: reproduces the paper's experimental
 * setup (§5) — FUJITSU RX200-class machines, gigabit Ethernet with
 * jumbo frames, an InfiniBand 4X QDR fabric, an AoE storage server
 * (thread-pooled vblade) exporting a 32-GB OS image.
 *
 * Every bench binary builds its world through this header so the
 * configuration matches across figures.
 */

#ifndef BENCH_HARNESS_HH
#define BENCH_HARNESS_HH

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aoe/server.hh"
#include "baselines/image_copy.hh"
#include "baselines/kvm.hh"
#include "baselines/net_root.hh"
#include "bmcast/deployer.hh"
#include "guest/guest_os.hh"
#include "hw/ib_hca.hh"
#include "hw/machine.hh"
#include "net/network.hh"
#include "obs/chrome_trace.hh"
#include "obs/obs.hh"
#include "obs/run_report.hh"
#include "simcore/table.hh"
#include "store/ec/code.hh"

namespace bench {

/** Dump a queue's kernel counters through the obs registry (the one
 *  rendering path for all run statistics). */
inline void
printKernelCounters(const sim::EventQueue &eq,
                    std::ostream &os = std::cout)
{
    obs::Registry reg;
    sim::publishKernelCounters(reg, "", eq.counters());
    reg.printTable(os);
}

/** Dump mediator statistics snapshots through the obs registry. */
inline void
printMediatorStats(
    const std::vector<std::pair<std::string, bmcast::MediatorStats>>
        &snaps,
    std::ostream &os = std::cout)
{
    obs::Registry reg;
    for (const auto &[label, s] : snaps)
        bmcast::publishMediatorStats(reg, label, s);
    reg.printTable(os);
}

constexpr net::MacAddr kServerMac = 0x525400000001ULL;
constexpr std::uint64_t kImageBase = 0xABCD000000000001ULL;

/** The paper's 32-GB OS image. */
constexpr sim::Lba kImageSectors = (32 * sim::kGiB) / sim::kSectorSize;

/** Boot trace calibrated to the paper's startup numbers (Fig. 4):
 *  ~29 s local boot, ~72 MB read during boot. */
inline guest::BootTrace
paperBootTrace()
{
    guest::BootTrace b;
    b.loaderBytes = 2 * sim::kMiB;
    b.kernelBytes = 26 * sim::kMiB;
    b.numReads = 3600;
    b.avgReadBytes = 12 * sim::kKiB;
    b.seqFraction = 0.35;
    b.cpuTotal = 14 * sim::kSec;
    b.regionBytes = 8 * sim::kGiB;
    return b;
}

/** The testbed. */
struct Testbed
{
    explicit Testbed(unsigned numMachines = 1,
                     hw::StorageKind storage = hw::StorageKind::Ahci,
                     sim::Lba imageSectors = kImageSectors,
                     double serverCacheHitRate = 0.0)
        : imageSectors(imageSectors),
          lan(eq, "lan", 4 * sim::kUs, 1),
          ib(eq, "ib-switch"),
          serverPort(lan.attach(kServerMac,
                                net::PortConfig{1e9, 9000, 0.0}))
    {
        aoe::ServerParams sp;
        sp.workers = 8; // thread-pooled vblade (paper §4.2)
        // File-level baselines (NFS) enjoy server page caching;
        // block-level paths read the raw image.
        sp.cacheHitRate = serverCacheHitRate;
        server = std::make_unique<aoe::AoeServer>(eq, "server",
                                                  serverPort, sp);
        server->addTarget(0, 0, imageSectors, kImageBase);

        for (unsigned i = 0; i < numMachines; ++i)
            addMachine(storage);

        // Opt-in tracing for any bench binary: BMCAST_TRACE=<path>
        // arms a tracer for the run and writes a Chrome trace_event
        // JSON (chrome://tracing / Perfetto), a deployment-timeline
        // report (<path>.report.json) and a metrics snapshot
        // (<path>.metrics.json) at teardown. A second Testbed in the
        // same process gets numbered paths (<path>.1, ...).
        if (const char *path = std::getenv("BMCAST_TRACE")) {
            static unsigned instance = 0;
            tracePath = path;
            if (instance > 0)
                tracePath += "." + std::to_string(instance);
            ++instance;
            tracer = std::make_unique<obs::Tracer>();
            obs::arm(tracer.get());
            obs::setClock(
                [](const void *ctx) {
                    return static_cast<const sim::EventQueue *>(ctx)
                        ->now();
                },
                &eq);
            obs::setMetrics(&metrics);
            sim::setLogClock([this]() { return eq.now(); });
        }
    }

    ~Testbed()
    {
        if (tracer) {
            sim::setLogClock({});
            publishStats();
            obs::writeChromeTraceFile(tracePath, *tracer);
            obs::RunReport::build(*tracer).writeJsonFile(
                tracePath + ".report.json");
            std::ofstream mf(tracePath + ".metrics.json");
            if (mf)
                metrics.writeJson(mf);
            obs::setMetrics(nullptr);
            obs::disarm();
        }
        // Opt-in kernel-profiling report for any bench binary,
        // rendered from the same registry the trace snapshot uses.
        if (std::getenv("BMCAST_KERNEL_STATS")) {
            publishStats();
            std::cout << "\nSimulation-kernel counters:\n";
            metrics.printTable(std::cout);
        }
    }

    /** Snapshot native counters into the testbed registry. */
    void
    publishStats()
    {
        sim::publishKernelCounters(metrics, "", eq.counters());
        for (const auto &[label, s] : mediatorSnaps)
            bmcast::publishMediatorStats(metrics, label, s);
    }

    hw::Machine &
    addMachine(hw::StorageKind storage)
    {
        auto idx = static_cast<unsigned>(machines.size());
        hw::MachineConfig mc;
        mc.name = "node" + std::to_string(idx);
        mc.storage = storage;
        mc.hasInfiniBand = true;
        mc.ibNodeId = idx;
        mc.seed = 100 + idx;
        machines.push_back(std::make_unique<hw::Machine>(
            eq, mc, lan, 0x5254000100ULL + idx, lan,
            0x5254000200ULL + idx, &ib));

        guest::GuestOsParams gp;
        gp.boot = paperBootTrace();
        gp.seed = 7 + idx;
        guests.push_back(std::make_unique<guest::GuestOs>(
            eq, mc.name + ".guest", *machines.back(), gp));
        return *machines.back();
    }

    hw::Machine &machine(unsigned i = 0) { return *machines.at(i); }
    guest::GuestOs &guest(unsigned i = 0) { return *guests.at(i); }

    /** Snapshot a mediator's counters for the env-gated end-of-run
     *  report (mediators usually die before the Testbed does). */
    void
    noteMediator(const std::string &label,
                 const bmcast::DeviceMediator &m)
    {
        mediatorSnaps.emplace_back(label, m.stats());
    }

    /** Advance simulated time by @p duration (events or not). */
    void
    runFor(sim::Tick duration)
    {
        eq.runUntil(eq.now() + duration);
    }

    /** Run until @p pred holds (or deadline); abort loudly if not. */
    template <typename Pred>
    bool
    runUntil(sim::Tick deadline, Pred &&pred)
    {
        while (!pred()) {
            if (eq.now() > deadline || eq.empty())
                return pred();
            eq.step();
        }
        return true;
    }

    sim::Lba imageSectors;
    sim::EventQueue eq;
    net::Network lan;
    hw::IbFabric ib;
    net::Port &serverPort;
    std::unique_ptr<aoe::AoeServer> server;
    std::vector<std::unique_ptr<hw::Machine>> machines;
    std::vector<std::unique_ptr<guest::GuestOs>> guests;
    std::vector<std::pair<std::string, bmcast::MediatorStats>>
        mediatorSnaps;

    /** Always present (cheap when idle): the run's metric registry.
     *  Installed globally via obs::setMetrics while tracing is
     *  armed. */
    obs::Registry metrics;
    std::unique_ptr<obs::Tracer> tracer;
    std::string tracePath;
};

/** Default VMM parameters used by the benches (calibrated;
 *  EXPERIMENTS.md records the derivation). */
inline bmcast::VmmParams
paperVmmParams()
{
    bmcast::VmmParams p;
    // 32 GiB at one 1-MiB block per interval ~= 16 min deployment
    // under a quiet guest (Fig. 5a).
    p.moderation.vmmWriteInterval = 28 * sim::kMs;
    p.moderation.guestIoFreqThreshold = 24.0;
    p.moderation.vmmWriteSuspendInterval = 250 * sim::kMs;
    return p;
}

/** @name Storm-bench parameterization and uniform records
 * The storm benches (abl_scaleout, abl_store, abl_storm) take their
 * node counts from the environment instead of hardcoded N<=8 loops,
 * and every configuration they run is reported as one uniform
 * {nodes, shards, wall_ms, events_per_sec} JSON record, so scaling
 * sweeps across benches land in comparable shape in BENCH_*.json. */
/// @{

/**
 * Reject a malformed environment knob. Silently falling back to the
 * default would run a sweep the user didn't ask for and record it
 * under the name they did — a corrupted trajectory is worse than a
 * dead bench, so a bad value is a hard error (exit 2).
 */
[[noreturn]] inline void
envBad(const char *name, const char *value, const char *why)
{
    std::cerr << "bad " << name << "=\"" << value << "\": " << why
              << " (expected a positive decimal integer)\n";
    std::exit(2);
}

/** One strictly-validated positive decimal; advances @p p. */
inline unsigned
envParseOne(const char *name, const char *whole, const char *&p)
{
    if (*p == '-' || *p == '+')
        envBad(name, whole, "signed values are not accepted");
    char *end = nullptr;
    errno = 0;
    unsigned long parsed = std::strtoul(p, &end, 10);
    if (end == p)
        envBad(name, whole, "not a number");
    if (errno == ERANGE || parsed > UINT_MAX)
        envBad(name, whole, "out of range");
    if (parsed == 0)
        envBad(name, whole, "must be nonzero");
    p = end;
    return static_cast<unsigned>(parsed);
}

/** Unsigned environment knob: BMCAST_NODES=512, BMCAST_TENANTS=4...
 *  Zero, negative, or non-numeric values are fatal (exit 2). */
inline unsigned
envUnsigned(const char *name, unsigned def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    const char *p = v;
    unsigned parsed = envParseOne(name, v, p);
    if (*p != '\0')
        envBad(name, v, "trailing junk after the number");
    return parsed;
}

/** Coding-plan knob: BMCAST_CODE=flat-rs | lrc | hitchhiker picks
 *  the store tier's erasure code. Junk is fatal (exit 2) under the
 *  same corrupted-trajectory rule as the numeric knobs. */
inline store::ec::CodeKind
envCodeKind(const char *name, store::ec::CodeKind def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    if (auto kind = store::ec::parseCodeKind(v))
        return *kind;
    std::cerr << "bad " << name << "=\"" << v
              << "\": unknown code (expected flat-rs | lrc | "
                 "hitchhiker)\n";
    std::exit(2);
}

/** Comma-separated unsigned list knob (BMCAST_SHARDS=1,2,4,8).
 *  Any malformed element is fatal (exit 2). */
inline std::vector<unsigned>
envUnsignedList(const char *name, std::vector<unsigned> def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    std::vector<unsigned> out;
    const char *p = v;
    for (;;) {
        out.push_back(envParseOne(name, v, p));
        if (*p == '\0')
            break;
        if (*p != ',')
            envBad(name, v, "elements must be comma-separated");
        ++p;
        if (*p == '\0')
            envBad(name, v, "trailing comma");
    }
    return out;
}

/** One storm configuration's uniform result record. */
struct ScaleRecord
{
    unsigned nodes = 0;
    unsigned shards = 1;
    double wallMs = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0; ///< simulated events per wall second
    std::uint64_t fingerprint = 0; ///< sim-outcome fold (0 = n/a)
};

/** The record in its uniform JSON shape. */
inline std::string
scaleRecordJson(const ScaleRecord &r)
{
    std::ostringstream os;
    os << "{\"nodes\": " << r.nodes << ", \"shards\": " << r.shards
       << ", \"wall_ms\": " << r.wallMs
       << ", \"events\": " << r.events
       << ", \"events_per_sec\": " << r.eventsPerSec
       << ", \"fingerprint\": \"0x" << std::hex << r.fingerprint
       << std::dec << "\"}";
    return os.str();
}

/** The uniform `"records": [...]` JSON fragment (no trailing brace
 *  or comma — callers embed it in their bench-specific object). */
inline std::string
scaleRecordsJson(const std::vector<ScaleRecord> &rs,
                 const char *indent = "    ")
{
    std::ostringstream os;
    os << "\"records\": [\n";
    for (std::size_t i = 0; i < rs.size(); ++i) {
        os << indent << "  " << scaleRecordJson(rs[i])
           << (i + 1 < rs.size() ? "," : "") << "\n";
    }
    os << indent << "]";
    return os.str();
}
/// @}

/** Print a figure header. */
inline void
figureHeader(const std::string &title)
{
    std::cout << "\n==========================================="
                 "=====================\n"
              << title << "\n"
              << "============================================"
                 "====================\n";
}

} // namespace bench

#endif // BENCH_HARNESS_HH
