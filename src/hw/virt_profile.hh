/**
 * @file
 * The machine-wide virtualization cost profile.
 *
 * The active VMM (BMcast during its phases, or the KVM baseline)
 * publishes a VirtProfile on the Machine; workload models and the
 * InfiniBand HCA consult it to compute virtualization-induced
 * overheads that are below the granularity of the discrete-event
 * device models (TLB behaviour, cache pollution, vCPU scheduling).
 *
 * Publishing a profile is the *mechanism* by which overhead appears;
 * de-virtualization resets the profile to bare metal, which is how the
 * paper's "zero overhead after de-virtualization" claim is structural
 * in this model rather than asserted.
 */

#ifndef HW_VIRT_PROFILE_HH
#define HW_VIRT_PROFILE_HH

#include <string>

#include "simcore/types.hh"

namespace hw {

/** Cost knobs consulted by workloads and latency-sensitive devices. */
struct VirtProfile
{
    /** Human-readable profile name. */
    std::string name = "baremetal";

    /** True while a VMM interposes at all. */
    bool virtualized = false;

    /** True while nested paging (EPT/NPT) is on. */
    bool nestedPaging = false;

    /**
     * Fraction of CPU time consumed by the VMM itself (polling
     * threads, deployment work). BMcast derives this from its polling
     * interval and per-poll cost; see bmcast::Vmm.
     */
    double vmmCpuSteal = 0.0;

    /**
     * Multiplier on the guest's TLB miss *rate* (paper §5.2: up to 5x
     * during streaming deployment).
     */
    double tlbMissRateMult = 1.0;

    /**
     * Multiplier on TLB miss *latency* (two-dimensional page walks
     * roughly double it under nested paging; paper §5.2).
     */
    double tlbMissLatencyMult = 1.0;

    /**
     * Extra cache miss fraction from VMM/host-OS cache pollution
     * (significant for KVM, small for BMcast).
     */
    double cachePollutionFactor = 0.0;

    /**
     * Probability that a vCPU holding a lock is descheduled by the
     * host (lock-holder preemption; zero unless vCPUs are scheduled
     * by a host OS, i.e. KVM).
     */
    double lockHolderPreemptProb = 0.0;

    /** Duration of one involuntary vCPU deschedule. */
    sim::Tick vcpuDescheduleNs = 0;

    /**
     * Fractional latency overhead on RDMA operations (IOMMU + nested
     * paging; paper §5.5.3: 23.6% for KVM/Direct, <1% for BMcast).
     */
    double rdmaLatencyOverhead = 0.0;

    /** Extra latency per delivered device interrupt. */
    sim::Tick interruptExtraNs = 0;

    /** Extra latency per disk I/O (virtio/emulated path; zero when
     *  the guest drives the physical controller directly). */
    sim::Tick perIoExtraNs = 0;
};

/** The no-VMM profile. */
inline VirtProfile
bareMetalProfile()
{
    return VirtProfile{};
}

} // namespace hw

#endif // HW_VIRT_PROFILE_HH
