/**
 * @file
 * Provider-side facade: a bare-metal cloud region built on BMcast.
 *
 * Owns the management network, the image server and the machine
 * pool. Lease admission, placement and lifecycle live in a
 * cloud::ControlPlane for which the Cloud is the ProvisionerPort:
 * the plane decides *which* slot serves a lease, the Cloud performs
 * the mechanism (guest + deployer construction, power-off + scrub on
 * release). Two call surfaces share that machinery:
 *
 *  - provision()/release(): the historical blocking API, preserved
 *    as a fail-fast shim — a submit that cannot be placed this
 *    instant returns nullptr, exactly the legacy contract;
 *  - submitLease()/releaseLease(): the queued API with QoS classes,
 *    typed rejections and the full lease timeline.
 *
 * Optionally the region models its aggregation network explicitly
 * (CloudConfig::topology) and shapes deployment traffic against a
 * shared budget (CloudConfig::congestion); both default off, keeping
 * historical runs bit-identical.
 */

#ifndef BMCAST_CLOUD_HH
#define BMCAST_CLOUD_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aoe/server.hh"
#include "bmcast/deployer.hh"
#include "cloud/congestion.hh"
#include "cloud/control_plane.hh"
#include "guest/guest_os.hh"
#include "hw/machine.hh"
#include "migrate/migration.hh"
#include "net/network.hh"
#include "net/topology.hh"
#include "simcore/sim_object.hh"
#include "store/fabric.hh"
#include "store/repair_scheduler.hh"

namespace bmcast {

/** Region-wide configuration. */
struct CloudConfig
{
    /** Machines racked in the region. */
    unsigned machines = 4;
    /**
     * Racks the pool is striped over (machine i lives in rack
     * i % racks). Placement is rack-aware: provision() leases from
     * the least-loaded rack, spreading a deployment storm across
     * failure domains instead of filling rack 0 first. With the
     * default single rack, placement degenerates to the historical
     * lowest-free-slot order.
     */
    unsigned racks = 1;
    hw::StorageKind storage = hw::StorageKind::Ahci;
    hw::MachineConfig machineTemplate;
    aoe::ServerParams server;
    VmmParams vmm;
    guest::GuestOsParams guestTemplate;
    /** Cold firmware init on first power-on. */
    bool coldFirmware = false;
    /** Store tier; disabled keeps the legacy single image server. */
    store::StoreParams store;
    /** Admission queue + lease state machine knobs. */
    cloud::ControlPlaneParams controlPlane;
    /**
     * Explicit aggregation topology (racks must match `racks` when
     * enabled). racks == 0 leaves the LAN flat — bit-identical to
     * every run before the topology existed.
     */
    net::TopologyConfig topology;
    /** Deployment-bandwidth shaping; disabled = unshaped. */
    cloud::CongestionParams congestion;
    /** Live-migration tuning (pre-copy rounds, handoff budget). */
    migrate::MigrateParams migrate;
};

/** One leased instance. */
class Instance
{
  public:
    enum class State { Provisioning, Serving, BareMetal, Released };

    State state() const { return state_; }
    hw::Machine &machine() { return *machine_; }
    guest::GuestOs &guest() { return *guest_; }
    BmcastDeployer &deployer() { return *deployer_; }
    const std::string &image() const { return image_; }
    /** Rack the leased machine lives in. */
    unsigned rack() const { return rack_; }
    /** The control-plane lease backing this instance (never null). */
    cloud::Lease &lease() { return *lease_; }

    /** The live migration driving (or having driven) this instance;
     *  nullptr before Cloud::migrate ran. Stays valid afterwards so
     *  callers can read the recorded MigrateStats. */
    migrate::MigrationManager *migration() { return mig_.get(); }

    /** Seconds from the provision request to a serving guest. */
    double
    timeToServingSec() const
    {
        const auto &tl = deployer_->timeline();
        return sim::toSeconds(tl.guestBootDone - tl.powerOn);
    }

  private:
    friend class Cloud;

    State state_ = State::Provisioning;
    std::string image_;
    unsigned rack_ = 0;
    hw::Machine *machine_ = nullptr;
    cloud::Lease *lease_ = nullptr;
    std::unique_ptr<guest::GuestOs> guest_;
    std::unique_ptr<BmcastDeployer> deployer_;
    std::unique_ptr<migrate::MigrationManager> mig_;
    /** Source-node guests parked after a migration handoff: events
     *  still in the queue retire against live objects. */
    std::vector<std::unique_ptr<guest::GuestOs>> oldGuests_;
};

/** The region. */
class Cloud : public sim::SimObject, private cloud::ProvisionerPort
{
  public:
    Cloud(sim::EventQueue &eq, std::string name,
          CloudConfig config = CloudConfig{});

    /** Register a golden image on the storage server(s). */
    void addImage(const std::string &name, sim::Bytes size,
                  std::uint64_t contentBase);

    /**
     * Register an overlay image: @p baseImage with @p deltas applied
     * (elijah-style base + modified runs).  Every seed server exports
     * it as a full target; with the store tier enabled, the catalog
     * additionally dedups every chunk the deltas do not touch against
     * the base image.
     */
    void addOverlayImage(const std::string &name,
                         const std::string &baseImage,
                         const std::vector<store::DeltaRun> &deltas);

    /**
     * Lease the next free machine and deploy @p image onto it with
     * BMcast. @p onServing fires when the guest OS is up (long
     * before the image has fully landed on the local disk).
     * @return the instance handle, or nullptr if the region is full.
     *
     * Legacy blocking shim: equivalent to submitLease() with
     * failFast set and default QoS.
     */
    Instance *provision(const std::string &image,
                        std::function<void(Instance &)> onServing);

    /**
     * Queued admission path. The request passes the control plane's
     * bounded admission queue (strict QoS priority, per-tenant caps);
     * the returned lease reports Queued/Deploying, or Rejected with
     * a typed reason. @p onServing fires with the deployed instance
     * when the guest is up.
     */
    cloud::Lease *
    submitLease(cloud::LeaseRequest rq,
                std::function<void(Instance &)> onServing,
                cloud::Lease::RejectedFn onRejected = {});

    /** Release by lease handle: cancels a still-queued lease, tears
     *  down a deploying/serving one (see release(Instance&)). */
    void releaseLease(cloud::Lease &l);

    /** The instance deployed for @p l (nullptr while queued or
     *  rejected). Valid for released leases too. */
    Instance *instanceFor(const cloud::Lease &l);

    /**
     * Return a leased instance's machine to the pool (rapid
     * elasticity needs reclaim as much as provisioning). Powers the
     * machine off — stopping any still-running deployment — scrubs
     * the local disk (tenant data and any saved deployment bitmap)
     * and discards the guest. The handle stays valid in Released
     * state, but its machine/guest/deployer accessors do not.
     */
    void release(Instance &inst);

    /**
     * Release @p inst and fold its disk's divergence from the
     * deployed image into a new overlay image @p overlayName
     * (registered before the disk scrubs): a re-lease redeploys from
     * the delta instead of re-shipping the whole working set. The
     * instance must have reached bare metal — a partially landed
     * disk would capture unlanded blocks as zero deltas.
     */
    void releaseToOverlay(Instance &inst,
                          const std::string &overlayName);

    /**
     * Live-migrate @p inst onto free pool slot @p destSlot: the
     * source VMM re-arms under the running guest (re-virtualization),
     * pre-copy rounds stream the dirty working set, and after the
     * stop-and-copy the guest resumes on the destination, bare-metal.
     * Refusals are typed and leave the instance untouched. One
     * migration per instance: the destination runs native, with no
     * VMM to re-arm for a second hop.
     */
    cloud::MigrateReject migrate(Instance &inst, unsigned destSlot);

    /** Machines not yet leased. */
    unsigned freeMachines() const;

    /** The lease control plane (admission queue, placement, stats). */
    cloud::ControlPlane &plane() { return *plane_; }
    /** The aggregation topology (nullptr when disabled). */
    net::Topology *topology() { return topo_.get(); }
    /** The deployment congestion controller (nullptr when disabled). */
    cloud::CongestionController *congestion()
    {
        return congestion_.get();
    }

    /** Rack of pool slot @p slot (machines stripe round-robin). */
    unsigned rackOf(unsigned slot) const;
    /** Leased machines currently in rack @p rack. */
    unsigned rackLoad(unsigned rack) const;

    net::Network &network() { return lan; }
    aoe::AoeServer &imageServer() { return *servers_.front(); }
    /** Seed server @p i (store mode exports several). */
    aoe::AoeServer &seedServer(unsigned i) { return *servers_[i]; }
    std::size_t seedServerCount() const { return servers_.size(); }
    const std::vector<net::MacAddr> &seedMacs() const
    {
        return serverMacs_;
    }
    /** The store fabric (nullptr when the store tier is disabled). */
    store::StoreFabric *storeFabric() { return fabric_.get(); }
    /** The background stripe healer (nullptr unless the store tier
     *  and its repair knob are both enabled). */
    store::RepairScheduler *repairScheduler() { return repair_.get(); }
    /** Wire chaos into the LAN, the seed servers, every machine and
     *  the store fabric's peer exporters. */
    void setFaultInjector(sim::FaultInjector *fi);
    const std::vector<std::unique_ptr<Instance>> &instances() const
    {
        return leased;
    }

  private:
    struct Image
    {
        std::uint16_t major;
        sim::Lba sectors;
        std::uint64_t contentBase;
        /** Overlay runs applied on top of contentBase (empty = flat). */
        std::vector<store::DeltaRun> deltas;
        /** Flat image this overlays (empty = this image is flat). */
        std::string baseName;
    };

    /** @name ProvisionerPort (the mechanism the plane drives) */
    /// @{
    unsigned slots() const override { return cfg.machines; }
    unsigned rackOfSlot(unsigned slot) const override
    {
        return rackOf(slot);
    }
    void startDeployment(cloud::Lease &l) override;
    void startRelease(cloud::Lease &l) override;
    void startMigration(cloud::Lease &l, unsigned destSlot) override;
    /** Tiebreak on aggregation downlink backlog when the topology is
     *  modeled (single event queue: reading it here is safe). */
    std::uint64_t rackScore(unsigned rack) const override;
    /// @}

    /** Arm the manager and its hooks once the source is bare-metal. */
    void beginMigration(cloud::Lease &l, unsigned destSlot);
    /** The stop-and-copy state application: drain the source guest's
     *  in-flight I/O (commands queued before the pause keep
     *  completing against the source disk), then copy, swap the
     *  instance onto the destination and tear the source down. */
    void quiesceThenHandoff(Instance *ref, unsigned srcSlot,
                            unsigned destSlot, sim::Lba sectors,
                            std::function<void()> done);
    /** A reference disk holding @p img's pristine content. */
    hw::DiskStore imageDisk(const Image &img) const;

    CloudConfig cfg;
    net::Network lan;
    /** Seed image servers; one in legacy mode, params.seedServers in
     *  store mode (the erasure stripe spreads over them). */
    std::vector<net::MacAddr> serverMacs_;
    std::vector<std::unique_ptr<aoe::AoeServer>> servers_;
    std::unique_ptr<store::StoreFabric> fabric_;
    std::unique_ptr<store::RepairScheduler> repair_;
    std::vector<std::unique_ptr<hw::Machine>> pool;
    std::map<std::string, Image> images;
    std::uint16_t nextMajor = 0;
    std::vector<std::unique_ptr<Instance>> leased;

    std::unique_ptr<net::Topology> topo_;
    std::unique_ptr<cloud::CongestionController> congestion_;
    std::unique_ptr<cloud::ControlPlane> plane_;
    /** Lease id -> deployed instance (entries persist after release
     *  so timelines stay inspectable). */
    std::map<std::uint64_t, Instance *> leaseInst_;
    /** Lease id -> overlay image name to capture in startRelease. */
    std::map<std::uint64_t, std::string> pendingOverlay_;
    /** Last injector wired by setFaultInjector (migrations inherit). */
    sim::FaultInjector *fi_ = nullptr;
};

} // namespace bmcast

#endif // BMCAST_CLOUD_HH
