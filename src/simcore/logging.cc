#include "simcore/logging.hh"

#include <cstdio>
#include <iostream>
#include <map>
#include <utility>

namespace sim {

namespace {

LogLevel gLevel = LogLevel::Warn;
std::function<std::uint64_t()> gLogClock;
/** Per-component overrides; longest matching prefix wins. */
std::map<std::string, LogLevel> gOverrides;

/** "[<s>.<9-digit ns>] " when a clock is installed; "" otherwise, so
 *  clock-less output stays byte-identical to the historical format. */
std::string
stamp()
{
    if (!gLogClock)
        return {};
    const std::uint64_t t = gLogClock();
    char buf[40];
    std::snprintf(buf, sizeof buf, "[%llu.%09llu] ",
                  static_cast<unsigned long long>(t / 1000000000ULL),
                  static_cast<unsigned long long>(t % 1000000000ULL));
    return buf;
}

/** Effective level for @p msg: the longest registered component
 *  prefix the message starts with, else the global level. */
LogLevel
levelFor(const std::string &msg)
{
    LogLevel level = gLevel;
    std::size_t best = 0;
    for (const auto &[prefix, l] : gOverrides) {
        if (prefix.size() >= best &&
            msg.compare(0, prefix.size(), prefix) == 0) {
            best = prefix.size();
            level = l;
        }
    }
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

void
setLogClock(std::function<std::uint64_t()> clock)
{
    gLogClock = std::move(clock);
}

void
setLogLevelFor(const std::string &componentPrefix, LogLevel level)
{
    gOverrides[componentPrefix] = level;
}

void
clearLogLevelOverrides()
{
    gOverrides.clear();
}

void
warnStr(const std::string &msg)
{
    if (levelFor(msg) >= LogLevel::Warn)
        std::cerr << "warn: " << stamp() << msg << std::endl;
}

void
informStr(const std::string &msg)
{
    if (levelFor(msg) >= LogLevel::Inform)
        std::cout << "info: " << stamp() << msg << std::endl;
}

void
debugStr(const std::string &msg)
{
    if (levelFor(msg) >= LogLevel::Debug)
        std::cerr << "debug: " << stamp() << msg << std::endl;
}

} // namespace sim
