/**
 * @file
 * On-demand virtualization comparison point (Kooburat & Swift,
 * HotOS'11 — paper §2): converting between physical and virtual
 * execution by exploiting OS hibernation. More seamless than a
 * reboot-based VMM uninstall, but it requires slight OS
 * modifications (not OS-transparent) and the conversion takes about
 * 90 seconds of downtime — BMcast's de-virtualization, by contrast,
 * is a sub-millisecond per-CPU switch with no guest cooperation.
 *
 * Modelled as timings only; used by the comparison bench.
 */

#ifndef BASELINES_ON_DEMAND_VIRT_HH
#define BASELINES_ON_DEMAND_VIRT_HH

#include <functional>

#include "simcore/sim_object.hh"

namespace baselines {

/** Published characteristics of the hibernate-based conversion. */
struct OnDemandVirtParams
{
    /** Physical-to-virtual conversion time (paper §2: 90 s). */
    sim::Tick conversionTime = 90 * sim::kSec;
    /** The guest OS must be modified (hibernation hooks). */
    bool osTransparent = false;
};

/** The conversion model. */
class OnDemandVirt : public sim::SimObject
{
  public:
    OnDemandVirt(sim::EventQueue &eq, std::string name,
                 OnDemandVirtParams params = OnDemandVirtParams{})
        : sim::SimObject(eq, std::move(name)), params_(params) {}

    /** Convert (either direction); the guest is down throughout. */
    void
    convert(std::function<void()> done)
    {
        ++numConversions;
        downtime += params_.conversionTime;
        schedule(params_.conversionTime, std::move(done));
    }

    const OnDemandVirtParams &params() const { return params_; }
    sim::Tick totalDowntime() const { return downtime; }
    unsigned conversions() const { return numConversions; }

  private:
    OnDemandVirtParams params_;
    sim::Tick downtime = 0;
    unsigned numConversions = 0;
};

} // namespace baselines

#endif // BASELINES_ON_DEMAND_VIRT_HH
