/**
 * @file
 * OSU micro-benchmarks: MPI collective latency over InfiniBand
 * (paper §5.3, Fig. 6; MPICH2 on a 10-node cluster).
 *
 * Collectives are implemented with their standard algorithms over
 * the RDMA fabric model: ring Allgather, recursive-doubling
 * Allreduce/Barrier, binomial Bcast/Reduce, pairwise Alltoall. Each
 * message carries per-node software overhead from that node's live
 * virtualization profile, and each algorithm step synchronizes on
 * the slowest participant — which is how modest per-node jitter
 * amplifies into KVM's large collective latencies.
 */

#ifndef WORKLOADS_OSU_MPI_HH
#define WORKLOADS_OSU_MPI_HH

#include <functional>
#include <memory>
#include <vector>

#include "hw/machine.hh"
#include "simcore/random.hh"
#include "simcore/sim_object.hh"

namespace workloads {

/** Collectives measured in Fig. 6. */
enum class Collective
{
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Reduce,
};

const char *collectiveName(Collective c);

/** The benchmark runner over a cluster of machines. */
struct OsuMpiParams
{
    sim::Bytes messageBytes = 1024;
    unsigned iterations = 200;
    /** Fixed software cost to post/complete one MPI message. */
    sim::Tick swPerMessage = 650; // ns
    /** Host-noise jitter: exponential mean added per node per step,
     *  scaled by the node's interruptExtraNs profile. */
    double jitterScale = 1.0;
    std::uint64_t seed = 41;
};

/** The benchmark runner over a cluster of machines. */
class OsuMpi : public sim::SimObject
{
  public:
    using Params = OsuMpiParams;

    OsuMpi(sim::EventQueue &eq, std::string name,
           std::vector<hw::Machine *> cluster,
           Params params = Params());

    /** Mean latency of one collective invocation, in ticks. */
    void run(Collective c, std::function<void(sim::Tick mean)> done);

  private:
    void iteration(Collective c, unsigned remaining);
    void runSteps(
        std::shared_ptr<std::vector<
            std::vector<std::pair<unsigned, unsigned>>>> steps,
        sim::Bytes bytes, std::size_t idx,
        std::function<void()> done);

    /** Build the message schedule (list of steps; each step a list
     *  of (src, dst) transfers that proceed in parallel). */
    std::vector<std::vector<std::pair<unsigned, unsigned>>>
    schedule_for(Collective c) const;

    sim::Tick nodeOverhead(unsigned node);

    std::vector<hw::Machine *> cluster;
    Params params;
    sim::Rng rng;

    sim::Tick accum = 0;
    sim::Tick iterStart = 0;
    std::function<void(sim::Tick)> doneCb;
};

} // namespace workloads

#endif // WORKLOADS_OSU_MPI_HH
