/**
 * @file
 * Interrupted deployment: the §3.3 shutdown/reboot story. The VMM
 * persists its block bitmap in a reserved on-disk region; when the
 * machine comes back, a fresh VMM reloads it and resumes the copy
 * instead of starting over — and the region survives because guest
 * access to it is converted to dummy reads.
 */

#include <iostream>

#include "aoe/server.hh"
#include "bmcast/vmm.hh"
#include "guest/guest_os.hh"
#include "hw/machine.hh"
#include "net/network.hh"

int
main()
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    constexpr net::MacAddr kServerMac = 0x525400000001;
    constexpr std::uint64_t kImage = 0xABCD000000000001ULL;
    const sim::Lba image_sectors = (4 * sim::kGiB) / sim::kSectorSize;

    net::Port &sport = lan.attach(kServerMac, {1e9, 9000, 0.0});
    aoe::AoeServer server(eq, "server", sport);
    server.addTarget(0, 0, image_sectors, kImage);

    hw::MachineConfig mc;
    mc.name = "node0";
    hw::Machine machine(eq, mc, lan, 0x52540000A0, lan, 0x52540000B0);

    bmcast::VmmParams vp;
    vp.moderation.vmmWriteInterval = 12 * sim::kMs;

    // --- First deployment attempt; "power failure" mid-copy.
    auto vmm1 = std::make_unique<bmcast::Vmm>(
        eq, "vmm1", machine, kServerMac, image_sectors, vp);
    vmm1->netboot([]() {});
    eq.runUntil(eq.now() + 25 * sim::kSec);

    auto filled_in_image = [&](bmcast::BlockBitmap &bm) {
        sim::Lba empty = 0;
        for (auto [a, b] : bm.emptyRanges(0, image_sectors))
            empty += b - a;
        return image_sectors - empty;
    };
    sim::Lba filled_before = filled_in_image(vmm1->bitmap());
    bool saved = false;
    vmm1->saveBitmapNow([&]() { saved = true; });
    while (!saved && !eq.empty())
        eq.step();
    std::cout << "power failure at t=" << sim::toSeconds(eq.now())
              << " s with "
              << filled_before * sim::kSectorSize / sim::kMiB
              << " MiB deployed; bitmap saved to the reserved "
                 "region\n";
    vmm1->powerOff(); // the machine goes down (object kept as a
                      // husk until its guarded events drain)

    // --- Reboot: a fresh VMM resumes from the saved bitmap.
    auto vmm2 = std::make_unique<bmcast::Vmm>(
        eq, "vmm2", machine, kServerMac, image_sectors, vp);
    bool ready = false;
    vmm2->netboot([&]() { ready = true; });
    while (!ready && !eq.empty())
        eq.step();

    std::cout << "after reboot the new VMM sees "
              << filled_in_image(vmm2->bitmap()) * sim::kSectorSize /
                     sim::kMiB
              << " MiB already deployed (resumed, not restarted)\n";

    bool done = false;
    vmm2->onBareMetal([&]() { done = true; });
    while (!done && !eq.empty() && eq.now() < 40000 * sim::kSec)
        eq.step();

    std::cout << "deployment finished at t="
              << sim::toSeconds(eq.now()) << " s; image intact: "
              << (machine.disk().store().rangeHasBase(0, image_sectors,
                                                      kImage)
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}
