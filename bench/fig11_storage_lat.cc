/**
 * @file
 * Figure 11: storage latency — ioping-style 4 KiB reads (paper
 * §5.5.2). Deploy adds +4.3 ms (guest requests queue behind the
 * VMM's multiplexed background-copy writes); Devirt is
 * indistinguishable from bare metal.
 */

#include "baselines/kvm.hh"
#include "baselines/net_root.hh"
#include "bench/harness.hh"
#include "workloads/fio.hh"

using namespace bench;

namespace {

double
runIoping(Testbed &tb, guest::BlockDriver &blk, sim::Lba lba = 0)
{
    workloads::IopingParams ip;
    if (lba)
        ip.startLba = lba;
    workloads::Ioping probe(tb.eq, "ioping", blk, ip);
    bool done = false;
    double mean = 0;
    probe.run([&](workloads::IopingResult r) {
        mean = r.meanMs;
        done = true;
    });
    tb.runUntil(tb.eq.now() + 4000 * sim::kSec,
                [&]() { return done; });
    return mean;
}

} // namespace

int
main()
{
    figureHeader("Figure 11: storage latency (ms), ioping 4 KiB "
                 "reads x 100");
    std::vector<std::pair<std::string, double>> rows;

    {
        Testbed tb;
        tb.machine().disk().store().write(0, tb.imageSectors,
                                          kImageBase);
        bool up = false;
        tb.guest().start([&]() { up = true; });
        tb.runUntil(400 * sim::kSec, [&]() { return up; });
        rows.emplace_back("Baremetal",
                          runIoping(tb, tb.guest().blk()));
    }
    {
        Testbed tb;
        bmcast::BmcastDeployer dep(tb.eq, "dep", tb.machine(),
                                   tb.guest(), kServerMac,
                                   tb.imageSectors, paperVmmParams(),
                                   false);
        bool up = false;
        dep.run([&]() { up = true; });
        tb.runUntil(1000 * sim::kSec, [&]() { return up; });
        sim::Lba cold = (16ULL * sim::kGiB) / sim::kSectorSize;
        rows.emplace_back("Deploy",
                          runIoping(tb, tb.guest().blk(), cold));
    }
    {
        sim::Lba small = (2 * sim::kGiB) / sim::kSectorSize;
        Testbed tb(1, hw::StorageKind::Ahci, small);
        bmcast::VmmParams fast = paperVmmParams();
        fast.moderation.vmmWriteInterval = 2 * sim::kMs;
        bmcast::BmcastDeployer dep(tb.eq, "dep", tb.machine(),
                                   tb.guest(), kServerMac, small,
                                   fast, false);
        dep.run([]() {});
        tb.runUntil(4000 * sim::kSec,
                    [&]() { return dep.bareMetalReached(); });
        rows.emplace_back("Devirt", runIoping(tb, tb.guest().blk()));
    }
    {
        Testbed tb(1, hw::StorageKind::Ahci, kImageSectors, 0.35);
        baselines::NetRootDriver drv(tb.eq, "nfsroot", tb.machine(),
                                     kServerMac);
        drv.initialize();
        rows.emplace_back("Netboot", runIoping(tb, drv));
    }
    {
        Testbed tb;
        tb.machine().disk().store().write(0, tb.imageSectors,
                                          kImageBase);
        baselines::KvmConfig cfg;
        baselines::KvmVmm kvm(tb.eq, "kvm", tb.machine(), cfg,
                              kServerMac);
        tb.machine().setProfile(kvm.profile());
        kvm.blockDriver().initialize();
        rows.emplace_back("KVM/Local",
                          runIoping(tb, kvm.blockDriver()));
    }

    double base = rows[0].second;
    sim::Table t({"System", "Mean latency (ms)", "delta vs bare"});
    for (auto &[name, ms] : rows)
        t.addRow({name, sim::Table::num(ms, 2),
                  (ms >= base ? "+" : "") +
                      sim::Table::num(ms - base, 2) + " ms"});
    t.print(std::cout);
    std::cout << "\nPaper: Deploy +4.3 ms (blocking behind "
                 "multiplexed VMM I/O); Devirt ~= bare metal.\n";
    sim::printBarChart(std::cout, "\nMean 4K read latency:", rows,
                       "ms");

    // NVMe backend on the same mediation core: deploy-time latency
    // and post-devirt latency should track the AHCI rows.
    std::vector<std::pair<std::string, double>> nvme;
    {
        Testbed tb(1, hw::StorageKind::Nvme);
        bmcast::BmcastDeployer dep(tb.eq, "dep", tb.machine(),
                                   tb.guest(), kServerMac,
                                   tb.imageSectors, paperVmmParams(),
                                   false);
        bool up = false;
        dep.run([&]() { up = true; });
        tb.runUntil(1000 * sim::kSec, [&]() { return up; });
        sim::Lba cold = (16ULL * sim::kGiB) / sim::kSectorSize;
        nvme.emplace_back("Deploy/NVMe",
                          runIoping(tb, tb.guest().blk(), cold));
        tb.noteMediator("Deploy/NVMe", dep.vmm().mediator());
    }
    {
        sim::Lba small = (2 * sim::kGiB) / sim::kSectorSize;
        Testbed tb(1, hw::StorageKind::Nvme, small);
        bmcast::VmmParams fast = paperVmmParams();
        fast.moderation.vmmWriteInterval = 2 * sim::kMs;
        bmcast::BmcastDeployer dep(tb.eq, "dep", tb.machine(),
                                   tb.guest(), kServerMac, small,
                                   fast, false);
        dep.run([]() {});
        tb.runUntil(4000 * sim::kSec,
                    [&]() { return dep.bareMetalReached(); });
        nvme.emplace_back("Devirt/NVMe",
                          runIoping(tb, tb.guest().blk()));
    }
    std::cout << "\nNVMe backend (same mediation core):\n";
    sim::Table nt({"System", "Mean latency (ms)", "delta vs bare"});
    for (auto &[name, ms] : nvme)
        nt.addRow({name, sim::Table::num(ms, 2),
                   (ms >= base ? "+" : "") +
                       sim::Table::num(ms - base, 2) + " ms"});
    nt.print(std::cout);
    return 0;
}
