/**
 * @file
 * Isolation tests of bmcast::MediationCore against a scripted mock
 * ControllerPort: no controllers, no guests, no event queue — every
 * device-side transition is driven by hand, so the redirect state
 * machine, the VMM multiplexer and the write queue can be pinned
 * step by step. A property test then drives random interleavings of
 * guest traffic, VMM ops, device completions and power-offs and
 * checks the core's invariants after every step.
 */

#include <gtest/gtest.h>

#include <deque>

#include "bmcast/mediation_core.hh"
#include "hw/disk_store.hh"
#include "simcore/random.hh"

namespace {

using bmcast::MediationCore;
using bmcast::RestartMode;

constexpr sim::Lba kDiskSectors = 1 << 20;
constexpr sim::Lba kReservedBase = kDiskSectors - 64;
constexpr sim::Addr kBounce = 0x100000;
constexpr std::uint32_t kBounceSectors = 2048;
constexpr std::uint64_t kRemoteBase = 0xABCD000000000000ULL;
constexpr std::uint64_t kDeviceBase = 0xD15C000000000000ULL;

/**
 * A hand-cranked ControllerPort. Nothing completes by itself: the
 * test flips `vmmReady` / `restartReady` (the "device finished"
 * moments) and adjusts `guestOutstanding`, then calls core.poll()
 * exactly like a front-end's poll loop would.
 */
class ScriptedPort : public bmcast::ControllerPort
{
  public:
    explicit ScriptedPort(hw::PhysMem &m) : mem(m) {}

    bool guestBusy() const override { return guestOutstanding > 0; }

    bool
    deviceBusy() override
    {
        return deviceBusyScripted ? deviceBusyFlag
                                  : guestOutstanding > 0;
    }

    void takeDevice() override { ++takes; }
    void restoreDevice() override { ++restores; }

    void
    issueVmmCommand(bool is_write, sim::Lba lba,
                    std::uint32_t count) override
    {
        EXPECT_FALSE(vmmInFlight)
            << "overlapping VMM commands on the port";
        vmmInFlight = true;
        vmmReady = false;
        lastVmmWrite = is_write;
        lastVmmLba = lba;
        lastVmmCount = count;
        ++vmmIssued;
    }

    bool
    vmmCommandDone() override
    {
        if (!vmmInFlight || !vmmReady)
            return false;
        vmmInFlight = false;
        // Device DMA: a read lands local-disk tokens in the bounce
        // buffer before completion is observable.
        if (!lastVmmWrite)
            hw::fillTokenBuffer(mem, kBounce, lastVmmLba,
                                lastVmmCount, kDeviceBase);
        return true;
    }

    void releaseAfterVmmOp() override { ++releases; }

    RestartMode
    issueDummyRestart(std::uint32_t key) override
    {
        restartedKeys.push_back(key);
        if (mode == RestartMode::Polled) {
            restartInFlight = true;
            restartReady = false;
        }
        return mode;
    }

    bool
    restartDone() override
    {
        if (!restartInFlight || !restartReady)
            return false;
        restartInFlight = false;
        return true;
    }

    void
    onRestartRetired(std::uint32_t key) override
    {
        retiredKeys.push_back(key);
    }

    void
    replayGuestWrite(sim::Addr addr, std::uint64_t value) override
    {
        replayed.emplace_back(addr, value);
        if (replayFn)
            replayFn(addr, value);
    }

    hw::PhysMem &mem;

    // Scripted device state.
    int guestOutstanding = 0;
    bool deviceBusyScripted = false; //!< use the flag, not the count
    bool deviceBusyFlag = false;
    RestartMode mode = RestartMode::Polled;
    bool vmmInFlight = false, vmmReady = false;
    bool restartInFlight = false, restartReady = false;
    bool lastVmmWrite = false;
    sim::Lba lastVmmLba = 0;
    std::uint32_t lastVmmCount = 0;

    // Recorded interactions.
    int takes = 0, restores = 0, releases = 0, vmmIssued = 0;
    std::vector<std::uint32_t> restartedKeys, retiredKeys;
    std::vector<std::pair<sim::Addr, std::uint64_t>> replayed;
    std::function<void(sim::Addr, std::uint64_t)> replayFn;
};

struct PendingFetch
{
    sim::Lba lba;
    std::uint32_t count;
    std::function<void(const std::vector<std::uint64_t> &)> done;
};

struct CoreRig
{
    CoreRig()
    {
        bmcast::MediatorServices svc;
        svc.bitmap = &bitmap;
        svc.reservedBase = kReservedBase;
        svc.reservedEnd = kDiskSectors;
        svc.dummyLba = kReservedBase;
        svc.fetchRemote = [this](sim::Lba lba, std::uint32_t n,
                                 std::function<void(
                                     const std::vector<std::uint64_t>
                                         &)> cb) {
            fetches.push_back({lba, n, std::move(cb)});
        };
        svc.stashFetched = [this](sim::Lba, std::uint32_t n,
                                  const std::vector<std::uint64_t> &) {
            stashedSectors += n;
        };
        core = std::make_unique<MediationCore>(
            "core", mem, port, svc, kBounce, kBounceSectors);
    }

    /** Deliver the oldest outstanding remote fetch. */
    void
    completeFetch()
    {
        ASSERT_FALSE(fetches.empty());
        PendingFetch f = std::move(fetches.front());
        fetches.pop_front();
        std::vector<std::uint64_t> tokens(f.count);
        for (std::uint32_t i = 0; i < f.count; ++i)
            tokens[i] = hw::sectorToken(kRemoteBase, f.lba + i);
        f.done(tokens);
    }

    static std::vector<hw::SgEntry>
    sgAt(sim::Addr addr, std::uint32_t count)
    {
        return {{addr, count * sim::kSectorSize}};
    }

    hw::PhysMem mem{256 * sim::kMiB};
    bmcast::BlockBitmap bitmap{kDiskSectors};
    ScriptedPort port{mem};
    std::deque<PendingFetch> fetches;
    std::uint64_t stashedSectors = 0;
    std::unique_ptr<MediationCore> core;
};

TEST(MediationCore, FilledReadPassesThroughEmptyReadIsWithheld)
{
    CoreRig r;
    r.bitmap.markFilled(0, 64);
    EXPECT_TRUE(r.core->onGuestRead(
        1, 0, 64, [] { return CoreRig::sgAt(0x4000, 64); }));
    EXPECT_EQ(r.core->stats().passthroughReads, 1u);
    EXPECT_FALSE(r.core->hasPendingRedirects());

    EXPECT_FALSE(r.core->onGuestRead(
        2, 100, 8, [] { return CoreRig::sgAt(0x4000, 8); }));
    EXPECT_TRUE(r.core->hasPendingRedirects());
    EXPECT_EQ(r.core->stats().redirectedReads, 1u);
    // Withheld, not yet begun: still Passthrough.
    EXPECT_EQ(r.core->state(), MediationCore::State::Passthrough);
}

TEST(MediationCore, RedirectFetchesFillsGuestBufferAndRestarts)
{
    CoreRig r;
    const sim::Addr buf = 0x8000;
    ASSERT_FALSE(r.core->onGuestRead(
        7, 100, 8, [&] { return CoreRig::sgAt(buf, 8); }));
    r.core->beginRedirects();

    EXPECT_EQ(r.core->state(), MediationCore::State::Redirecting);
    EXPECT_EQ(r.port.takes, 1);
    ASSERT_EQ(r.fetches.size(), 1u);
    EXPECT_EQ(r.fetches.front().lba, 100u);
    EXPECT_EQ(r.fetches.front().count, 8u);

    r.completeFetch();
    // Data phase: tokens placed where the guest's scatter list
    // points, then the dummy restart (Polled on this port).
    for (std::uint32_t i = 0; i < 8; ++i)
        EXPECT_EQ(r.mem.read64(buf + i * sim::kSectorSize),
                  hw::sectorToken(kRemoteBase, 100 + i));
    ASSERT_EQ(r.port.restartedKeys, std::vector<std::uint32_t>{7});
    EXPECT_EQ(r.core->state(), MediationCore::State::Restarting);
    EXPECT_TRUE(r.port.retiredKeys.empty());

    r.port.restartReady = true;
    r.core->poll();
    EXPECT_EQ(r.port.retiredKeys, std::vector<std::uint32_t>{7});
    EXPECT_EQ(r.port.restores, 1);
    EXPECT_EQ(r.core->state(), MediationCore::State::Passthrough);
    EXPECT_TRUE(r.core->quiescent());

    EXPECT_EQ(r.core->stats().redirectedReads, 1u);
    EXPECT_EQ(r.core->stats().redirectedSectors, 8u);
    EXPECT_EQ(r.core->stats().dummyRestarts, 1u);
    EXPECT_EQ(r.core->stats().mixedRedirects, 0u);
    EXPECT_EQ(r.stashedSectors, 8u);
}

TEST(MediationCore, FireAndForgetRestartRetiresInline)
{
    CoreRig r;
    r.port.mode = RestartMode::FireAndForget;
    ASSERT_FALSE(r.core->onGuestRead(
        3, 500, 4, [] { return CoreRig::sgAt(0x8000, 4); }));
    r.core->beginRedirects();
    r.completeFetch();
    // No Restarting phase: the retire happens inside the restart.
    EXPECT_EQ(r.port.retiredKeys, std::vector<std::uint32_t>{3});
    EXPECT_EQ(r.core->state(), MediationCore::State::Passthrough);
    EXPECT_TRUE(r.core->quiescent());
}

TEST(MediationCore, MixedRedirectReadsFilledSegmentFromLocalDisk)
{
    CoreRig r;
    const sim::Addr buf = 0xC000;
    // [104, 108) is FILLED (guest overwrote it): the server's copy
    // is stale, so those sectors must come from the local device.
    r.bitmap.markFilled(104, 4);
    ASSERT_FALSE(r.core->onGuestRead(
        9, 100, 12, [&] { return CoreRig::sgAt(buf, 12); }));
    r.core->beginRedirects();

    // Two remote fetches around the filled hole, one internal VMM
    // read for the hole itself.
    ASSERT_EQ(r.fetches.size(), 2u);
    EXPECT_TRUE(r.port.vmmInFlight);
    EXPECT_FALSE(r.port.lastVmmWrite);
    EXPECT_EQ(r.port.lastVmmLba, 104u);
    EXPECT_EQ(r.port.lastVmmCount, 4u);
    EXPECT_EQ(r.core->stats().mixedRedirects, 1u);

    r.port.vmmReady = true;
    r.core->poll(); // internal read completes; still Redirecting
    EXPECT_EQ(r.core->state(), MediationCore::State::Redirecting);
    // Internal segment reads are not multiplexed VMM ops.
    EXPECT_EQ(r.core->stats().vmmOps, 0u);
    EXPECT_EQ(r.port.releases, 0);

    r.completeFetch();
    r.completeFetch();
    // Data phase: remote tokens outside the hole, device tokens in it.
    for (std::uint32_t i = 0; i < 12; ++i) {
        std::uint64_t base =
            (i >= 4 && i < 8) ? kDeviceBase : kRemoteBase;
        EXPECT_EQ(r.mem.read64(buf + i * sim::kSectorSize),
                  hw::sectorToken(base, 100 + i))
            << "sector " << i;
    }
    EXPECT_EQ(r.core->stats().redirectedSectors, 8u);

    r.port.restartReady = true;
    r.core->poll();
    EXPECT_TRUE(r.core->quiescent());
}

TEST(MediationCore, BeginRedirectsDrainsBusyDeviceFirst)
{
    CoreRig r;
    r.port.deviceBusyScripted = true;
    r.port.deviceBusyFlag = true;
    ASSERT_FALSE(r.core->onGuestRead(
        1, 200, 4, [] { return CoreRig::sgAt(0x8000, 4); }));
    r.core->beginRedirects();
    EXPECT_EQ(r.core->state(), MediationCore::State::Draining);
    EXPECT_EQ(r.port.takes, 0);

    r.core->poll(); // still busy
    EXPECT_EQ(r.core->state(), MediationCore::State::Draining);

    r.port.deviceBusyFlag = false;
    r.core->poll();
    EXPECT_EQ(r.core->state(), MediationCore::State::Redirecting);
    EXPECT_EQ(r.port.takes, 1);
}

TEST(MediationCore, VmmWriteQueuesGuestWritesAndReplaysInOrder)
{
    CoreRig r;
    bool done = false;
    constexpr std::uint64_t kContent = 0xBEEF000000000000ULL;
    ASSERT_TRUE(r.core->vmmWrite(64, 16, kContent,
                                 [&] { done = true; }));
    EXPECT_EQ(r.core->state(), MediationCore::State::VmmActive);
    EXPECT_TRUE(r.port.vmmInFlight);
    EXPECT_TRUE(r.port.lastVmmWrite);
    // The core staged the content in the bounce buffer before the
    // port programmed the device.
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(hw::bufferTokenAt(r.mem, kBounce, i),
                  hw::sectorToken(kContent, 64 + i));

    // Guest register writes land while the VMM op owns the device.
    r.core->queueGuestWrite(0x10, 0x111);
    r.core->queueGuestWrite(0x14, 0x222);
    EXPECT_EQ(r.core->queuedGuestWrites().size(), 2u);
    EXPECT_FALSE(done);

    r.port.vmmReady = true;
    r.core->poll();
    EXPECT_TRUE(done);
    EXPECT_EQ(r.port.releases, 1);
    EXPECT_EQ(r.core->state(), MediationCore::State::Passthrough);
    ASSERT_EQ(r.port.replayed.size(), 2u);
    EXPECT_EQ(r.port.replayed[0],
              (std::pair<sim::Addr, std::uint64_t>{0x10, 0x111}));
    EXPECT_EQ(r.port.replayed[1],
              (std::pair<sim::Addr, std::uint64_t>{0x14, 0x222}));
    EXPECT_TRUE(r.core->queuedGuestWrites().empty());
    EXPECT_EQ(r.core->stats().vmmOps, 1u);
    EXPECT_EQ(r.core->stats().queuedGuestWrites, 2u);
}

TEST(MediationCore, VmmOpDefersUntilGuestQuiesces)
{
    CoreRig r;
    r.port.guestOutstanding = 1;
    int completed = 0;
    ASSERT_TRUE(r.core->vmmWrite(0, 8, 0x1, [&] { ++completed; }));
    EXPECT_TRUE(r.core->vmmOpActive());
    EXPECT_EQ(r.port.vmmIssued, 0); // deferred, not programmed

    // The pending queue is one deep.
    EXPECT_FALSE(r.core->vmmRead(
        0, 1, [](const std::vector<std::uint64_t> &) {}));

    r.core->poll();
    EXPECT_EQ(r.port.vmmIssued, 0);

    // Interpretation observes the guest acknowledging its last
    // completion: the injection window opens.
    r.port.guestOutstanding = 0;
    r.core->maybeStartPending();
    EXPECT_EQ(r.port.vmmIssued, 1);
    r.port.vmmReady = true;
    r.core->poll();
    EXPECT_EQ(completed, 1);
    EXPECT_TRUE(r.core->quiescent());
}

TEST(MediationCore, ReservedRegionAccessConvertsToDummy)
{
    CoreRig r;
    // A write into the bitmap home is dropped outright.
    EXPECT_FALSE(r.core->onGuestWrite(1, kReservedBase + 2, 4));
    r.core->beginRedirects();
    EXPECT_TRUE(r.fetches.empty()); // nothing fetched
    ASSERT_EQ(r.port.restartedKeys, std::vector<std::uint32_t>{1});
    r.port.restartReady = true;
    r.core->poll();
    EXPECT_TRUE(r.core->quiescent());

    // A read of the region returns zeros, never device content.
    const sim::Addr buf = 0x9000;
    r.mem.write64(buf, 0xFFFF); // stale guest buffer content
    EXPECT_FALSE(r.core->onGuestRead(
        2, kReservedBase, 2, [&] { return CoreRig::sgAt(buf, 2); }));
    r.core->beginRedirects();
    EXPECT_TRUE(r.fetches.empty());
    EXPECT_EQ(r.mem.read64(buf), 0u);
    r.port.restartReady = true;
    r.core->poll();

    EXPECT_EQ(r.core->stats().reservedConversions, 2u);
    EXPECT_EQ(r.core->stats().dummyRestarts, 2u);
    EXPECT_EQ(r.core->stats().redirectedSectors, 0u);

    // Ordinary guest writes mark the bitmap at issue time.
    EXPECT_TRUE(r.core->onGuestWrite(3, 300, 8));
    EXPECT_TRUE(r.bitmap.isFilled(300, 8));
}

TEST(MediationCore, QuiesceHookFiresOnlyWhenFullyQuiescent)
{
    CoreRig r;
    int fires = 0;
    bool armed = true; // DeviceMediator::notifyQuiescent is one-shot
    r.core->setQuiesceHook([&] {
        if (armed) {
            armed = false;
            ++fires;
        }
    });

    // Busy guest: no fire.
    r.port.guestOutstanding = 1;
    r.core->poll();
    EXPECT_EQ(fires, 0);

    // Pending redirect: no fire even with an idle guest.
    r.port.guestOutstanding = 0;
    ASSERT_FALSE(r.core->onGuestRead(
        1, 400, 2, [] { return CoreRig::sgAt(0x8000, 2); }));
    r.core->poll();
    EXPECT_EQ(fires, 0);

    r.core->beginRedirects();
    r.completeFetch();
    r.port.restartReady = true;
    r.core->poll(); // retires the redirect AND observes quiescence
    r.core->poll();
    r.core->poll();
    EXPECT_EQ(fires, 1);
    EXPECT_TRUE(r.core->quiescent());
}

TEST(MediationCore, ResetDropsAllStateAndStaleFetchesAreIgnored)
{
    CoreRig r;
    ASSERT_FALSE(r.core->onGuestRead(
        5, 700, 4, [] { return CoreRig::sgAt(0x8000, 4); }));
    r.core->beginRedirects();
    r.core->queueGuestWrite(0x20, 0x5);
    ASSERT_EQ(r.fetches.size(), 1u);
    ASSERT_EQ(r.core->state(), MediationCore::State::Redirecting);

    r.core->reset();
    EXPECT_EQ(r.core->state(), MediationCore::State::Passthrough);
    EXPECT_FALSE(r.core->hasPendingRedirects());
    EXPECT_TRUE(r.core->queuedGuestWrites().empty());
    EXPECT_FALSE(r.core->vmmOpActive());

    // The fetch from before the power-off completes late: the core
    // must drop it on the floor.
    r.completeFetch();
    EXPECT_FALSE(r.core->hasPendingRedirects());
    EXPECT_TRUE(r.port.retiredKeys.empty());
    EXPECT_TRUE(r.core->quiescent());
}

/**
 * Property test: random interleavings of guest reads, guest-command
 * completions, VMM ops, remote-fetch completions, device ticks and
 * power-offs. After every step the core's externally observable
 * invariants must hold; after a bounded drain the core must reach
 * full quiescence with conserved stats.
 */
TEST(MediationCoreProperty, RandomInterleavingsKeepInvariants)
{
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        CoreRig r;
        sim::Rng rng(sim::Rng::seedFrom("mediation-fuzz", seed));
        std::uint32_t nextKey = 1;
        std::uint64_t vmmAccepted = 0, vmmCompleted = 0,
                      vmmDropped = 0;
        // Redirects counted but dropped by a power-off before their
        // dummy restart was issued.
        std::uint64_t redirectsDropped = 0;

        auto issueRead = [&](sim::Lba lba, std::uint32_t count) {
            std::uint32_t key = nextKey++;
            sim::Addr buf = 0x400000 + (key % 64) * 0x10000;
            bool fwd = r.core->onGuestRead(key, lba, count, [&] {
                return CoreRig::sgAt(buf, count);
            });
            if (fwd)
                ++r.port.guestOutstanding;
            else
                r.core->beginRedirects();
        };

        // Queued register writes replay through the front-end's own
        // intercept path; model that as a re-entrant guest read.
        r.port.replayFn = [&](sim::Addr, std::uint64_t value) {
            issueRead(value >> 8, value & 0xFF);
        };

        auto step = [&] {
            unsigned action = rng.uniformInt(0, 9);
            sim::Lba lba = rng.uniformInt(0, 4095) * 8;
            auto count =
                static_cast<std::uint32_t>(rng.uniformInt(1, 16));
            switch (action) {
              case 0:
              case 1: // guest read (occasionally in the reserved region)
                if (rng.chance(0.05))
                    lba = kReservedBase + 1;
                if (r.core->state() ==
                    MediationCore::State::Passthrough)
                    issueRead(lba, count);
                else
                    r.core->queueGuestWrite(
                        0x1000, (lba << 8) | count);
                break;
              case 2: // guest write
                if (r.core->state() ==
                    MediationCore::State::Passthrough)
                    r.core->onGuestWrite(nextKey++, lba, count);
                break;
              case 3: // guest command completes; guest acks
                if (r.port.guestOutstanding > 0) {
                    --r.port.guestOutstanding;
                    r.core->maybeStartPending();
                }
                break;
              case 4: // a remote fetch arrives
                if (!r.fetches.empty())
                    r.completeFetch();
                break;
              case 5: // device tick: in-flight commands finish
                if (r.port.vmmInFlight)
                    r.port.vmmReady = true;
                if (r.port.restartInFlight)
                    r.port.restartReady = true;
                break;
              case 6: // background copy injects a write
                if (r.core->vmmWrite(lba, count, 0xC0DE, [&] {
                        ++vmmCompleted;
                    }))
                    ++vmmAccepted;
                break;
              case 7: // bitmap verification read
                if (r.core->vmmRead(
                        lba, count,
                        [&](const std::vector<std::uint64_t> &) {
                            ++vmmCompleted;
                        }))
                    ++vmmAccepted;
                break;
              case 8: // power failure
                if (rng.chance(0.05)) {
                    vmmDropped +=
                        vmmAccepted - vmmCompleted - vmmDropped;
                    redirectsDropped =
                        r.core->stats().redirectedReads -
                        r.core->stats().dummyRestarts;
                    r.core->reset();
                    // The machine went down with it: the AoE session,
                    // in-flight device commands and guest state die.
                    r.fetches.clear();
                    r.port.guestOutstanding = 0;
                    r.port.vmmInFlight = r.port.vmmReady = false;
                    r.port.restartInFlight = r.port.restartReady =
                        false;
                }
                break;
              default:
                r.core->poll();
                break;
            }
        };

        for (int i = 0; i < 400; ++i) {
            step();

            // Invariants, every step.
            const bmcast::MediatorStats &s = r.core->stats();
            ASSERT_LE(s.dummyRestarts, s.redirectedReads);
            ASSERT_LE(s.mixedRedirects, s.redirectedReads);
            ASSERT_EQ(s.dummyRestarts, r.port.restartedKeys.size());
            ASSERT_LE(r.port.retiredKeys.size(),
                      r.port.restartedKeys.size());
            ASSERT_GE(r.port.takes, r.port.restores);
            if (r.core->quiescent()) {
                ASSERT_EQ(r.core->state(),
                          MediationCore::State::Passthrough);
                ASSERT_FALSE(r.core->vmmOpActive());
                ASSERT_FALSE(r.core->hasPendingRedirects());
                ASSERT_TRUE(r.core->queuedGuestWrites().empty());
                ASSERT_EQ(r.port.guestOutstanding, 0);
            }
        }

        // Drain: only completions and polls from here on.
        for (int i = 0; i < 10000 && !r.core->quiescent(); ++i) {
            if (!r.fetches.empty())
                r.completeFetch();
            if (r.port.vmmInFlight)
                r.port.vmmReady = true;
            if (r.port.restartInFlight)
                r.port.restartReady = true;
            if (r.port.guestOutstanding > 0) {
                --r.port.guestOutstanding;
                r.core->maybeStartPending();
            }
            r.core->poll();
        }

        ASSERT_TRUE(r.core->quiescent()) << "seed " << seed;
        EXPECT_TRUE(r.fetches.empty()) << "seed " << seed;
        // Every accepted VMM op either completed or died in a reset.
        EXPECT_EQ(vmmCompleted + vmmDropped, vmmAccepted)
            << "seed " << seed;
        EXPECT_EQ(r.core->stats().dummyRestarts + redirectsDropped,
                  r.core->stats().redirectedReads)
            << "seed " << seed;
    }
}

} // namespace
