/**
 * @file
 * Yahoo! Cloud Serving Benchmark client and the NoSQL database
 * service models it drives (paper §5.2).
 *
 * The DB is a multi-worker queueing station whose per-op service
 * time scales with the machine's live virtualization profile —
 * throughput/latency therefore shift automatically as BMcast moves
 * from the deployment phase to bare metal (the Fig. 5 step).
 *
 * memcached (read-heavy, in-memory): latency-bound at the paper's
 * load. Cassandra (write-heavy): CPU-saturated, plus commit-log
 * batches flushed through the real block driver — the source of
 * genuine disk interference with the background copy.
 */

#ifndef WORKLOADS_YCSB_HH
#define WORKLOADS_YCSB_HH

#include <deque>
#include <functional>
#include <memory>

#include "guest/block_driver.hh"
#include "hw/machine.hh"
#include "simcore/random.hh"
#include "simcore/sim_object.hh"
#include "simcore/stats.hh"
#include "workloads/cpu_model.hh"

namespace workloads {

/** Database service-model parameters. */
struct DbParams
{
    /** Service worker threads. */
    unsigned workers = 12;
    /** Mean per-op CPU service time at bare metal. */
    sim::Tick svcBase = 200 * sim::kUs;
    /** Client<->server network round trip. */
    sim::Tick netRtt = 120 * sim::kUs;
    CpuSensitivity sens;

    /** @name Disk behaviour (Cassandra-style commit log). */
    /// @{
    bool writesToDisk = false;
    /** Ops per commit-log flush batch. */
    unsigned opsPerFlush = 400;
    /** Bytes per flush. */
    sim::Bytes flushBytes = 512 * sim::kKiB;
    /** Start LBA of the log region. */
    sim::Lba logStart = 0;
    /** Log region length in sectors (wraps). */
    sim::Lba logSpan = (1 * sim::kGiB) / sim::kSectorSize;
    /// @}
};

/** Canonical memcached configuration (calibrated; EXPERIMENTS.md). */
DbParams memcachedParams();
/** Canonical Cassandra configuration. */
DbParams cassandraParams(sim::Lba logStart);

/** The database instance under test. */
class DbInstance : public sim::SimObject
{
  public:
    DbInstance(sim::EventQueue &eq, std::string name,
               hw::Machine &machine, guest::BlockDriver *blk,
               DbParams params);

    /** Serve one request; @p done runs when the reply reaches the
     *  client. */
    void request(bool isRead, std::function<void()> done);

    std::uint64_t opsServed() const { return numOps; }
    const DbParams &params() const { return params_; }

  private:
    struct Job
    {
        bool isRead;
        std::function<void()> done;
    };

    void dispatch();
    void serve(unsigned worker, Job job);
    void maybeFlush();

    hw::Machine &machine_;
    guest::BlockDriver *blk;
    DbParams params_;
    sim::Rng rng;

    std::vector<sim::Tick> workerFreeAt;
    std::deque<Job> queue;
    unsigned writesSinceFlush = 0;
    sim::Lba logCursor = 0;
    bool flushInFlight = false;

    std::uint64_t numOps = 0;
};

/** YCSB client parameters. */
struct YcsbParams
{
    unsigned threads = 10;
    double readFraction = 0.95;
    sim::Tick duration = 60 * sim::kSec;
    /** Time-series bucket for the Fig. 5 curves. */
    sim::Tick bucket = 10 * sim::kSec;
    std::uint64_t seed = 11;
};

/** Closed-loop client. */
class YcsbClient : public sim::SimObject
{
  public:
    YcsbClient(sim::EventQueue &eq, std::string name, DbInstance &db,
               YcsbParams params);

    /** Run for the configured duration. */
    void run(std::function<void()> done);

    /** Ops completed per bucket (throughput curve). */
    const sim::TimeSeries &throughput() const { return tput; }
    /** Mean latency per bucket (µs). */
    const sim::TimeSeries &latency() const { return lat; }
    std::uint64_t opsCompleted() const { return numOps; }
    double meanLatencyUs() const;
    double meanThroughputOpsPerSec() const;

  private:
    void threadLoop(unsigned id);

    DbInstance &db;
    YcsbParams params;
    sim::Rng rng;
    sim::TimeSeries tput;
    sim::TimeSeries lat;
    sim::Tick startedAt = 0;
    sim::Tick endAt = 0;
    unsigned liveThreads = 0;
    std::uint64_t numOps = 0;
    sim::Tick latSum = 0;
    std::function<void()> doneCb;
};

} // namespace workloads

#endif // WORKLOADS_YCSB_HH
