/**
 * @file
 * The AoE storage server ("vblade" with the paper's thread-pool
 * extension, §4.2).
 *
 * The original vblade is single-threaded and bottlenecks when the VMM
 * issues a large volume of read requests; the paper adds a thread
 * pool. Both configurations are modelled: `workers = 1` reproduces
 * the original, larger values the extension. Workers share the
 * server's backing store bandwidth.
 */

#ifndef AOE_SERVER_HH
#define AOE_SERVER_HH

#include <deque>
#include <map>
#include <vector>

#include "aoe/protocol.hh"
#include "hw/disk_store.hh"
#include "net/network.hh"
#include "obs/obs.hh"
#include "simcore/fault_injector.hh"
#include "simcore/random.hh"
#include "simcore/sim_object.hh"

namespace aoe {

/** Server service-model parameters. */
struct ServerParams
{
    /** Worker threads (1 = original vblade). */
    unsigned workers = 4;
    /** CPU per request: parse, lookup, syscall setup. */
    sim::Tick cpuPerRequest = 30 * sim::kUs;
    /** CPU per response/ack frame prepared. */
    sim::Tick cpuPerFragment = 6 * sim::kUs;
    /** Backing-store streaming rates (shared by all workers). */
    double diskReadMBps = 400.0;
    double diskWriteMBps = 300.0;
    /** Per-operation backing-store latency. */
    sim::Tick diskLatency = 200 * sim::kUs;
    /** Seek + rotation when an access does not continue the
     *  previous one (the image lives on a mechanical drive). */
    sim::Tick diskSeek = 12 * sim::kMs;
    /**
     * Probability that a read is served from the server's page
     * cache. Zero for the raw block-device vblade of the prototype;
     * file-level servers (the NFS baselines) benefit from host
     * caching.
     */
    double cacheHitRate = 0.0;
    /**
     * Fraction of the media-write time the client still waits for
     * before the ack (file servers ack from the page cache but
     * commit pressure leaks into the client-visible latency).
     */
    double writeAckMediaFraction = 0.3;
};

/** One exported target (a disk image). */
struct AoeTarget
{
    std::uint16_t major = 0;
    std::uint8_t minor = 0;
    sim::Lba capacity = 0;
    hw::DiskStore store;
};

/** The server, attached directly to a switch port. */
class AoeServer : public sim::SimObject
{
  public:
    AoeServer(sim::EventQueue &eq, std::string name, net::Port &port,
              ServerParams params = ServerParams{});

    /**
     * Export a target whose every sector initially holds content
     * derived from @p imageBase (the "golden image").
     */
    AoeTarget &addTarget(std::uint16_t major, std::uint8_t minor,
                         sim::Lba capacity, std::uint64_t imageBase);

    AoeTarget *findTarget(std::uint16_t major, std::uint8_t minor);

    /** Drop every exported target (node release: the machine's disk
     *  no longer backs any chunk exports). */
    void clearTargets() { targets.clear(); }

    /** @name Telemetry */
    /// @{
    std::uint64_t requestsServed() const { return numServed; }
    sim::Bytes dataBytesOut() const { return bytesOut; }
    std::size_t maxQueueDepth() const { return maxQueue; }
    /** Aggregate worker busy time (utilization across the pool). */
    sim::Tick workerBusyTime() const { return busyTime; }
    const ServerParams &params() const { return params_; }
    std::uint64_t crashes() const { return numCrashes; }
    std::uint64_t restarts() const { return numRestarts; }
    /** Frames that arrived while the server was offline. */
    std::uint64_t framesDroppedOffline() const { return offlineDrops; }
    /** Shard requests swallowed by an injected source timeout. */
    std::uint64_t shardTimeouts() const { return numShardTimeouts; }
    /** Shard fragments damaged by an injected corruption. */
    std::uint64_t shardCorruptions() const { return numShardCorruptions; }
    /// @}

    /** @name Failure model */
    /// @{
    bool online() const { return online_; }

    /**
     * Take the server down hard: the request queue, in-progress
     * responses, write reassembly state and not-yet-committed
     * write-back data are all lost.  Frames arriving while offline
     * are dropped (and counted).
     */
    void crash();

    /** Bring a crashed server back with cold worker/cache state. */
    void restart();

    /** Freeze request processing for @p d (GC pause, overload). */
    void stallFor(sim::Tick d);

    /**
     * Attach a fault injector (nullptr detaches).  Consulted per
     * arriving request frame for ServerCrash (with an optional
     * auto-restart after the plan magnitude) and ServerStall.
     */
    void setFaultInjector(sim::FaultInjector *fi) { faults = fi; }
    /// @}

  private:
    struct Job
    {
        Message request;
        net::MacAddr client;
    };

    /** Write-reassembly key. */
    using RxKey = std::pair<net::MacAddr, std::uint32_t>;

    struct WriteAssembly
    {
        std::vector<std::uint64_t> tokens;
        std::vector<bool> got;
        std::uint32_t numGot = 0;
        sim::Lba lba = 0;
    };

    void onFrame(const net::Frame &frame);
    void enqueue(Job job);
    void dispatch();
    void serve(unsigned worker, Job job);
    sim::Tick diskOccupy(sim::Lba lba, std::uint32_t sectors,
                         bool isWrite, sim::Tick earliest,
                         bool *cacheHit = nullptr,
                         bool shardStream = false);

    net::Port &port;
    ServerParams params_;
    sim::Rng rng;
    sim::FaultInjector *faults = nullptr;
    std::map<std::pair<std::uint16_t, std::uint8_t>, AoeTarget> targets;

    std::deque<Job> queue;
    std::vector<sim::Tick> workerFreeAt;
    sim::Tick diskFreeAt = 0;
    sim::Lba diskHead = 0;
    std::map<RxKey, WriteAssembly> assemblies;

    /**
     * Liveness epoch: bumped on every crash.  Response and write-back
     * commit events capture the epoch they were scheduled under and
     * become no-ops if the server crashed in between — a crash loses
     * everything in flight.
     */
    std::uint64_t epoch_ = 0;
    bool online_ = true;
    sim::Tick stallUntil_ = 0;

    std::uint64_t numServed = 0;
    sim::Bytes bytesOut = 0;
    std::size_t maxQueue = 0;
    sim::Tick busyTime = 0;
    std::uint64_t numCrashes = 0;
    std::uint64_t numRestarts = 0;
    std::uint64_t offlineDrops = 0;
    std::uint64_t numShardTimeouts = 0;
    std::uint64_t numShardCorruptions = 0;

    obs::Track obsTrack_;
};

} // namespace aoe

#endif // AOE_SERVER_HH
