#include "simcore/shard_group.hh"

#include <algorithm>
#include <exception>
#include <thread>

#include "obs/obs.hh"
#include "simcore/logging.hh"

namespace sim {

ShardGroup::ShardGroup(Params p)
    : racks_(p.racks),
      shards_(std::min(std::max(p.shards, 1u),
                       std::max(p.racks, 1u))),
      window_(p.window)
{
    fatalIf(racks_ == 0, "ShardGroup needs at least one rack");
    fatalIf(window_ == 0, "ShardGroup window must be positive");

    queues_.reserve(racks_);
    for (unsigned r = 0; r < racks_; ++r)
        queues_.push_back(std::make_unique<EventQueue>());

    channels_.reserve(std::size_t(racks_) * racks_);
    for (std::size_t i = 0; i < std::size_t(racks_) * racks_; ++i)
        channels_.push_back(
            std::make_unique<Channel>(p.mailboxCapacity));

    states_.reserve(shards_);
    for (unsigned s = 0; s < shards_; ++s)
        states_.push_back(std::make_unique<ShardState>());

    shardRacks_.resize(shards_);
    for (unsigned r = 0; r < racks_; ++r)
        shardRacks_[shardOf(r)].push_back(r);
}

ShardGroup::~ShardGroup() = default;

void
ShardGroup::postToRack(unsigned srcRack, unsigned dstRack, Tick when,
                       InlineCallback cb)
{
    fatalIf(srcRack >= racks_ || dstRack >= racks_,
            "postToRack: rack out of range");
    const Tick sendTick = queues_[srcRack]->now();
    fatalIf(when < sendTick + window_,
            "postToRack violates the lookahead window: send tick ",
            sendTick, " + window ", window_, " > delivery tick ",
            when);

    Channel &ch = channel(srcRack, dstRack);
    Msg m;
    m.sendTick = sendTick;
    m.when = when;
    m.srcRack = srcRack;
    m.seq = ch.nextSeq++;
    m.cb = std::move(cb);
    ch.ring.push(std::move(m));
}

void
ShardGroup::awaitHorizons(unsigned self, Tick t)
{
    ShardState &st = *states_[self];
    for (unsigned s = 0; s < shards_; ++s) {
        if (s == self)
            continue;
        while (states_[s]->horizon.load(std::memory_order_acquire) <
               t) {
            if (aborted_.load(std::memory_order_relaxed))
                return;
            ++st.horizonWaits;
            std::this_thread::yield();
        }
    }
}

void
ShardGroup::drainInbound(unsigned rack, Tick t,
                         std::vector<Msg> &scratch, ShardState &st)
{
    scratch.clear();
    for (unsigned src = 0; src < racks_; ++src) {
        channel(src, rack).ring.drainIf(
            scratch,
            [t](const Msg &m) { return m.sendTick < t; });
    }
    if (scratch.empty())
        return;

    // Deterministic merge: the dispatch order of cross-rack traffic
    // is a pure function of (delivery tick, source rack, channel
    // seq), whatever the thread interleaving was. Scheduling in
    // sorted order makes the queue's same-tick FIFO match the key.
    std::sort(scratch.begin(), scratch.end(),
              [](const Msg &a, const Msg &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.srcRack != b.srcRack)
                      return a.srcRack < b.srcRack;
                  return a.seq < b.seq;
              });
    EventQueue &q = *queues_[rack];
    for (Msg &m : scratch) {
        fatalIf(m.when < t, "cross-rack message due at ", m.when,
                " surfaced only at barrier ", t,
                " (link latency below the lookahead window?)");
        q.scheduleAt(m.when, std::move(m.cb));
        ++st.messages;
    }
}

void
ShardGroup::shardMain(unsigned self, Tick base, Tick until)
{
    ShardState &st = *states_[self];

    // Per-shard tracing: arm this shard's tracer on this thread for
    // the duration of the run (obs arming is thread-local). Shard 0
    // runs on the caller's thread, so save and restore whatever
    // tracer the caller had armed.
    obs::Tracer *prev =
        obs::armed() ? &obs::tracer() : nullptr;
    if (st.tracer)
        obs::arm(st.tracer);

    std::vector<Msg> scratch;
    for (Tick t = base; t < until; t += window_) {
        if (aborted_.load(std::memory_order_relaxed))
            break;
        const Tick end = t + window_; // executes ticks [t, end)
        awaitHorizons(self, t);
        for (unsigned r : shardRacks_[self])
            drainInbound(r, t, scratch, st);
        for (unsigned r : shardRacks_[self]) {
            if (st.tracer) {
                obs::setClock(
                    [](const void *ctx) {
                        return static_cast<const EventQueue *>(ctx)
                            ->now();
                    },
                    queues_[r].get());
            }
            queues_[r]->runUntil(end - 1);
            ++st.windows;
        }
        st.horizon.store(end, std::memory_order_release);
    }

    if (st.tracer)
        obs::arm(prev);
}

void
ShardGroup::run(Tick until)
{
    fatalIf(until % window_ != 0,
            "ShardGroup::run horizon ", until,
            " must be a multiple of the lookahead window ", window_,
            " (drain points must land on the window grid)");
    fatalIf(until < committed_, "ShardGroup::run horizon ", until,
            " is before committed time ", committed_);
    if (until == committed_)
        return;

    const Tick base = committed_;
    aborted_.store(false, std::memory_order_relaxed);

    if (shards_ == 1) {
        // Inline on the calling thread: with one shard (and a
        // fortiori one rack) this is the serial kernel, no threads,
        // no atomics on the hot path beyond the horizon store.
        shardMain(0, base, until);
    } else {
        std::vector<std::exception_ptr> errs(shards_);
        std::vector<std::thread> workers;
        workers.reserve(shards_ - 1);
        for (unsigned s = 1; s < shards_; ++s) {
            workers.emplace_back([this, s, base, until, &errs]() {
                try {
                    shardMain(s, base, until);
                } catch (...) {
                    errs[s] = std::current_exception();
                    aborted_.store(true,
                                   std::memory_order_relaxed);
                    // Unblock peers waiting on this horizon.
                    states_[s]->horizon.store(
                        until, std::memory_order_release);
                }
            });
        }
        try {
            shardMain(0, base, until);
        } catch (...) {
            errs[0] = std::current_exception();
            aborted_.store(true, std::memory_order_relaxed);
            states_[0]->horizon.store(until,
                                      std::memory_order_release);
        }
        for (auto &w : workers)
            w.join();
        for (auto &e : errs) {
            if (e)
                std::rethrow_exception(e);
        }
    }

    committed_ = until;

    counters_.windows = 0;
    counters_.messages = 0;
    counters_.horizonWaits = 0;
    for (const auto &st : states_) {
        counters_.windows += st->windows;
        counters_.messages += st->messages;
        counters_.horizonWaits += st->horizonWaits;
    }
    counters_.mailboxSpills = 0;
    for (const auto &ch : channels_)
        counters_.mailboxSpills += ch->ring.spillCount();
}

std::uint64_t
ShardGroup::totalExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q->executed();
    return n;
}

void
ShardGroup::setShardTracer(unsigned shard, obs::Tracer *t)
{
    fatalIf(shard >= shards_, "setShardTracer: shard out of range");
    states_[shard]->tracer = t;
}

} // namespace sim
