/**
 * @file
 * NVMe controller model (two queue pairs, one namespace).
 *
 * The controller fetches submission-queue entries from physical
 * memory, DMAs through the PRP1 buffer and posts completion-queue
 * entries with phase tags exactly as real hardware does — which is
 * what allows the BMcast NVMe mediator to interpret, withhold,
 * rewrite and inject commands purely through the architected
 * interface: doorbell writes and queue memory. See hw/nvme_regs.hh
 * for the documented simplifications.
 */

#ifndef HW_NVME_CONTROLLER_HH
#define HW_NVME_CONTROLLER_HH

#include <array>
#include <cstdint>

#include "hw/disk.hh"
#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/nvme_regs.hh"
#include "hw/phys_mem.hh"
#include "simcore/sim_object.hh"

namespace hw {

/** Decoded view of one submission-queue entry (exposed for tests). */
struct NvmeCommand
{
    unsigned qp = 0;
    std::uint16_t cid = 0;
    bool isWrite = false;
    sim::Lba lba = 0;
    std::uint32_t sectors = 0;
    sim::Addr prp1 = 0;
    std::uint16_t status = 0; //!< CQE status code, 0 = success
};

/** The controller with one attached drive. */
class NvmeController : public sim::SimObject
{
  public:
    NvmeController(sim::EventQueue &eq, std::string name, IoBus &bus,
                   PhysMem &mem, Disk &disk, IrqLine irqQ0,
                   IrqLine irqQ1);

    /** @name Register interface (invoked via the IoBus). */
    /// @{
    std::uint64_t mmioRead(sim::Addr offset, unsigned size);
    void mmioWrite(sim::Addr offset, std::uint64_t value, unsigned size);
    /// @}

    /** Commands submitted via a doorbell but not yet completed. */
    std::uint32_t outstanding(unsigned qp) const
    {
        return q[qp].outstanding;
    }
    /** True while a command is being executed on the media. */
    bool commandActive() const { return active; }

    std::uint64_t commandsCompleted() const { return numCompleted; }

    Disk &disk() { return disk_; }

  private:
    struct QueuePair
    {
        sim::Addr sqBase = 0;
        sim::Addr cqBase = 0;
        std::uint32_t depth = 0;
        std::uint32_t sqHead = 0; //!< next entry to fetch
        std::uint32_t sqTail = 0; //!< from the doorbell
        std::uint32_t cqTail = 0; //!< next completion slot
        std::uint8_t phase = 1;   //!< current phase tag
        std::uint32_t outstanding = 0;
    };

    NvmeCommand decodeEntry(unsigned qp, std::uint32_t index) const;
    void processNext();
    void finishCommand(const NvmeCommand &cmd);
    void postCompletion(const NvmeCommand &cmd);

    IoBus &bus;
    PhysMem &mem;
    Disk &disk_;
    std::array<IrqLine, nvme::kNumQueuePairs> irq;

    std::uint32_t cc = 0;
    std::uint32_t intMask = 0;
    std::array<QueuePair, nvme::kNumQueuePairs> q{};

    bool active = false;
    unsigned lastQp = nvme::kNumQueuePairs - 1;
    std::uint64_t numCompleted = 0;
};

} // namespace hw

#endif // HW_NVME_CONTROLLER_HH
