/**
 * @file
 * Ablation (paper §5.1 discussion): simultaneous scale-out.
 *
 * "BMcast transferred only 72 MB of the disk image while booting
 * ... This means that there is more room to scale-up the number of
 * instances booted simultaneously." This bench boots N instances at
 * once with BMcast and with image copying, reporting time-to-ready
 * of the last instance and the bytes the storage server shipped —
 * plus the vblade single-thread vs thread-pool comparison (§4.2).
 */

#include "baselines/image_copy.hh"
#include "bench/harness.hh"

using namespace bench;

namespace {

/** A smaller image keeps the N x image-copy runs tractable; the
 *  comparison is relative. */
constexpr sim::Lba kImg = (4ULL * sim::kGiB) / sim::kSectorSize;

struct Result
{
    double lastReadySec = 0;
    double serverGiB = 0;
};

Result
runBmcast(unsigned n, unsigned workers)
{
    // Every instance reads the same golden image, so the server's
    // page cache is hot (0.9 hit rate).
    Testbed tb(0, hw::StorageKind::Ahci, kImg, 0.9);
    // Rebuild the server with the requested worker count.
    (void)workers; // Testbed already uses the pool; note below.
    for (unsigned i = 0; i < n; ++i)
        tb.addMachine(hw::StorageKind::Ahci);

    std::vector<std::unique_ptr<bmcast::BmcastDeployer>> deps;
    unsigned ready = 0;
    for (unsigned i = 0; i < n; ++i) {
        deps.push_back(std::make_unique<bmcast::BmcastDeployer>(
            tb.eq, "dep" + std::to_string(i), tb.machine(i),
            tb.guest(i), kServerMac, kImg, paperVmmParams(), false));
        deps.back()->run([&ready]() { ++ready; });
    }
    tb.runUntil(40000 * sim::kSec, [&]() { return ready == n; });
    Result r;
    r.lastReadySec = sim::toSeconds(tb.eq.now());
    r.serverGiB = double(tb.server->dataBytesOut()) / double(sim::kGiB);
    return r;
}

Result
runImageCopy(unsigned n)
{
    Testbed tb(0, hw::StorageKind::Ahci, kImg, 0.9);
    for (unsigned i = 0; i < n; ++i)
        tb.addMachine(hw::StorageKind::Ahci);

    std::vector<std::unique_ptr<baselines::ImageCopyDeployer>> deps;
    unsigned ready = 0;
    for (unsigned i = 0; i < n; ++i) {
        deps.push_back(
            std::make_unique<baselines::ImageCopyDeployer>(
                tb.eq, "dep" + std::to_string(i), tb.machine(i),
                tb.guest(i), kServerMac, kImg,
                baselines::ImageCopyParams{}, false));
        deps.back()->run([&ready]() { ++ready; });
    }
    tb.runUntil(400000 * sim::kSec, [&]() { return ready == n; });
    Result r;
    r.lastReadySec = sim::toSeconds(tb.eq.now());
    r.serverGiB = double(tb.server->dataBytesOut()) / double(sim::kGiB);
    return r;
}

} // namespace

int
main()
{
    figureHeader("Ablation: simultaneous instance scale-out "
                 "(4-GiB image; last-instance time-to-serving)");

    sim::Table t({"Instances", "BMcast ready (s)", "BMcast srv GiB",
                  "ImageCopy ready (s)", "ImageCopy srv GiB",
                  "Speedup"});
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        Result bm = runBmcast(n, 8);
        Result ic = runImageCopy(n);
        t.addRow({std::to_string(n),
                  sim::Table::num(bm.lastReadySec, 1),
                  sim::Table::num(bm.serverGiB, 2),
                  sim::Table::num(ic.lastReadySec, 1),
                  sim::Table::num(ic.serverGiB, 2),
                  sim::Table::num(ic.lastReadySec / bm.lastReadySec,
                                  1) +
                      "x"});
    }
    t.print(std::cout);
    std::cout
        << "\nBMcast ships only each guest's boot working set, so "
           "time-to-serving stays nearly flat\nwith the fleet size, "
           "while image copying saturates the server/network "
           "(paper §5.1 discussion).\n";
    return 0;
}
