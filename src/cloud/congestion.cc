#include "cloud/congestion.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace cloud {

CongestionController::CongestionController(CongestionParams p,
                                           unsigned racks,
                                           const net::Topology *topo)
    : prm_(p)
{
    sim::fatalIf(racks == 0, "congestion controller needs racks");
    sim::fatalIf(prm_.linkShare <= 0.0 || prm_.linkShare > 1.0,
                 "deployment link share must be in (0, 1]");
    sim::fatalIf(prm_.servingShare < 0.0 ||
                     prm_.linkShare + prm_.servingShare > 1.0,
                 "deployment + serving shares exceed the link");
    sim::fatalIf(prm_.scavengerShare < 0.0 ||
                     prm_.linkShare + prm_.servingShare +
                             prm_.scavengerShare >
                         1.0,
                 "deployment + serving + scavenger shares exceed "
                 "the link");
    lanes_.resize(racks);
    for (unsigned r = 0; r < racks; ++r) {
        Lane &lane = lanes_[r];
        double link =
            topo ? topo->effectiveUplinkBps() : prm_.rackLinkBps;
        if (prm_.deployBudgetBps > 0.0) {
            lane.rackBps =
                prm_.deployBudgetBps / static_cast<double>(racks);
        } else {
            lane.rackBps = prm_.linkShare * link;
        }
        sim::fatalIf(lane.rackBps <= 0.0,
                     "rack deployment lane has no capacity");
        lane.tenantBps = prm_.tenantShare > 0.0
                             ? lane.rackBps * prm_.tenantShare
                             : 0.0;
        // The serving lane is always carved from the physical link,
        // never from the deployment budget — the whole point is that
        // the two cannot book each other's capacity.
        lane.servingBps = prm_.servingShare > 0.0
                              ? prm_.servingShare * link
                              : 0.0;
        lane.servingTenantBps =
            prm_.servingTenantShare > 0.0
                ? lane.servingBps * prm_.servingTenantShare
                : 0.0;
        // Scavenger (repair) traffic likewise draws from the
        // physical link, in its own lane.
        lane.scavBps = prm_.scavengerShare > 0.0
                           ? prm_.scavengerShare * link
                           : 0.0;
        lane.scavTenantBps =
            prm_.scavengerTenantShare > 0.0
                ? lane.scavBps * prm_.scavengerTenantShare
                : 0.0;
    }
}

double
CongestionController::laneBps(unsigned rack) const
{
    return lanes_.at(rack).rackBps;
}

sim::Tick
CongestionController::admit(unsigned rack, TenantId tenant,
                            sim::Bytes bytes, sim::Tick now)
{
    Lane &lane = lanes_.at(rack);
    Bucket &tb = lane.tenants[tenant];

    double bits = static_cast<double>(bytes) * 8.0;
    auto lane_ser = static_cast<sim::Tick>(
        bits / lane.rackBps * static_cast<double>(sim::kSec));
    sim::Tick tenant_ser =
        lane.tenantBps > 0.0
            ? static_cast<sim::Tick>(bits / lane.tenantBps *
                                     static_cast<double>(sim::kSec))
            : lane_ser;

    // Hierarchical booking: the transfer starts when the rack lane
    // and the tenant's slice are both free, and occupies each at its
    // own rate — so one tenant's storm fills its slice long before
    // it can fill the lane.
    sim::Tick start = std::max({now, lane.all.freeAt, tb.freeAt});
    lane.all.freeAt = start + lane_ser;
    tb.freeAt = start + tenant_ser;

    sim::Tick delay = start - now;
    lane.all.bytes += bytes;
    ++lane.all.grants;
    lane.all.delaySum += delay;
    tb.bytes += bytes;
    ++tb.grants;
    tb.delaySum += delay;
    return start;
}

sim::Tick
CongestionController::admitServing(unsigned rack, TenantId tenant,
                                   sim::Bytes bytes, sim::Tick now)
{
    Lane &lane = lanes_.at(rack);
    if (lane.servingBps <= 0.0)
        return now; // no serving contract: unshaped
    Bucket &tb = lane.servingTenants[tenant];

    double bits = static_cast<double>(bytes) * 8.0;
    auto lane_ser = static_cast<sim::Tick>(
        bits / lane.servingBps * static_cast<double>(sim::kSec));
    sim::Tick tenant_ser =
        lane.servingTenantBps > 0.0
            ? static_cast<sim::Tick>(bits / lane.servingTenantBps *
                                     static_cast<double>(sim::kSec))
            : lane_ser;

    sim::Tick start = std::max({now, lane.serving.freeAt, tb.freeAt});
    lane.serving.freeAt = start + lane_ser;
    tb.freeAt = start + tenant_ser;

    sim::Tick delay = start - now;
    lane.serving.bytes += bytes;
    ++lane.serving.grants;
    lane.serving.delaySum += delay;
    tb.bytes += bytes;
    ++tb.grants;
    tb.delaySum += delay;
    return start;
}

double
CongestionController::servingBps(unsigned rack) const
{
    return lanes_.at(rack).servingBps;
}

sim::Tick
CongestionController::admitScavenger(unsigned rack, TenantId tenant,
                                     sim::Bytes bytes, sim::Tick now)
{
    Lane &lane = lanes_.at(rack);
    if (lane.scavBps <= 0.0)
        return now; // no repair contract: unshaped
    Bucket &tb = lane.scavTenants[tenant];

    double bits = static_cast<double>(bytes) * 8.0;
    auto lane_ser = static_cast<sim::Tick>(
        bits / lane.scavBps * static_cast<double>(sim::kSec));
    sim::Tick tenant_ser =
        lane.scavTenantBps > 0.0
            ? static_cast<sim::Tick>(bits / lane.scavTenantBps *
                                     static_cast<double>(sim::kSec))
            : lane_ser;

    sim::Tick start = std::max({now, lane.scav.freeAt, tb.freeAt});
    lane.scav.freeAt = start + lane_ser;
    tb.freeAt = start + tenant_ser;

    sim::Tick delay = start - now;
    lane.scav.bytes += bytes;
    ++lane.scav.grants;
    lane.scav.delaySum += delay;
    tb.bytes += bytes;
    ++tb.grants;
    tb.delaySum += delay;
    return start;
}

double
CongestionController::scavengerBps(unsigned rack) const
{
    return lanes_.at(rack).scavBps;
}

sim::Bytes
CongestionController::grantedBytes(unsigned rack) const
{
    return lanes_.at(rack).all.bytes;
}

std::uint64_t
CongestionController::grants(unsigned rack) const
{
    return lanes_.at(rack).all.grants;
}

sim::Tick
CongestionController::throttleDelay(unsigned rack) const
{
    return lanes_.at(rack).all.delaySum;
}

sim::Bytes
CongestionController::tenantBytes(unsigned rack,
                                  TenantId tenant) const
{
    const Lane &lane = lanes_.at(rack);
    auto it = lane.tenants.find(tenant);
    return it == lane.tenants.end() ? 0 : it->second.bytes;
}

sim::Bytes
CongestionController::servingBytes(unsigned rack) const
{
    return lanes_.at(rack).serving.bytes;
}

sim::Tick
CongestionController::servingDelay(unsigned rack) const
{
    return lanes_.at(rack).serving.delaySum;
}

sim::Bytes
CongestionController::scavengerBytes(unsigned rack) const
{
    return lanes_.at(rack).scav.bytes;
}

sim::Tick
CongestionController::scavengerDelay(unsigned rack) const
{
    return lanes_.at(rack).scav.delaySum;
}

void
CongestionController::publish(obs::Registry &reg,
                              const std::string &prefix) const
{
    for (std::size_t r = 0; r < lanes_.size(); ++r) {
        const Lane &lane = lanes_[r];
        std::string rack = "rack" + std::to_string(r);
        reg.counter(prefix + "congestion.granted_bytes", rack)
            .set(lane.all.bytes);
        reg.counter(prefix + "congestion.grants", rack)
            .set(lane.all.grants);
        reg.counter(prefix + "congestion.throttle_delay_ns", rack)
            .set(lane.all.delaySum);
        for (const auto &[tenant, b] : lane.tenants) {
            reg.counter(prefix + "congestion.tenant_bytes",
                        rack + ".t" + std::to_string(tenant))
                .set(b.bytes);
        }
        if (lane.servingBps > 0.0) {
            reg.counter(prefix + "congestion.serving_bytes", rack)
                .set(lane.serving.bytes);
            reg.counter(prefix + "congestion.serving_grants", rack)
                .set(lane.serving.grants);
            reg.counter(prefix + "congestion.serving_delay_ns", rack)
                .set(lane.serving.delaySum);
            for (const auto &[tenant, b] : lane.servingTenants) {
                reg.counter(prefix + "congestion.serving_tenant_bytes",
                            rack + ".t" + std::to_string(tenant))
                    .set(b.bytes);
            }
        }
        if (lane.scavBps > 0.0) {
            reg.counter(prefix + "congestion.scavenger_bytes", rack)
                .set(lane.scav.bytes);
            reg.counter(prefix + "congestion.scavenger_grants", rack)
                .set(lane.scav.grants);
            reg.counter(prefix + "congestion.scavenger_delay_ns", rack)
                .set(lane.scav.delaySum);
            for (const auto &[tenant, b] : lane.scavTenants) {
                reg.counter(
                       prefix + "congestion.scavenger_tenant_bytes",
                       rack + ".t" + std::to_string(tenant))
                    .set(b.bytes);
            }
        }
    }
}

} // namespace cloud
