/**
 * @file
 * Chrome trace_event JSON exporter.
 *
 * Serializes a Tracer's surviving records into the JSON Array Format
 * consumed by chrome://tracing and by Perfetto's legacy importer
 * (ui.perfetto.dev -> "Open trace file"). Mapping:
 *
 *  - one process (pid 0, named "bmcast-sim");
 *  - each tracer track becomes a thread (tid = track index, named
 *    via "thread_name" metadata);
 *  - sim-time ticks (ns) become fractional-microsecond "ts" values,
 *    so Perfetto's time axis reads directly in sim time;
 *  - SpanBegin/SpanEnd -> ph "B"/"E"; Instant -> "i" (thread scope);
 *    AsyncBegin/AsyncEnd -> "b"/"e" with an id; flow records ->
 *    "s"/"t"/"f"; CounterSample -> "C".
 */

#ifndef OBS_CHROME_TRACE_HH
#define OBS_CHROME_TRACE_HH

#include <iosfwd>

#include "obs/tracer.hh"

namespace obs {

/** Write @p t's records to @p os as Chrome trace_event JSON. */
void writeChromeTrace(std::ostream &os, const Tracer &t);

/** Convenience: writeChromeTrace to @p path.
 *  @return false if the file could not be opened. */
bool writeChromeTraceFile(const std::string &path, const Tracer &t);

} // namespace obs

#endif // OBS_CHROME_TRACE_HH
