/**
 * @file
 * The span/event tracer of the observability subsystem (sim::obs).
 *
 * A Tracer records timestamped trace events — nestable spans, instant
 * events, async (sim-time-extended) spans, flow arrows and counter
 * samples — into a preallocated ring buffer. The design contract,
 * mirroring the unarmed FaultInjector:
 *
 *  - Disarmed, an instrumented hot path costs one branch on a cached
 *    global bool (obs::armed()); no tracer state is touched and runs
 *    are bit-identical to a build without instrumentation.
 *  - Armed, record() never allocates: the ring is preallocated and
 *    wraps (oldest records are overwritten, counted as dropped), and
 *    event/category names are interned `const char *`s whose storage
 *    is owned by the tracer. Tracks (one per component, mapped to
 *    Chrome trace "threads") are interned once per component through
 *    obs::Track, off the per-record path.
 *  - Tracing never schedules events, draws randomness, or mutates
 *    simulation state, so an armed run dispatches the exact same
 *    event sequence as a disarmed one (asserted by tests/obs_test.cc
 *    and enforced by bench/abl_obs.cc).
 *
 * Deployment milestones (category "deploy") additionally go to a
 * bounded side log that survives ring wrap; obs::RunReport
 * reconstructs per-instance deployment timelines from it.
 */

#ifndef OBS_TRACER_HH
#define OBS_TRACER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "simcore/types.hh"

namespace obs {

/** Trace record kinds (mapped to Chrome trace_event phases). */
enum class EventKind : std::uint8_t {
    SpanBegin,     ///< "B": synchronous nested span opens
    SpanEnd,       ///< "E": innermost open span on the track closes
    Instant,       ///< "i": point event
    AsyncBegin,    ///< "b": sim-time-extended operation starts (by id)
    AsyncEnd,      ///< "e": the operation identified by id completes
    FlowBegin,     ///< "s": flow arrow starts (request leaves a layer)
    FlowStep,      ///< "t": flow arrow passes through a layer
    FlowEnd,       ///< "f": flow arrow terminates (response delivered)
    CounterSample, ///< "C": sampled value of a named counter
};

/** One ring-buffer entry. Names are interned or static strings. */
struct TraceRecord
{
    sim::Tick ts = 0;
    std::uint64_t id = 0; //!< async/flow correlation id
    const char *cat = nullptr;
    const char *name = nullptr;
    double value = 0.0;
    std::uint32_t track = 0;
    EventKind kind = EventKind::Instant;
};

/** A deployment milestone (kept outside the ring; never overwritten). */
struct Milestone
{
    sim::Tick ts = 0;
    const char *name = nullptr;
    std::uint32_t track = 0;
    double value = 0.0;
};

/** The tracer. */
class Tracer
{
  public:
    /** Default ring capacity (records). */
    static constexpr std::size_t kDefaultCapacity = 1u << 18;
    /** Milestone side-log bound; beyond it milestones are counted
     *  but not stored (deployment timelines are small). */
    static constexpr std::size_t kMaxMilestones = 1u << 16;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Unique, monotonically increasing instance stamp. obs::Track
     * caches track ids keyed on it so a component constructed under
     * one tracer re-interns under the next instead of using a stale
     * id.
     */
    std::uint64_t epoch() const { return epoch_; }

    /** @name Setup paths (may allocate; not for per-event use) */
    /// @{

    /** Intern @p name as a track (Chrome "thread"); idempotent. */
    std::uint32_t track(const std::string &name);

    /** Intern an arbitrary string, returning a pointer that stays
     *  valid for the tracer's lifetime. */
    const char *intern(const std::string &s);

    const std::string &trackName(std::uint32_t track) const;
    std::size_t numTracks() const { return trackNames_.size(); }
    /// @}

    /** @name Recording (hot paths; never allocate) */
    /// @{
    void
    spanBegin(std::uint32_t track, const char *cat, const char *name,
              sim::Tick ts)
    {
        ++depth_[track];
        put({ts, 0, cat, name, 0.0, track, EventKind::SpanBegin});
    }

    void
    spanEnd(std::uint32_t track, sim::Tick ts)
    {
        if (depth_[track] == 0)
            ++nestingViolations_;
        else
            --depth_[track];
        put({ts, 0, nullptr, nullptr, 0.0, track,
             EventKind::SpanEnd});
    }

    void
    instant(std::uint32_t track, const char *cat, const char *name,
            sim::Tick ts, double value = 0.0)
    {
        put({ts, 0, cat, name, value, track, EventKind::Instant});
    }

    void
    asyncBegin(std::uint32_t track, const char *cat, const char *name,
               std::uint64_t id, sim::Tick ts)
    {
        put({ts, id, cat, name, 0.0, track, EventKind::AsyncBegin});
    }

    void
    asyncEnd(std::uint32_t track, const char *cat, const char *name,
             std::uint64_t id, sim::Tick ts)
    {
        put({ts, id, cat, name, 0.0, track, EventKind::AsyncEnd});
    }

    void
    flowBegin(std::uint32_t track, const char *cat, const char *name,
              std::uint64_t id, sim::Tick ts)
    {
        put({ts, id, cat, name, 0.0, track, EventKind::FlowBegin});
    }

    void
    flowStep(std::uint32_t track, const char *cat, const char *name,
             std::uint64_t id, sim::Tick ts)
    {
        put({ts, id, cat, name, 0.0, track, EventKind::FlowStep});
    }

    void
    flowEnd(std::uint32_t track, const char *cat, const char *name,
            std::uint64_t id, sim::Tick ts)
    {
        put({ts, id, cat, name, 0.0, track, EventKind::FlowEnd});
    }

    void
    counter(std::uint32_t track, const char *name, sim::Tick ts,
            double value)
    {
        put({ts, 0, "counter", name, value, track,
             EventKind::CounterSample});
    }

    /**
     * Record a deployment milestone: an Instant in the ring (cat
     * "deploy") plus an entry in the bounded side log that survives
     * ring wrap. RunReport rebuilds timelines from the side log.
     */
    void
    milestone(std::uint32_t track, const char *name, sim::Tick ts,
              double value = 0.0)
    {
        put({ts, 0, "deploy", name, value, track, EventKind::Instant});
        if (milestones_.size() < kMaxMilestones)
            milestones_.push_back({ts, name, track, value});
        else
            ++milestonesDropped_;
    }
    /// @}

    /** @name Introspection */
    /// @{
    std::size_t capacity() const { return ring_.size(); }
    /** Records currently held (min(recorded, capacity)). */
    std::size_t
    size() const
    {
        return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                     : ring_.size();
    }
    /** Records ever recorded, including overwritten ones. */
    std::uint64_t recorded() const { return total_; }
    /** Records lost to ring wrap. */
    std::uint64_t
    dropped() const
    {
        return total_ - static_cast<std::uint64_t>(size());
    }

    /** Visit surviving records oldest-first. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        const std::size_t n = size();
        const std::size_t cap = ring_.size();
        const std::size_t first = total_ > cap ? head_ : 0;
        for (std::size_t i = 0; i < n; ++i)
            fn(ring_[(first + i) % cap]);
    }

    const std::vector<Milestone> &milestones() const
    {
        return milestones_;
    }
    std::uint64_t milestonesDropped() const
    {
        return milestonesDropped_;
    }

    /** spanEnd() calls with no open span on the track. */
    std::uint64_t nestingViolations() const
    {
        return nestingViolations_;
    }
    /** Currently open spans on @p track. */
    std::uint32_t spanDepth(std::uint32_t track) const
    {
        return depth_[track];
    }
    /// @}

  private:
    void
    put(TraceRecord r)
    {
        ring_[head_] = r;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        ++total_;
    }

    std::uint64_t epoch_;
    std::vector<TraceRecord> ring_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;

    std::vector<std::string> trackNames_;
    std::vector<std::uint32_t> depth_;
    /** Interned strings; deque so pointers stay stable. */
    std::deque<std::string> interned_;

    std::vector<Milestone> milestones_;
    std::uint64_t milestonesDropped_ = 0;
    std::uint64_t nestingViolations_ = 0;
};

} // namespace obs

#endif // OBS_TRACER_HH
