/**
 * @file
 * AoE initiator: the client side used by the BMcast VMM (copy-on-read
 * redirection and background copy) and by the image-copying baseline.
 *
 * Large transfers split into requests of at most
 * maxSectorsPerRequest; each request's data moves in MTU-sized
 * fragments. Lost frames are recovered by whole-request
 * retransmission with exponential backoff (the paper's extension for
 * loss tolerance).
 */

#ifndef AOE_INITIATOR_HH
#define AOE_INITIATOR_HH

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/l2.hh"
#include "aoe/protocol.hh"
#include "obs/obs.hh"
#include "simcore/random.hh"
#include "simcore/sim_object.hh"

namespace aoe {

/** Initiator tuning. */
struct InitiatorParams
{
    std::uint16_t major = 0;
    std::uint8_t minor = 0;
    /** Per-request cap (2048 sectors = 1 MiB). */
    std::uint32_t maxSectorsPerRequest = 2048;
    /** Floor for the retransmission timeout (well above a loaded
     *  server's worst-case service time; retransmission is for
     *  loss, not for pacing). */
    sim::Tick minTimeout = 80 * sim::kMs;
    /** Retries before each loud warning. */
    int warnEveryRetries = 10;
    /**
     * Retry budget per request: once exhausted the error handler
     * decides (default: drop the request and surface a terminal
     * DeployError).  At the backoff cap one full budget spans
     * minutes, so this only trips when the server is really gone —
     * not under heavy random loss.  Negative = retry forever (the
     * pre-budget behaviour).
     */
    int maxRetries = 24;
    /** Seed for the retransmission-jitter stream. */
    std::uint64_t seed = 1;
    /**
     * Routed (store) reads fail fast instead of retrying forever: the
     * streamer has other sources to try.  Separate budget and timeout
     * floor from the legacy path.
     */
    std::uint32_t shardMaxRetries = 2;
    sim::Tick shardMinTimeout = 40 * sim::kMs;
};

/** A request that exhausted its retry budget. */
struct DeployError
{
    bool isWrite = false;
    sim::Lba lba = 0;
    std::uint32_t count = 0;
    int retries = 0;
    /** The server that stopped answering. */
    net::MacAddr server = 0;
};

/** What the error handler wants done with the doomed request. */
enum class ErrorAction {
    Drop,  ///< Abandon it; its completion callback never fires.
    Retry, ///< Reset the budget and keep trying (e.g. after failover).
};

/** Outcome of a routed (store) read. */
enum class RoutedStatus {
    Ok,        ///< Tokens delivered and digest-verified.
    Timeout,   ///< Source never answered within the shard budget.
    Error,     ///< Source answered with an AoE error.
    BadDigest, ///< Payload did not match its carried digest.
};

/** The initiator. */
class AoeInitiator : public sim::SimObject
{
  public:
    using ReadCallback =
        std::function<void(const std::vector<std::uint64_t> &tokens)>;
    using WriteCallback = std::function<void()>;
    using DiscoverCallback = std::function<void(bool found)>;
    using RoutedReadCallback = std::function<void(
        RoutedStatus, const std::vector<std::uint64_t> &tokens)>;

    AoeInitiator(sim::EventQueue &eq, std::string name,
                 net::L2Endpoint &nic, net::MacAddr serverMac,
                 InitiatorParams params = InitiatorParams{});

    /** Read [lba, lba+count); completion delivers one token/sector. */
    void readSectors(sim::Lba lba, std::uint32_t count,
                     ReadCallback done);

    /** Write tokens to [lba, lba+count). */
    void writeSectors(sim::Lba lba,
                      std::vector<std::uint64_t> tokens,
                      WriteCallback done);

    /** Write a whole range sharing one content base. */
    void writeRange(sim::Lba lba, std::uint32_t count,
                    std::uint64_t contentBase, WriteCallback done);

    /**
     * Read [lba, lba+count) from an explicit @p source (a peer node
     * or an erasure-stripe member) instead of the default server.
     * Uses kCmdShardRead: digest-checked payloads, a short timeout,
     * and a small retry budget — on failure the callback reports why
     * and the store tier picks another source.  Never retargeted by
     * retarget().
     */
    void readSectorsVia(net::MacAddr source, sim::Lba lba,
                        std::uint32_t count, RoutedReadCallback done);

    /** Probe the server. */
    void discover(DiscoverCallback done);

    /**
     * Cancel all outstanding requests and timers (power-off /
     * teardown). Completion callbacks of in-flight requests are
     * dropped.
     */
    void shutdown();

    /**
     * Handler invoked when a request exhausts its retry budget; its
     * return value decides the request's fate.  The handler may call
     * retarget() first (multi-server failover) and then return Retry.
     * Without a handler, doomed requests are dropped.
     */
    using ErrorHandler = std::function<ErrorAction(const DeployError &)>;
    void setErrorHandler(ErrorHandler h) { errorHandler = std::move(h); }

    /**
     * Switch to a different server and immediately retransmit every
     * outstanding request to it with a fresh retry budget (deployment
     * failover: the old server's in-flight responses are stale).
     */
    void retarget(net::MacAddr newServer);

    /** The server currently targeted. */
    net::MacAddr serverMac() const { return server; }

    /** @name Telemetry */
    /// @{
    std::uint64_t requestsIssued() const { return numRequests; }
    std::uint64_t retransmissions() const { return numRetx; }
    /** Requests that exhausted their retry budget. */
    std::uint64_t terminalErrors() const { return numErrors; }
    sim::Bytes dataBytesRead() const { return bytesRead; }
    sim::Bytes dataBytesWritten() const { return bytesWritten; }
    std::size_t inflight() const { return pending.size(); }
    sim::Tick rttEstimate() const { return rttEma; }
    /** Routed reads that failed (timeout, error, or bad digest). */
    std::uint64_t shardFailures() const { return numShardFailures; }
    /** Routed reads rejected for a digest mismatch. */
    std::uint64_t shardDigestMismatches() const
    {
        return numDigestMismatches;
    }
    /// @}

  private:
    struct Call
    {
        std::vector<std::uint64_t> tokens;
        std::size_t remainingRequests = 0;
        ReadCallback readDone;
        WriteCallback writeDone;
    };

    struct Pending
    {
        bool isWrite = false;
        sim::Lba lba = 0;
        std::uint32_t count = 0;
        std::shared_ptr<Call> call;
        std::uint32_t callOffset = 0;

        std::vector<std::uint64_t> rxTokens;
        std::vector<bool> got;
        std::uint32_t numGot = 0;
        bool acked = false;

        sim::Tick lastSent = 0;
        int retries = 0;
        sim::EventId timer;

        /** Routed reads only: explicit source (0 = default server). */
        net::MacAddr dest = 0;
        RoutedReadCallback routedDone;
    };

    void issue(bool isWrite, sim::Lba lba, std::uint32_t count,
               std::shared_ptr<Call> call, std::uint32_t offset);
    void sendRequest(std::uint32_t tag, Pending &p);
    void failRouted(std::uint32_t tag, RoutedStatus status);
    void armTimer(std::uint32_t tag, Pending &p);
    void onTimeout(std::uint32_t tag);
    void onFrame(const net::Frame &frame);
    void completeRequest(std::uint32_t tag, Pending &p);
    sim::Tick timeout(Pending &p);

    net::L2Endpoint &nic;
    net::MacAddr server;
    InitiatorParams params;
    sim::Rng rng;
    ErrorHandler errorHandler;

    std::uint32_t nextTag = 1;
    std::map<std::uint32_t, Pending> pending;
    std::map<std::uint32_t, DiscoverCallback> discoverPending;

    sim::Tick rttEma = 0;
    std::uint64_t numRequests = 0;
    std::uint64_t numRetx = 0;
    std::uint64_t numErrors = 0;
    std::uint64_t numShardFailures = 0;
    std::uint64_t numDigestMismatches = 0;
    sim::Bytes bytesRead = 0;
    sim::Bytes bytesWritten = 0;

    /** Flow/async correlation id shared with the server side: both
     *  ends derive it from (client MAC, tag) alone. */
    std::uint64_t
    obsFlowId(std::uint32_t tag) const
    {
        return aoeFlowId(nic.localMac(), tag);
    }

    obs::Track obsTrack_;
    obs::Histogram *rttHist_ = nullptr;
    std::uint64_t rttHistEpoch_ = 0;
};

} // namespace aoe

#endif // AOE_INITIATOR_HH
