/**
 * @file
 * Guest IDE driver: one outstanding LBA48 DMA command at a time,
 * interrupt-driven, exactly the register protocol a real OS driver
 * speaks (PRD table setup, task-file programming with high-byte-first
 * LBA48 writes, bus-master start/stop, status-read interrupt ack).
 */

#ifndef GUEST_IDE_DRIVER_HH
#define GUEST_IDE_DRIVER_HH

#include <deque>

#include "guest/block_driver.hh"
#include "guest/irq_watchdog.hh"
#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/mem_arena.hh"
#include "hw/phys_mem.hh"
#include "simcore/sim_object.hh"

namespace guest {

/** The driver. */
class IdeDriver : public sim::SimObject, public BlockDriver
{
  public:
    /** Largest single command (1 MiB); larger requests split. */
    static constexpr std::uint32_t kMaxSectors = 2048;

    IdeDriver(sim::EventQueue &eq, std::string name, hw::BusView view,
              hw::PhysMem &mem, hw::InterruptController &intc,
              hw::MemArena &arena);
    ~IdeDriver() override;

    void initialize() override;
    void read(sim::Lba lba, std::uint32_t count, ReadDone done) override;
    void write(sim::Lba lba, std::uint32_t count,
               std::uint64_t contentBase, WriteDone done) override;

    std::uint64_t opsCompleted() const override { return numOps; }
    sim::Tick totalLatency() const override { return latencySum; }
    bool
    idle() const override
    {
        return queue.empty() && !chunkActive;
    }

    /** Lost-IRQ recovery watchdog (see guest/irq_watchdog.hh). */
    IrqWatchdog &watchdog() { return wdog; }

  private:
    struct Op
    {
        bool isWrite = false;
        sim::Lba lba = 0;
        std::uint32_t count = 0;
        std::uint64_t contentBase = 0;
        ReadDone readDone;
        WriteDone writeDone;
        sim::Tick submitted = 0;
        std::uint32_t doneSectors = 0;
        std::vector<std::uint64_t> tokens;
    };

    void pump();
    void issueChunk();
    void onIrq();

    hw::BusView view;
    hw::PhysMem &mem;
    hw::InterruptController &intc;
    hw::InterruptController::HandlerId irqHandler = 0;
    sim::Addr prdTable = 0;
    sim::Addr buffer = 0;

    std::deque<Op> queue;
    //! Completion callbacks may destroy the driver; onIrq checks
    //! this sentinel after invoking one before touching members.
    std::shared_ptr<bool> alive = std::make_shared<bool>(true);
    bool chunkActive = false;
    std::uint32_t chunkSectors = 0;
    IrqWatchdog wdog;

    std::uint64_t numOps = 0;
    sim::Tick latencySum = 0;
};

} // namespace guest

#endif // GUEST_IDE_DRIVER_HH
