#include "hw/e1000_driver.hh"

#include "hw/nic_doorbell.hh"
#include "simcore/logging.hh"

namespace hw {

using namespace e1000;

E1000Driver::E1000Driver(sim::EventQueue &eq, std::string name,
                         BusView view_, E1000Nic &nic_, PhysMem &mem_,
                         MemArena &arena, Mode mode_,
                         InterruptController *intc_p,
                         unsigned irq_vector)
    : E1000Driver(eq, std::move(name), view_, nic_.mmioBase(),
                  nic_.port().mac(), nic_.port().config().mtu, mem_,
                  arena, mode_, intc_p, irq_vector)
{
}

E1000Driver::E1000Driver(sim::EventQueue &eq, std::string name,
                         BusView view_, sim::Addr mmio_base,
                         net::MacAddr mac, sim::Bytes mtu,
                         PhysMem &mem_, MemArena &arena, Mode mode_,
                         InterruptController *intc_p,
                         unsigned irq_vector)
    : sim::SimObject(eq, std::move(name)),
      view(view_), mem(mem_), mode(mode_), base(mmio_base),
      mac_(mac), mtu_(mtu)
{
    txRing = arena.alloc(kRingSize * kDescSize, 128);
    rxRing = arena.alloc(kRingSize * kDescSize, 128);
    txBufs = arena.alloc(kRingSize * kBufSize, 4096);
    rxBufs = arena.alloc(kRingSize * kBufSize, 4096);
    initRings();

    if (mode == Mode::Interrupt) {
        sim::fatalIf(intc_p == nullptr,
                     "interrupt-mode driver needs a controller");
        intc = intc_p;
        irqVector = irq_vector;
        irqHandler = intc->registerHandler(
            irq_vector, [this]() { serviceIrq(); });
    }
}

E1000Driver::~E1000Driver()
{
    if (intc && irqHandler)
        intc->unregisterHandler(irqVector, irqHandler);
}

void
E1000Driver::attachDoorbell(sim::Addr page)
{
    dbPage = page;
    // Publish the current tails so the poller's mirrors line up with
    // the trapped setup writes that already happened.
    nicdb::init(mem, page, txTail, kRingSize - 1);
}

void
E1000Driver::initRings()
{
    // Receive ring: hand all but one descriptor to hardware.
    for (unsigned i = 0; i < kRingSize; ++i) {
        sim::Addr desc = rxRing + i * kDescSize;
        mem.write64(desc, rxBufs + i * kBufSize);
        mem.write32(desc + 8, 0);
        mem.write32(desc + 12, 0);
    }
    view.write(IoSpace::Mmio, base + kRdbal,
               static_cast<std::uint32_t>(rxRing), 4);
    view.write(IoSpace::Mmio, base + kRdlen, kRingSize * kDescSize, 4);
    view.write(IoSpace::Mmio, base + kRdh, 0, 4);
    view.write(IoSpace::Mmio, base + kRdt, kRingSize - 1, 4);
    view.write(IoSpace::Mmio, base + kRctl, kRctlEn, 4);

    view.write(IoSpace::Mmio, base + kTdbal,
               static_cast<std::uint32_t>(txRing), 4);
    view.write(IoSpace::Mmio, base + kTdlen, kRingSize * kDescSize, 4);
    view.write(IoSpace::Mmio, base + kTdh, 0, 4);
    view.write(IoSpace::Mmio, base + kTdt, 0, 4);
    view.write(IoSpace::Mmio, base + kTctl, kTctlEn, 4);

    if (mode == Mode::Interrupt) {
        view.write(IoSpace::Mmio, base + kIms, kIcrTxdw | kIcrRxt0, 4);
    } else {
        // Polling mode: mask everything (paper §4.3).
        view.write(IoSpace::Mmio, base + kImc, ~0u, 4);
    }
}

net::MacAddr
E1000Driver::localMac() const
{
    return mac_;
}

sim::Bytes
E1000Driver::mtu() const
{
    return mtu_;
}

void
E1000Driver::sendFrame(net::Frame frame)
{
    frame.src = localMac();
    txBacklog.push_back(std::move(frame));
    pumpTx();
}

void
E1000Driver::pumpTx()
{
    bool queued = false;
    while (!txBacklog.empty() && txFree > 1) {
        net::Frame f = std::move(txBacklog.front());
        txBacklog.pop_front();

        sim::Addr buf = txBufs + txTail * kBufSize;
        sim::Bytes len = 14 + f.payload.size();
        sim::panicIfNot(len <= kBufSize,
                        "frame exceeds driver buffer: ", len);

        for (int i = 0; i < 6; ++i) {
            mem.write8(buf + i, static_cast<std::uint8_t>(
                                    f.dst >> (8 * (5 - i))));
            mem.write8(buf + 6 + i, static_cast<std::uint8_t>(
                                        f.src >> (8 * (5 - i))));
        }
        mem.write8(buf + 12,
                   static_cast<std::uint8_t>(f.etherType >> 8));
        mem.write8(buf + 13, static_cast<std::uint8_t>(f.etherType));
        if (!f.payload.empty())
            mem.write(buf + 14, f.payload.data(), f.payload.size());

        sim::Addr desc = txRing + txTail * kDescSize;
        mem.write64(desc, buf);
        mem.write16(desc + 8, static_cast<std::uint16_t>(len));
        mem.write8(desc + 11, kTxCmdEop | kTxCmdRs);
        mem.write8(desc + 12, 0); // clear DD
        mem.write16(desc + 14,
                    static_cast<std::uint16_t>(f.padding >> 3));

        txTail = (txTail + 1) % kRingSize;
        --txFree;
        ++numTx;
        queued = true;
    }
    if (queued) {
        if (dbPage)
            nicdb::ringTx(mem, dbPage, txTail);
        else
            view.write(IoSpace::Mmio, base + kTdt, txTail, 4);
    }
}

unsigned
E1000Driver::poll()
{
    // Reclaim transmitted descriptors.
    while (txFree < kRingSize) {
        sim::Addr desc = txRing + txClean * kDescSize;
        if (!(mem.read8(desc + 12) & kDescDd))
            break;
        txClean = (txClean + 1) % kRingSize;
        ++txFree;
    }
    pumpTx();

    // Deliver received frames.
    unsigned delivered = 0;
    while (true) {
        sim::Addr desc = rxRing + rxHead * kDescSize;
        std::uint8_t st = mem.read8(desc + 12);
        if (!(st & kDescDd))
            break;

        sim::Addr buf = mem.read64(desc);
        std::uint16_t len = mem.read16(desc + 8);
        std::uint16_t special = mem.read16(desc + 14);

        net::Frame f;
        std::uint64_t dst = 0, src = 0;
        for (int i = 0; i < 6; ++i) {
            dst = (dst << 8) | mem.read8(buf + i);
            src = (src << 8) | mem.read8(buf + 6 + i);
        }
        f.dst = dst;
        f.src = src;
        f.etherType = static_cast<std::uint16_t>(
            (mem.read8(buf + 12) << 8) | mem.read8(buf + 13));
        f.payload.resize(len > 14 ? len - 14 : 0);
        if (!f.payload.empty())
            mem.read(buf + 14, f.payload.data(), f.payload.size());
        f.padding = sim::Bytes(special) << 3;

        // Return the descriptor to hardware.
        mem.write8(desc + 12, 0);
        if (dbPage)
            nicdb::ringRx(mem, dbPage, rxHead);
        else
            view.write(IoSpace::Mmio, base + kRdt, rxHead, 4);
        rxHead = (rxHead + 1) % kRingSize;

        ++numRx;
        ++delivered;
        if (rx)
            rx(f);
    }
    return delivered;
}

void
E1000Driver::serviceIrq()
{
    // Read-to-clear the cause register, then service both directions.
    // On the exitless path the causes live in the doorbell page.
    if (dbPage)
        nicdb::takeCauses(mem, dbPage);
    else
        view.read(IoSpace::Mmio, base + kIcr, 4);
    poll();
}

} // namespace hw
