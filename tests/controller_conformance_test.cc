/**
 * @file
 * Register-level conformance tests: the storage controllers are
 * programmed directly through raw bus accesses (no driver layer),
 * checking the architected behaviours the mediators rely on.
 *
 * The scenarios every controller must satisfy — read delivers
 * data+IRQ, interrupt suppression gates the IRQ but not the
 * completion, reset clears state, unsupported commands are flagged —
 * run as one TEST_P matrix over hw::StorageKind, so a new controller
 * inherits the whole suite. Register idiosyncrasies (ATA task-file
 * semantics, AHCI W1S/W1C bits, NVMe phase tags) keep dedicated
 * per-controller tests below.
 */

#include <gtest/gtest.h>

#include "hw/ahci_regs.hh"
#include "hw/ide_regs.hh"
#include "hw/machine.hh"
#include "hw/nvme_regs.hh"
#include "net/network.hh"

namespace {

using hw::IoSpace;

/** One machine with the controller under test, plus the register
 *  programming needed to drive the shared scenarios. */
struct ConformanceRig
{
    explicit ConformanceRig(hw::StorageKind kind, unsigned irq_vector,
                            sim::Bytes disk_bytes = 1 * sim::kGiB)
        : lan(eq, "lan")
    {
        hw::MachineConfig mc;
        mc.name = "m";
        mc.storage = kind;
        mc.disk.capacityBytes = disk_bytes;
        m = std::make_unique<hw::Machine>(eq, mc, lan, 1, lan, 2);
        m->intc().registerHandler(irq_vector, [this]() { ++irqs; });
    }
    virtual ~ConformanceRig() = default;

    /** Program and start a one-sector read of @p lba. */
    virtual void startRead(sim::Lba lba) = 0;
    /** Where startRead puts the data. */
    virtual sim::Addr readBuf() const = 0;
    /** Arm interrupt suppression (call before startRead). */
    virtual void suppressIrq() = 0;
    /** Device-visible completion, independent of the IRQ. */
    virtual bool opCompleted() = 0;
    /** Issue a command with an opcode the device does not implement. */
    virtual void issueUnsupported() = 0;
    /** The device flagged the unsupported command as an error. */
    virtual bool errorFlagged() = 0;
    /** Touch device state, then reset the controller. */
    virtual void dirtyThenReset() = 0;
    /** The reset returned the device to its clean state. */
    virtual bool resetClean() = 0;

    sim::EventQueue eq;
    net::Network lan;
    std::unique_ptr<hw::Machine> m;
    int irqs = 0;
};

// --- IDE ---

struct IdeRig : ConformanceRig
{
    explicit IdeRig(sim::Bytes disk_bytes = 1 * sim::kGiB)
        : ConformanceRig(hw::StorageKind::Ide, hw::ide::kIrqVector,
                         disk_bytes)
    {
    }

    std::uint8_t
    rd(sim::Addr a)
    {
        return static_cast<std::uint8_t>(
            m->bus().guestRead(IoSpace::Pio, a, 1));
    }
    void
    wr(sim::Addr a, std::uint8_t v)
    {
        m->bus().guestWrite(IoSpace::Pio, a, v, 1);
    }

    /** Program a full LBA48 read of one sector into buffer 0x5000
     *  with a PRD at 0x4000. */
    void
    startRead(sim::Lba lba) override
    {
        using namespace hw::ide;
        m->mem().write32(0x4000, 0x5000);
        m->mem().write16(0x4004, sim::kSectorSize);
        m->mem().write16(0x4006, kPrdEot);
        m->bus().guestWrite(IoSpace::Pio, kBmBase + kBmPrdtAddr,
                            0x4000, 4);
        wr(kBmBase + kBmCommand, kBmCmdToMemory);
        wr(kPioBase + kSectorCount, 0);
        wr(kPioBase + kSectorCount, 1);
        wr(kPioBase + kLbaLow, (lba >> 24) & 0xFF);
        wr(kPioBase + kLbaMid, (lba >> 32) & 0xFF);
        wr(kPioBase + kLbaHigh, (lba >> 40) & 0xFF);
        wr(kPioBase + kLbaLow, lba & 0xFF);
        wr(kPioBase + kLbaMid, (lba >> 8) & 0xFF);
        wr(kPioBase + kLbaHigh, (lba >> 16) & 0xFF);
        wr(kPioBase + kDevice, kDeviceLbaMode);
        wr(kPioBase + kCmdStatus, kCmdReadDmaExt);
        wr(kBmBase + kBmCommand, kBmCmdToMemory | kBmCmdStart);
    }
    sim::Addr readBuf() const override { return 0x5000; }
    void
    suppressIrq() override
    {
        wr(hw::ide::kCtrlPort, hw::ide::kCtrlNIen);
    }
    bool
    opCompleted() override
    {
        using namespace hw::ide;
        return rd(kBmBase + kBmStatus) & kBmStIrq;
    }
    void
    issueUnsupported() override
    {
        // IDENTIFY PACKET DEVICE: not implemented by a plain drive.
        wr(hw::ide::kPioBase + hw::ide::kCmdStatus, 0xA1);
    }
    bool
    errorFlagged() override
    {
        using namespace hw::ide;
        return rd(kPioBase + kCmdStatus) & kStatusErr;
    }
    void
    dirtyThenReset() override
    {
        using namespace hw::ide;
        wr(kPioBase + kSectorCount, 42);
        wr(kCtrlPort, kCtrlSrst);
        wr(kCtrlPort, 0);
    }
    bool
    resetClean() override
    {
        using namespace hw::ide;
        return rd(kPioBase + kSectorCount) == 0 &&
               rd(kPioBase + kCmdStatus) == kStatusDrdy;
    }
};

// --- AHCI ---

struct AhciRig : ConformanceRig
{
    AhciRig() : ConformanceRig(hw::StorageKind::Ahci,
                               hw::ahci::kIrqVector)
    {
    }

    std::uint32_t
    rd(sim::Addr off)
    {
        return static_cast<std::uint32_t>(m->bus().guestRead(
            IoSpace::Mmio, hw::ahci::kAbar + off, 4));
    }
    void
    wr(sim::Addr off, std::uint32_t v)
    {
        m->bus().guestWrite(IoSpace::Mmio, hw::ahci::kAbar + off, v,
                            4);
    }

    void
    startPort()
    {
        using namespace hw::ahci;
        wr(kGhc, kGhcAe | kGhcIe);
        wr(kPxClb, 0x10000);
        wr(kPxIe, suppressed ? 0 : kIsDhrs);
        wr(kPxCmd, kCmdSt | kCmdFre);
    }

    /** Build a one-sector command in @p slot. */
    void
    buildSlot(unsigned slot, sim::Lba lba,
              std::uint8_t op = hw::ahci::kFisCmdReadDmaExt)
    {
        using namespace hw::ahci;
        sim::Addr table = 0x20000 + slot * 0x1000;
        sim::Addr cfis = table + kCfisOffset;
        m->mem().fill(cfis, 0, kCfisSize);
        m->mem().write8(cfis + kFisType, kFisTypeH2d);
        m->mem().write8(cfis + kFisFlags, kFisFlagC);
        m->mem().write8(cfis + kFisCommand, op);
        m->mem().write8(cfis + kFisLba0, lba & 0xFF);
        m->mem().write8(cfis + kFisLba1, (lba >> 8) & 0xFF);
        m->mem().write8(cfis + kFisLba2, (lba >> 16) & 0xFF);
        m->mem().write8(cfis + kFisCount0, 1);
        sim::Addr prd = table + kPrdtOffset;
        m->mem().write32(prd, 0x30000 + slot * 0x1000);
        m->mem().write32(prd + 12, sim::kSectorSize - 1);
        sim::Addr hdr = 0x10000 + slot * kCmdHeaderSize;
        m->mem().write32(hdr, 5u | (1u << kHdrPrdtlShift));
        m->mem().write32(hdr + 8,
                         static_cast<std::uint32_t>(table));
    }

    void
    startRead(sim::Lba lba) override
    {
        using namespace hw::ahci;
        startPort();
        buildSlot(3, lba);
        wr(kPxCi, 1u << 3);
    }
    sim::Addr readBuf() const override { return 0x30000 + 3 * 0x1000; }
    void suppressIrq() override { suppressed = true; }
    bool
    opCompleted() override
    {
        using namespace hw::ahci;
        return rd(kPxCi) == 0 && (rd(kPxIs) & kIsDhrs);
    }
    void
    issueUnsupported() override
    {
        using namespace hw::ahci;
        startPort();
        buildSlot(0, 0, /*op=*/0xA1);
        wr(kPxCi, 1u);
    }
    bool
    errorFlagged() override
    {
        using namespace hw::ahci;
        return rd(kPxTfd) & kTfdErr;
    }
    void
    dirtyThenReset() override
    {
        using namespace hw::ahci;
        wr(kPxIe, kIsDhrs);
        wr(kGhc, kGhcHr);
    }
    bool
    resetClean() override
    {
        using namespace hw::ahci;
        return rd(kPxIe) == 0 && rd(kPxCi) == 0 &&
               (rd(kGhc) & kGhcAe);
    }

    bool suppressed = false;
};

// --- NVMe ---

struct NvmeRig : ConformanceRig
{
    NvmeRig() : ConformanceRig(hw::StorageKind::Nvme,
                               hw::nvme::kIrqVectorQ1)
    {
    }

    std::uint32_t
    rd(sim::Addr off)
    {
        return static_cast<std::uint32_t>(m->bus().guestRead(
            IoSpace::Mmio, hw::nvme::kBase + off, 4));
    }
    void
    wr(sim::Addr off, std::uint32_t v)
    {
        m->bus().guestWrite(IoSpace::Mmio, hw::nvme::kBase + off, v,
                            4);
    }

    /** Configure queue pair 1 (SQ 0x10000, CQ 0x11000, depth 16) and
     *  enable the controller. */
    void
    enable()
    {
        using namespace hw::nvme;
        m->mem().fill(0x11000, 0, 16 * kCqEntrySize);
        wr(sqBaseReg(1), 0x10000);
        wr(cqBaseReg(1), 0x11000);
        wr(qDepthReg(1), 16);
        wr(kCc, kCcEn);
    }

    /** Build a one-sector submission entry at @p idx. */
    void
    buildEntry(std::uint32_t idx, sim::Lba lba, std::uint8_t op)
    {
        using namespace hw::nvme;
        sim::Addr sqe = 0x10000 + sim::Addr(idx) * kSqEntrySize;
        m->mem().fill(sqe, 0, kSqEntrySize);
        m->mem().write8(sqe + kSqeOpcode, op);
        m->mem().write16(sqe + kSqeCid, 7);
        m->mem().write64(sqe + kSqePrp1, 0x30000);
        m->mem().write64(sqe + kSqeSlba, lba);
        m->mem().write16(sqe + kSqeNlb, 0);
    }

    std::uint16_t
    cqeStatus(std::uint32_t idx)
    {
        using namespace hw::nvme;
        return m->mem().read16(0x11000 +
                               sim::Addr(idx) * kCqEntrySize +
                               kCqeStatus);
    }

    void
    startRead(sim::Lba lba) override
    {
        using namespace hw::nvme;
        enable();
        buildEntry(0, lba, kOpRead);
        wr(sqTailDb(1), 1);
    }
    sim::Addr readBuf() const override { return 0x30000; }
    void
    suppressIrq() override
    {
        wr(hw::nvme::kIntms, 1u << 1);
    }
    bool
    opCompleted() override
    {
        // First completion carries phase tag 1.
        return cqeStatus(0) & 1;
    }
    void
    issueUnsupported() override
    {
        using namespace hw::nvme;
        enable();
        buildEntry(0, 0, /*op=*/0xAA);
        wr(sqTailDb(1), 1);
    }
    bool
    errorFlagged() override
    {
        using namespace hw::nvme;
        std::uint16_t st = cqeStatus(0);
        return (st & 1) && (st >> 1) == kScInvalidOpcode;
    }
    void
    dirtyThenReset() override
    {
        using namespace hw::nvme;
        startRead(5);
        eq.run();
        wr(kCc, 0);
    }
    bool
    resetClean() override
    {
        using namespace hw::nvme;
        return !(rd(kCsts) & kCstsRdy) && rd(sqTailDb(1)) == 0;
    }
};

std::unique_ptr<ConformanceRig>
makeRig(hw::StorageKind kind)
{
    switch (kind) {
      case hw::StorageKind::Ide:
        return std::make_unique<IdeRig>();
      case hw::StorageKind::Ahci:
        return std::make_unique<AhciRig>();
      case hw::StorageKind::Nvme:
        return std::make_unique<NvmeRig>();
    }
    return nullptr;
}

// --- Shared conformance matrix ---

class StorageConformance
    : public ::testing::TestWithParam<hw::StorageKind>
{
  protected:
    std::unique_ptr<ConformanceRig> rig = makeRig(GetParam());
};

TEST_P(StorageConformance, ReadDeliversDataAndIrq)
{
    auto &w = *rig;
    w.m->disk().store().write(4242, 1, 0x77ULL << 8 | 1);
    w.startRead(4242);
    w.eq.run();
    EXPECT_EQ(w.irqs, 1);
    EXPECT_TRUE(w.opCompleted());
    EXPECT_EQ(w.m->mem().read64(w.readBuf()),
              hw::sectorToken(0x77ULL << 8 | 1, 4242));
}

TEST_P(StorageConformance, SuppressionGatesIrqNotCompletion)
{
    auto &w = *rig;
    w.m->disk().store().write(100, 1, 0x88ULL << 8 | 1);
    w.suppressIrq();
    w.startRead(100);
    w.eq.run();
    EXPECT_EQ(w.irqs, 0) << "masked interrupts must not fire";
    EXPECT_TRUE(w.opCompleted())
        << "the operation itself must still complete";
    EXPECT_EQ(w.m->mem().read64(w.readBuf()),
              hw::sectorToken(0x88ULL << 8 | 1, 100));
}

TEST_P(StorageConformance, UnsupportedCommandFlagsError)
{
    auto &w = *rig;
    w.issueUnsupported();
    w.eq.run();
    EXPECT_TRUE(w.errorFlagged());
}

TEST_P(StorageConformance, ResetClearsState)
{
    auto &w = *rig;
    w.dirtyThenReset();
    EXPECT_TRUE(w.resetClean());
}

INSTANTIATE_TEST_SUITE_P(AllControllers, StorageConformance,
                         ::testing::Values(hw::StorageKind::Ide,
                                           hw::StorageKind::Ahci,
                                           hw::StorageKind::Nvme),
                         [](const auto &info) {
                             switch (info.param) {
                               case hw::StorageKind::Ide:
                                 return "Ide";
                               case hw::StorageKind::Ahci:
                                 return "Ahci";
                               default:
                                 return "Nvme";
                             }
                         });

// --- IDE-specific register semantics ---

TEST(IdeConformance, Lba28CommandDecodesDeviceBits)
{
    using namespace hw::ide;
    // A disk big enough that LBA28 bits 27:24 are exercised.
    IdeRig w(16 * sim::kGiB);
    // LBA 0x1234567 needs device-register bits (LBA28 >> 24 = 0x1).
    sim::Lba lba = 0x1234567;
    w.m->disk().store().write(lba, 1, 0x88ULL << 8 | 1);
    w.m->mem().write32(0x4000, 0x5000);
    w.m->mem().write16(0x4004, sim::kSectorSize);
    w.m->mem().write16(0x4006, kPrdEot);
    w.m->bus().guestWrite(IoSpace::Pio, kBmBase + kBmPrdtAddr, 0x4000,
                          4);
    w.wr(kBmBase + kBmCommand, kBmCmdToMemory);
    w.wr(kPioBase + kSectorCount, 1);
    w.wr(kPioBase + kLbaLow, lba & 0xFF);
    w.wr(kPioBase + kLbaMid, (lba >> 8) & 0xFF);
    w.wr(kPioBase + kLbaHigh, (lba >> 16) & 0xFF);
    w.wr(kPioBase + kDevice,
         kDeviceLbaMode | ((lba >> 24) & 0x0F));
    w.wr(kPioBase + kCmdStatus, kCmdReadDma);
    w.wr(kBmBase + kBmCommand, kBmCmdToMemory | kBmCmdStart);
    w.eq.run();
    EXPECT_EQ(w.m->mem().read64(0x5000),
              hw::sectorToken(0x88ULL << 8 | 1, lba));
}

TEST(IdeConformance, AltStatusDoesNotAckIntrq)
{
    using namespace hw::ide;
    IdeRig w;
    w.startRead(100);
    w.eq.run();
    ASSERT_EQ(w.irqs, 1);
    // Reading the ALT status must not disturb anything; reading the
    // main status acks INTRQ (modelled as clearing irqPending).
    EXPECT_EQ(w.rd(kCtrlPort), kStatusDrdy);
    EXPECT_EQ(w.rd(kPioBase + kCmdStatus), kStatusDrdy);
}

// --- AHCI-specific register semantics ---

TEST(AhciConformance, CiIsW1SAndClearsOnCompletion)
{
    using namespace hw::ahci;
    AhciRig w;
    w.m->disk().store().write(7, 1, 0x99ULL << 8 | 1);
    w.startRead(7);
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 0u)
        << "device clears CI on completion";
    EXPECT_EQ(w.irqs, 1);
    EXPECT_EQ(w.m->mem().read64(w.readBuf()),
              hw::sectorToken(0x99ULL << 8 | 1, 7));
    // PxIS DHRS is W1C.
    EXPECT_TRUE(w.rd(kPxIs) & kIsDhrs);
    w.wr(kPxIs, kIsDhrs);
    EXPECT_FALSE(w.rd(kPxIs) & kIsDhrs);
}

TEST(AhciConformance, MultipleSlotsRoundRobin)
{
    using namespace hw::ahci;
    AhciRig w;
    w.startPort();
    for (unsigned s : {0u, 5u, 17u, 31u}) {
        w.m->disk().store().write(100 + s, 1,
                                  (0x100ULL + s) << 8 | 1);
        w.buildSlot(s, 100 + s);
    }
    w.wr(kPxCi, (1u << 0) | (1u << 5) | (1u << 17) | (1u << 31));
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 0u);
    for (unsigned s : {0u, 5u, 17u, 31u})
        EXPECT_EQ(w.m->mem().read64(0x30000 + s * 0x1000),
                  hw::sectorToken((0x100ULL + s) << 8 | 1, 100 + s));
}

TEST(AhciConformance, NoProcessingWithoutStartBit)
{
    using namespace hw::ahci;
    AhciRig w;
    w.wr(kGhc, kGhcAe | kGhcIe);
    w.wr(kPxClb, 0x10000);
    w.buildSlot(0, 50);
    // ST not set: CI latches but nothing runs.
    w.wr(kPxCi, 1);
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 1u)
        << "command must stay pending until ST is set";
    // Now start the port: the latched command executes.
    w.wr(kPxCmd, kCmdSt | kCmdFre);
    w.wr(kPxCi, 1);
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 0u);
}

// --- NVMe-specific register semantics ---

TEST(NvmeConformance, PhaseTagTogglesOnQueueWrap)
{
    using namespace hw::nvme;
    NvmeRig w;
    w.enable();
    // Depth-16 queue: drive 20 one-sector reads through it one at a
    // time and watch the phase tag flip after the wrap.
    std::uint32_t tail = 0;
    for (unsigned i = 0; i < 20; ++i) {
        w.m->disk().store().write(200 + i, 1, (0x200ULL + i) << 8 | 1);
        w.buildEntry(tail, 200 + i, kOpRead);
        tail = (tail + 1) % 16;
        w.wr(sqTailDb(1), tail);
        w.eq.run();
    }
    // Entries 0..15 carried phase 1; after the wrap, 16..19 land in
    // slots 0..3 with phase 0.
    EXPECT_EQ(w.cqeStatus(4) & 1, 1);
    EXPECT_EQ(w.cqeStatus(15) & 1, 1);
    EXPECT_EQ(w.cqeStatus(0) & 1, 0);
    EXPECT_EQ(w.cqeStatus(3) & 1, 0);
    EXPECT_EQ(w.irqs, 20);
}

TEST(NvmeConformance, QueueStateReadbackTracksPointers)
{
    using namespace hw::nvme;
    NvmeRig w;
    w.enable();
    EXPECT_EQ(w.rd(sqTailDb(1)), 0u);
    w.m->disk().store().write(9, 1, 0x9ULL << 8 | 1);
    w.buildEntry(0, 9, kOpRead);
    w.wr(sqTailDb(1), 1);
    w.eq.run();
    EXPECT_EQ(w.rd(sqTailDb(1)), 1u);
    // CQ readback: tail advanced to 1, phase still 1 (bit 31).
    std::uint32_t cqState = w.rd(cqHeadDb(1));
    EXPECT_EQ(cqState & 0xFFFF, 1u);
    EXPECT_EQ(cqState >> 31, 1u);
}

TEST(NvmeConformance, RoundRobinAcrossQueuePairs)
{
    using namespace hw::nvme;
    NvmeRig w;
    w.enable();
    // Configure queue pair 0 alongside the default pair 1.
    w.m->mem().fill(0x13000, 0, 8 * kCqEntrySize);
    w.wr(sqBaseReg(0), 0x12000);
    w.wr(cqBaseReg(0), 0x13000);
    w.wr(qDepthReg(0), 8);

    int q0_irqs = 0;
    w.m->intc().registerHandler(kIrqVectorQ0,
                                [&q0_irqs]() { ++q0_irqs; });

    for (unsigned i = 0; i < 4; ++i) {
        w.m->disk().store().write(300 + i, 1, (0x300ULL + i) << 8 | 1);
        sim::Addr sqe = (i % 2 ? 0x10000 : 0x12000) +
                        sim::Addr(i / 2) * kSqEntrySize;
        w.m->mem().fill(sqe, 0, kSqEntrySize);
        w.m->mem().write8(sqe + kSqeOpcode, kOpRead);
        w.m->mem().write16(sqe + kSqeCid,
                           static_cast<std::uint16_t>(i));
        w.m->mem().write64(sqe + kSqePrp1, 0x30000 + i * 0x1000);
        w.m->mem().write64(sqe + kSqeSlba, 300 + i);
        w.m->mem().write16(sqe + kSqeNlb, 0);
    }
    w.wr(sqTailDb(0), 2);
    w.wr(sqTailDb(1), 2);
    w.eq.run();

    EXPECT_EQ(w.m->nvme()->outstanding(0), 0u);
    EXPECT_EQ(w.m->nvme()->outstanding(1), 0u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(w.m->mem().read64(0x30000 + i * 0x1000),
                  hw::sectorToken((0x300ULL + i) << 8 | 1, 300 + i));
    EXPECT_EQ(q0_irqs, 2);
    EXPECT_EQ(w.irqs, 2);
}

} // namespace
