#include "simcore/fault_injector.hh"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace sim {

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::NetDrop: return "net.drop";
      case FaultSite::NetDuplicate: return "net.duplicate";
      case FaultSite::NetReorder: return "net.reorder";
      case FaultSite::NetCorrupt: return "net.corrupt";
      case FaultSite::DiskReadError: return "disk.read_error";
      case FaultSite::DiskWriteError: return "disk.write_error";
      case FaultSite::DiskLatencySpike: return "disk.latency_spike";
      case FaultSite::ServerStall: return "server.stall";
      case FaultSite::ServerCrash: return "server.crash";
      case FaultSite::ServerRestart: return "server.restart";
      case FaultSite::IrqLost: return "irq.lost";
      case FaultSite::IrqSpurious: return "irq.spurious";
      case FaultSite::StoreSourceTimeout: return "store.source_timeout";
      case FaultSite::StoreShardCorrupt: return "store.shard_corrupt";
      case FaultSite::RackOutage: return "rack.outage";
      case FaultSite::RackRecover: return "rack.recover";
      case FaultSite::MigrateStreamDrop: return "migrate.stream_drop";
      case FaultSite::MigrateDestCrash: return "migrate.dest_crash";
      case FaultSite::NicRingStall: return "nic.ring_stall";
      case FaultSite::NicFrameDrop: return "nic.frame_drop";
      case FaultSite::RepairSourceTimeout:
        return "store.repair_source_timeout";
      case FaultSite::RepairDestCrash: return "store.repair_dest_crash";
      case FaultSite::kCount: break;
    }
    return "?";
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

FaultInjector::FaultInjector(std::uint64_t seed, unsigned shard)
    : seed_(seed), shard_(shard), sharded_(true)
{
}

void
FaultInjector::arm(FaultSite site, SitePlan plan)
{
    assert(site != FaultSite::kCount);
    assert(std::is_sorted(plan.fireOn.begin(), plan.fireOn.end()));
    Site &s = at(site);
    if (!s.armed)
        ++numArmed_;
    s.armed = true;
    s.plan = std::move(plan);
    // A fresh stream per arm(): re-arming the same site in a second
    // run replays the same draws regardless of earlier plans. A
    // sharded injector derives its site streams through the
    // counter-mode shard salt so racks never share draws.
    s.rng = Rng(sharded_
                    ? Rng::seedForShard(faultSiteName(site), seed_,
                                        shard_)
                    : Rng::seedFrom(faultSiteName(site), seed_));
}

void
FaultInjector::disarm(FaultSite site)
{
    Site &s = at(site);
    if (s.armed)
        --numArmed_;
    s.armed = false;
}

bool
FaultInjector::exhausted(const Site &s) const
{
    if (s.plan.maxTriggers && s.stats.triggers >= s.plan.maxTriggers)
        return true;
    if (!s.plan.fireOn.empty())
        return s.stats.eligible >= s.plan.fireOn.back();
    return s.plan.probability <= 0.0;
}

bool
FaultInjector::active(FaultSite site) const
{
    const Site &s = at(site);
    return s.armed && !exhausted(s);
}

bool
FaultInjector::shouldFire(FaultSite site, std::uint64_t key)
{
    Site &s = at(site);
    if (!s.armed)
        return false;
    ++s.stats.queries;
    if (key < s.plan.keyLo || key > s.plan.keyHi)
        return false;
    ++s.stats.eligible;
    if (s.plan.maxTriggers && s.stats.triggers >= s.plan.maxTriggers)
        return false;

    bool fire;
    if (!s.plan.fireOn.empty()) {
        fire = std::binary_search(s.plan.fireOn.begin(),
                                  s.plan.fireOn.end(),
                                  s.stats.eligible);
    } else {
        fire = s.plan.probability > 0.0 &&
               s.rng.chance(s.plan.probability);
    }
    if (fire)
        ++s.stats.triggers;
    return fire;
}

void
FaultInjector::noteFired(FaultSite site)
{
    ++at(site).stats.triggers;
}

Tick
FaultInjector::magnitude(FaultSite site, Tick def) const
{
    const Site &s = at(site);
    return (s.armed && s.plan.magnitude) ? s.plan.magnitude : def;
}

std::uint64_t
FaultInjector::triggers(FaultSite site) const
{
    return at(site).stats.triggers;
}

std::uint64_t
FaultInjector::queries(FaultSite site) const
{
    return at(site).stats.queries;
}

const SiteStats &
FaultInjector::stats(FaultSite site) const
{
    return at(site).stats;
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    bool first = true;
    for (unsigned i = 0; i < kNumFaultSites; ++i) {
        const Site &s = sites_[i];
        if (!s.armed && !s.stats.triggers && !s.stats.queries)
            continue;
        if (!first)
            os << " ";
        first = false;
        os << faultSiteName(static_cast<FaultSite>(i)) << "="
           << s.stats.triggers << "/" << s.stats.queries;
    }
    return os.str();
}

} // namespace sim
