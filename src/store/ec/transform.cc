#include "store/ec/transform.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace store::ec {

sim::Bytes
TransformPlan::fetchBytes() const
{
    sim::Bytes total = 0;
    for (const Build &b : builds)
        total += b.plan.fetchBytes();
    return total;
}

std::optional<TransformPlan>
transformPlan(const Code &from, const Code &to,
              const std::vector<net::MacAddr> &new_stripe,
              const LiveFn &live, std::uint32_t chunk_sectors)
{
    sim::fatalIf(from.dataShards() != to.dataShards(),
                 "transform cannot change the data shard count (",
                 from.dataShards(), " -> ", to.dataShards(), ")");
    sim::fatalIf(new_stripe.size() < to.width(),
                 "transform stripe narrower than the target code");
    const unsigned k = to.dataShards();

    // Old/new global parities sit after the local tail of each
    // layout; they carry over one-for-one.
    unsigned from_globals_at = k + from.localParities();
    unsigned to_globals_at = k + to.localParities();
    unsigned reuse =
        std::min(from.globalParities(), to.globalParities());

    TransformPlan tp;
    for (unsigned t = 0; t < reuse; ++t)
        tp.reused.push_back(TransformPlan::Reuse{from_globals_at + t,
                                                 to_globals_at + t});
    // Everything else in the old parity tail retires.
    for (unsigned i = k; i < from.width(); ++i) {
        bool kept = i >= from_globals_at && i < from_globals_at + reuse;
        if (!kept)
            tp.retired.push_back(i);
    }
    // Build the target parity members that did not carry over, each
    // by the target code's own repair plan (this is where Lrc's
    // locals read one group instead of k shards).
    for (unsigned i = k; i < to.width(); ++i) {
        bool reused_slot =
            i >= to_globals_at && i < to_globals_at + reuse;
        if (reused_slot)
            continue;
        auto plan = to.repairPlan(new_stripe, i, live, chunk_sectors);
        if (!plan)
            return std::nullopt;
        tp.builds.push_back(
            TransformPlan::Build{i, std::move(*plan)});
        tp.naiveBytes += sim::Bytes(chunk_sectors) * sim::kSectorSize;
    }
    // The naive path also recomputes the carried-over globals.
    tp.naiveBytes +=
        sim::Bytes(reuse) * chunk_sectors * sim::kSectorSize;
    return tp;
}

} // namespace store::ec
