/**
 * @file
 * AHCI host bus adapter model (one port, 32 command slots).
 *
 * The controller fetches command headers, tables (CFIS + PRDT) from
 * physical memory exactly as real hardware does, which is what allows
 * the BMcast AHCI mediator to interpret, withhold, substitute and
 * inject commands purely through the architected interface: swap
 * PxCLB, issue PxCI bits, poll PxCI/PxTFD, gate PxIE.
 */

#ifndef HW_AHCI_CONTROLLER_HH
#define HW_AHCI_CONTROLLER_HH

#include <cstdint>

#include "hw/ahci_regs.hh"
#include "hw/disk.hh"
#include "hw/dma.hh"
#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/phys_mem.hh"
#include "simcore/sim_object.hh"

namespace hw {

/** Decoded view of one issued AHCI command (exposed for tests). */
struct AhciCommand
{
    unsigned slot = 0;
    bool isWrite = false;
    sim::Lba lba = 0;
    std::uint32_t sectors = 0;
};

/** The HBA with one attached SATA drive. */
class AhciController : public sim::SimObject
{
  public:
    AhciController(sim::EventQueue &eq, std::string name, IoBus &bus,
                   PhysMem &mem, Disk &disk, IrqLine irq);

    /** @name Register interface (invoked via the IoBus). */
    /// @{
    std::uint64_t mmioRead(sim::Addr offset, unsigned size);
    void mmioWrite(sim::Addr offset, std::uint64_t value, unsigned size);
    /// @}

    /** Pending command-issue bits. */
    std::uint32_t ci() const { return ci_; }
    /** True while a slot is being executed on the media. */
    bool commandActive() const { return active; }

    std::uint64_t commandsCompleted() const { return numCompleted; }

    Disk &disk() { return disk_; }

    /**
     * Decode the command currently programmed in @p slot of the
     * in-effect command list (reads guest memory like the hardware
     * would). Used by tests and by the mediator implementation.
     */
    AhciCommand decodeSlot(unsigned slot) const;

  private:
    void processNext();
    void finishSlot(unsigned slot, const AhciCommand &cmd);
    std::vector<SgEntry> parsePrdt(sim::Addr table,
                                   unsigned prdtl) const;

    IoBus &bus;
    PhysMem &mem;
    Disk &disk_;
    IrqLine irq;

    std::uint32_t ghc = ahci::kGhcAe;
    std::uint32_t is = 0;
    std::uint32_t pxClb = 0;
    std::uint32_t pxFb = 0;
    std::uint32_t pxIs = 0;
    std::uint32_t pxIe = 0;
    std::uint32_t pxCmd = 0;
    std::uint32_t pxTfd = 0x50; //!< DRDY | seek-complete
    std::uint32_t pxSctl = 0;
    std::uint32_t pxSerr = 0;
    std::uint32_t ci_ = 0;

    bool active = false;
    unsigned lastSlot = ahci::kNumSlots - 1;
    std::uint64_t numCompleted = 0;
};

} // namespace hw

#endif // HW_AHCI_CONTROLLER_HH
