/**
 * @file
 * Control-plane vocabulary: tenants, QoS classes, lease lifecycle
 * states, typed admission rejections, and the deployment rate-gate
 * signature shared with the data-plane engines.
 *
 * This header is the only coupling the data plane needs: the gate is
 * a plain std::function signature (structurally identical to
 * bmcast::RateGate and store::ChunkStreamer::RateGate), so the
 * engines that draw tokens never link against the control plane.
 */

#ifndef CLOUD_TYPES_HH
#define CLOUD_TYPES_HH

#include <cstdint>
#include <functional>

#include "simcore/types.hh"

namespace cloud {

/** Tenant identity; 0 is the anonymous/legacy tenant. */
using TenantId = std::uint32_t;

/** Admission priority classes, highest first. Placement is strict
 *  priority across classes, FIFO within one. */
enum class QosClass : std::uint8_t {
    Critical = 0, ///< serving-capacity restoration, repairs
    Standard,     ///< ordinary tenant leases
    Scavenger,    ///< preemptible batch / spot capacity
};

constexpr unsigned kNumQosClasses = 3;

/** Typed admission backpressure. */
enum class RejectReason : std::uint8_t {
    None = 0,
    QueueFull,      ///< region-wide admission queue at capacity
    TenantQueueCap, ///< this tenant's queued share at its cap
    RegionFull,     ///< fail-fast lease and no free machine
    NoUsableRack,   ///< free machines exist, all in failed racks
};

/** Async lease lifecycle. */
enum class LeaseState : std::uint8_t {
    Queued = 0, ///< admitted, waiting for capacity
    Placing,    ///< slot selection in progress
    Deploying,  ///< BMcast pipeline running on the chosen node
    Serving,    ///< guest up (bare metal may still be pending)
    Migrating,  ///< live migration to a reserved destination slot
    Releasing,  ///< teardown + scrub in progress
    Released,   ///< slot returned to the pool (terminal)
    Rejected,   ///< admission backpressure (terminal)
};

/**
 * Typed migration refusal. Separate from RejectReason: admission
 * rejections are terminal lease outcomes, a refused migrate leaves
 * the lease Serving untouched.
 */
enum class MigrateReject : std::uint8_t {
    None = 0,
    NotServing,   ///< lease is not currently Serving
    DestBusy,     ///< destination slot is occupied (or scrubbing)
    DestRackDown, ///< destination rack drained by the health probe
    SameSlot,     ///< destination is the lease's current slot
};

const char *qosClassName(QosClass c);
const char *rejectReasonName(RejectReason r);
const char *leaseStateName(LeaseState s);
const char *migrateRejectName(MigrateReject r);

/**
 * Deployment rate gate: ask to move @p bytes at @p now; the gate
 * books the transfer on its budget buckets and returns the earliest
 * tick the transfer may be issued (>= now). Issued from the shard
 * that owns the flow's rack.
 */
using RateGate = std::function<sim::Tick(sim::Bytes, sim::Tick)>;

} // namespace cloud

#endif // CLOUD_TYPES_HH
