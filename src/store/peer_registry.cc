#include "store/peer_registry.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace store {

void
PeerRegistry::registerPeer(net::MacAddr mac)
{
    peers_.emplace(mac, Peer{});
}

bool
PeerRegistry::known(net::MacAddr mac) const
{
    return peers_.count(mac) != 0;
}

std::vector<Digest>
PeerRegistry::deregisterPeer(net::MacAddr mac)
{
    auto it = peers_.find(mac);
    if (it == peers_.end())
        return {};
    std::vector<Digest> held(it->second.chunks.begin(),
                             it->second.chunks.end());
    for (Digest d : held)
        removeChunk(mac, d);
    peers_.erase(it);
    return held;
}

void
PeerRegistry::addChunk(net::MacAddr mac, Digest d)
{
    auto it = peers_.find(mac);
    sim::panicIfNot(it != peers_.end(),
                    "chunk registered for unknown peer");
    if (!it->second.chunks.insert(d).second)
        return;
    holders_[d].push_back(mac);
    ++registrations_;
}

void
PeerRegistry::removeChunk(net::MacAddr mac, Digest d)
{
    auto it = peers_.find(mac);
    if (it == peers_.end() || it->second.chunks.erase(d) == 0)
        return;
    auto hit = holders_.find(d);
    if (hit == holders_.end())
        return;
    auto &v = hit->second;
    v.erase(std::remove(v.begin(), v.end(), mac), v.end());
    if (v.empty())
        holders_.erase(hit);
}

bool
PeerRegistry::holds(net::MacAddr mac, Digest d) const
{
    auto it = peers_.find(mac);
    return it != peers_.end() && it->second.chunks.count(d) != 0;
}

std::vector<net::MacAddr>
PeerRegistry::sourcesFor(Digest d, net::MacAddr self) const
{
    auto hit = holders_.find(d);
    if (hit == holders_.end())
        return {};
    std::vector<net::MacAddr> out;
    out.reserve(hit->second.size());
    for (net::MacAddr mac : hit->second) {
        if (mac != self)
            out.push_back(mac);
    }
    std::stable_sort(out.begin(), out.end(),
                     [this](net::MacAddr a, net::MacAddr b) {
                         const Peer &pa = peers_.at(a);
                         const Peer &pb = peers_.at(b);
                         if (pa.active != pb.active)
                             return pa.active < pb.active;
                         if (pa.served != pb.served)
                             return pa.served < pb.served;
                         return a < b;
                     });
    return out;
}

void
PeerRegistry::noteFetchStart(net::MacAddr mac)
{
    auto it = peers_.find(mac);
    if (it != peers_.end())
        ++it->second.active;
}

void
PeerRegistry::noteFetchEnd(net::MacAddr mac)
{
    auto it = peers_.find(mac);
    if (it == peers_.end())
        return;
    if (it->second.active > 0)
        --it->second.active;
    ++it->second.served;
}

} // namespace store
