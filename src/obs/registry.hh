/**
 * @file
 * Metrics registry: named counters, gauges, and log-linear histograms
 * with label sets.
 *
 * The registry is the single queryable source of truth for run
 * statistics. Producers either hold a handle (Counter&/Gauge&/
 * Histogram& — stable for the registry's lifetime, std::map nodes
 * never move) and update it on the hot path, or keep their cheap
 * native counters and *publish* them into a registry at snapshot
 * time (the pattern used for KernelCounters and MediatorStats, which
 * preserves bit-identical disarmed runs). Consumers print an aligned
 * table or dump a JSON snapshot; the three formerly duplicated
 * stat-printing paths (bench harness, BMCAST_KERNEL_STATS dump,
 * simcore tables) all render through here.
 *
 * Histograms are log-linear (HDR-style): each power-of-two octave is
 * split into 16 linear sub-buckets, giving <= 6.25% relative error
 * over the full uint64 range in 976 buckets (~8 KiB). record() is
 * allocation-free.
 */

#ifndef OBS_REGISTRY_HH
#define OBS_REGISTRY_HH

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace obs {

/** Monotonic event count. */
struct Counter
{
    std::uint64_t value = 0;

    void add(std::uint64_t n = 1) { value += n; }
    void set(std::uint64_t v) { value = v; }
};

/** Point-in-time level. */
struct Gauge
{
    double value = 0.0;

    void set(double v) { value = v; }
};

/** Log-linear histogram of uint64 samples. */
class Histogram
{
  public:
    static constexpr unsigned kSubBucketBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Octaves 4..63 contribute 16 buckets each on top of the 16
     *  exact values 0..15: ((63 - 3) << 4) + 15 + 1. */
    static constexpr std::size_t kNumBuckets =
        ((63 - (kSubBucketBits - 1)) << kSubBucketBits) + kSubBuckets;

    /** Bucket holding @p v. Values 0..15 get exact buckets. */
    static constexpr std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        const unsigned octave = std::bit_width(v) - 1;
        const unsigned sub =
            (v >> (octave - kSubBucketBits)) & (kSubBuckets - 1);
        return ((octave - (kSubBucketBits - 1))
                << kSubBucketBits) +
               sub;
    }

    /** Smallest value mapping to bucket @p idx. */
    static constexpr std::uint64_t
    lowerBound(std::size_t idx)
    {
        if (idx < kSubBuckets)
            return idx;
        const unsigned octave =
            static_cast<unsigned>(idx >> kSubBucketBits) +
            (kSubBucketBits - 1);
        const std::uint64_t sub = idx & (kSubBuckets - 1);
        return (kSubBuckets + sub) << (octave - kSubBucketBits);
    }

    void
    record(std::uint64_t v)
    {
        ++counts_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Value at quantile @p q in [0, 1]: the lower bound of the
     * bucket containing the q-th sample (deterministic, biased at
     * most one bucket low).
     */
    std::uint64_t quantile(double q) const;

    std::uint64_t bucketCount(std::size_t idx) const
    {
        return counts_[idx];
    }

  private:
    std::array<std::uint64_t, kNumBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/** The registry. */
class Registry
{
  public:
    /** Find-or-create. References stay valid for the registry's
     *  lifetime. @p label distinguishes instances of one metric
     *  (e.g. counter("mediator.vmm_ops", "ide")). */
    Counter &counter(const std::string &name,
                     const std::string &label = "");
    Gauge &gauge(const std::string &name,
                 const std::string &label = "");
    Histogram &histogram(const std::string &name,
                         const std::string &label = "");

    /** Lookup without creation; nullptr when absent. */
    const Counter *findCounter(const std::string &name,
                               const std::string &label = "") const;
    const Gauge *findGauge(const std::string &name,
                           const std::string &label = "") const;
    const Histogram *
    findHistogram(const std::string &name,
                  const std::string &label = "") const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /**
     * Render every metric as an aligned two-column table in
     * registration order, e.g.
     *
     *     kernel.executed [main]             123456
     *     aoe.rtt_ns p50                     84000
     *
     * Histograms expand to count/mean/p50/p90/p99/max rows.
     */
    void printTable(std::ostream &os) const;

    /** JSON snapshot of every metric (machine-readable sibling of
     *  printTable). */
    void writeJson(std::ostream &os) const;

  private:
    struct Key
    {
        std::string name;
        std::string label;

        bool
        operator<(const Key &o) const
        {
            if (name != o.name)
                return name < o.name;
            return label < o.label;
        }
    };

    template <typename T>
    struct Entry
    {
        T metric;
        std::uint64_t seq = 0; //!< registration order for printing
    };

    template <typename T>
    T &findOrCreate(std::map<Key, Entry<T>> &m,
                    const std::string &name,
                    const std::string &label);

    std::map<Key, Entry<Counter>> counters_;
    std::map<Key, Entry<Gauge>> gauges_;
    std::map<Key, Entry<Histogram>> histograms_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace obs

#endif // OBS_REGISTRY_HH
