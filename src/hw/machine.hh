/**
 * @file
 * Composition of one simulated server (the paper's FUJITSU PRIMERGY
 * RX200 S6 class: 12 cores, 96 GB RAM, one SATA drive behind an IDE
 * or AHCI controller, two gigabit NICs — one dedicated to the VMM —
 * and an InfiniBand HCA).
 */

#ifndef HW_MACHINE_HH
#define HW_MACHINE_HH

#include <memory>
#include <string>

#include "hw/ahci_controller.hh"
#include "hw/disk.hh"
#include "hw/firmware.hh"
#include "hw/ib_hca.hh"
#include "hw/ide_controller.hh"
#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/nic.hh"
#include "hw/nvme_controller.hh"
#include "hw/phys_mem.hh"
#include "hw/virt_profile.hh"
#include "hw/vmx.hh"
#include "net/network.hh"
#include "simcore/sim_object.hh"

namespace hw {

/** Which storage host controller the machine is built with. */
enum class StorageKind { Ide, Ahci, Nvme };

/** Machine configuration. */
struct MachineConfig
{
    std::string name = "node";
    unsigned cores = 12;
    sim::Bytes memory = 96 * sim::kGiB;
    StorageKind storage = StorageKind::Ahci;
    DiskParams disk;
    NicModel guestNicModel = NicModel::Pro1000;
    NicModel mgmtNicModel = NicModel::Pro1000;
    /** Server firmware cold-init time (paper §5.1: 133 s). */
    sim::Tick firmwareColdInit = 133 * sim::kSec;
    bool hasInfiniBand = false;
    unsigned ibNodeId = 0;
    IbParams ib;
    std::uint64_t seed = 1;
};

/** MMIO bases of the two NICs. */
constexpr sim::Addr kGuestNicMmio = 0xFEA00000;
constexpr sim::Addr kMgmtNicMmio = 0xFEA80000;

/** IRQ vectors. */
constexpr unsigned kGuestNicIrq = 10;
constexpr unsigned kMgmtNicIrq = 9;

/** One server. */
class Machine : public sim::SimObject
{
  public:
    /**
     * Build a machine attached to @p lan (guest traffic) and
     * @p mgmtLan (VMM deployment traffic); the two may be the same
     * network. @p ibFabric may be nullptr when the config has no HCA.
     */
    Machine(sim::EventQueue &eq, MachineConfig config,
            net::Network &lan, net::MacAddr guestMac,
            net::Network &mgmtLan, net::MacAddr mgmtMac,
            IbFabric *ibFabric = nullptr);

    const MachineConfig &config() const { return cfg; }

    PhysMem &mem() { return mem_; }
    IoBus &bus() { return bus_; }
    InterruptController &intc() { return intc_; }
    VmxEngine &vmx() { return vmx_; }
    Disk &disk() { return disk_; }
    Firmware &firmware() { return fw; }

    StorageKind storageKind() const { return cfg.storage; }
    /** Non-null when storageKind() == Ide. */
    IdeController *ide() { return ide_.get(); }
    /** Non-null when storageKind() == Ahci. */
    AhciController *ahci() { return ahci_.get(); }
    /** Non-null when storageKind() == Nvme. */
    NvmeController *nvme() { return nvme_.get(); }

    E1000Nic &guestNic() { return *guestNic_; }
    E1000Nic &mgmtNic() { return *mgmtNic_; }
    /** Non-null when the config includes an HCA. */
    IbHca *hca() { return hca_.get(); }

    /** The active virtualization cost profile (see virt_profile.hh). */
    const VirtProfile &profile() const { return profile_; }
    void setProfile(const VirtProfile &p) { profile_ = p; }
    void clearProfile() { profile_ = bareMetalProfile(); }

    /** Number of physical cores. */
    unsigned cores() const { return cfg.cores; }

    /**
     * Attach a fault injector to this machine's fault sites (disk
     * media errors / latency spikes, lost and spurious IRQs).  Pass
     * nullptr to detach.  Network-side sites are attached on the
     * net::Network itself.
     */
    void
    setFaultInjector(sim::FaultInjector *fi)
    {
        disk_.setFaultInjector(fi);
        intc_.setFaultInjector(fi);
    }

  private:
    MachineConfig cfg;
    VirtProfile profile_;

    PhysMem mem_;
    IoBus bus_;
    InterruptController intc_;
    VmxEngine vmx_;
    Firmware fw;
    Disk disk_;
    std::unique_ptr<IdeController> ide_;
    std::unique_ptr<AhciController> ahci_;
    std::unique_ptr<NvmeController> nvme_;
    std::unique_ptr<E1000Nic> guestNic_;
    std::unique_ptr<E1000Nic> mgmtNic_;
    std::unique_ptr<IbHca> hca_;
};

} // namespace hw

#endif // HW_MACHINE_HH
