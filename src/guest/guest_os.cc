#include "guest/guest_os.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace guest {

GuestOs::GuestOs(sim::EventQueue &eq, std::string name,
                 hw::Machine &m, GuestOsParams params)
    : sim::SimObject(eq, std::move(name)),
      machine_(m), params_(params),
      rng(sim::Rng::seedFrom(this->name(), params.seed)),
      arena(params.arenaBase, params.arenaSize),
      obsTrack_(this->name())
{
    if (params.externalDriver) {
        external = params.externalDriver;
        return;
    }
    hw::BusView view(machine_.bus(), /*guestContext=*/true);
    if (machine_.storageKind() == hw::StorageKind::Ide) {
        driver = std::make_unique<IdeDriver>(
            eq, this->name() + ".ide", view, machine_.mem(),
            machine_.intc(), arena);
    } else if (machine_.storageKind() == hw::StorageKind::Ahci) {
        driver = std::make_unique<AhciDriver>(
            eq, this->name() + ".ahci", view, machine_.mem(),
            machine_.intc(), arena);
    } else {
        driver = std::make_unique<NvmeDriver>(
            eq, this->name() + ".nvme", view, machine_.mem(),
            machine_.intc(), arena);
    }
}

sim::Bytes
GuestOs::bootReadBytes() const
{
    const BootTrace &b = params_.boot;
    return b.loaderBytes + b.kernelBytes +
           sim::Bytes(b.numReads) * b.avgReadBytes;
}

void
GuestOs::start(std::function<void()> on_ready)
{
    sim::panicIfNot(!ready, "guest started twice");
    readyCb = std::move(on_ready);
    bootStart = now();
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        const std::uint32_t track = obsTrack_.id(t);
        t.milestone(track, "guest.boot_start", bootStart);
        // The track id doubles as the async id: stable across runs
        // (unlike a pointer) and unique per guest instance.
        t.asyncBegin(track, "guest", "boot", track, bootStart);
    }
    blk().initialize();
    bootSequentialPhase();
}

void
GuestOs::bootSequentialPhase()
{
    // Loader + kernel: sequential 1 MiB reads from the start of the
    // image, strictly ordered (boot loaders are synchronous).
    sim::Bytes total_bytes =
        params_.boot.loaderBytes + params_.boot.kernelBytes;
    auto total =
        static_cast<std::uint32_t>(total_bytes / sim::kSectorSize);

    bootSeqStep(0, total);
}

void
GuestOs::halt()
{
    halted = true;
    // Destroying the driver unregisters its interrupt handlers and
    // frees the completion callbacks of anything still in flight.
    driver.reset();
    external = nullptr;
}

void
GuestOs::resume()
{
    sim::panicIfNot(!ready && !halted,
                    "resume needs a fresh guest instance");
    blk().initialize();
    ready = true;
    bootStart = bootEnd = now();
}

void
GuestOs::bootSeqStep(std::uint32_t done, std::uint32_t total)
{
    if (halted)
        return;
    if (done >= total) {
        lastLba = total;
        lastCount = 0;
        bootScatterPhase(params_.boot.numReads);
        return;
    }
    std::uint32_t n = std::min<std::uint32_t>(2048, total - done);
    sim::Lba lba = done;
    blk().read(lba, n,
               [this, done, n, total](const std::vector<std::uint64_t> &) {
                   bootSeqStep(done + n, total);
               });
}

void
GuestOs::bootScatterPhase(unsigned remaining)
{
    if (halted)
        return;
    if (remaining == 0) {
        finishBoot();
        return;
    }

    // CPU burst between file reads; virtualization slows it by the
    // VMM's CPU steal plus a small nested-paging factor.
    const BootTrace &b = params_.boot;
    double slice =
        static_cast<double>(b.cpuTotal) / std::max(1u, b.numReads);
    slice *= rng.uniformReal(0.5, 1.5);
    const hw::VirtProfile &p = machine_.profile();
    double factor = 1.0 + p.vmmCpuSteal +
                    (p.nestedPaging ? 0.04 : 0.0) +
                    p.cachePollutionFactor * 0.5;
    auto delay = static_cast<sim::Tick>(slice * factor);

    schedule(delay, [this, remaining]() {
        if (halted)
            return;
        const BootTrace &bt = params_.boot;
        double bytes = rng.exponential(
            static_cast<double>(bt.avgReadBytes));
        auto count = static_cast<std::uint32_t>(
            std::clamp(bytes / static_cast<double>(sim::kSectorSize),
                       1.0, 512.0));

        sim::Lba lba;
        if (lastCount != 0 && rng.chance(bt.seqFraction)) {
            lba = lastLba + lastCount;
        } else {
            sim::Lba region_sectors =
                bt.regionBytes / sim::kSectorSize;
            lba = rng.uniformInt(0, region_sectors - count - 8) & ~7ULL;
        }
        lastLba = lba;
        lastCount = count;

        blk().read(lba, count,
                     [this, remaining](
                         const std::vector<std::uint64_t> &) {
                         bootScatterPhase(remaining - 1);
                     });
    });
}

void
GuestOs::finishBoot()
{
    ready = true;
    bootEnd = now();
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        const std::uint32_t track = obsTrack_.id(t);
        t.asyncEnd(track, "guest", "boot", track, bootEnd);
        t.milestone(track, "guest.boot_done", bootEnd,
                    static_cast<double>(bootEnd - bootStart));
    }
    if (readyCb)
        readyCb();
}

} // namespace guest
