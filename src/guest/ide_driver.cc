#include "guest/ide_driver.hh"

#include <algorithm>

#include "hw/dma.hh"
#include "hw/ide_regs.hh"
#include "simcore/logging.hh"

namespace guest {

using namespace hw::ide;
using hw::IoSpace;

IdeDriver::IdeDriver(sim::EventQueue &eq, std::string name,
                     hw::BusView view_, hw::PhysMem &mem_,
                     hw::InterruptController &intc,
                     hw::MemArena &arena)
    : sim::SimObject(eq, std::move(name)), view(view_), mem(mem_),
      intc(intc), wdog(eq, [this]() {
          // Poll the ISR; it bails on BSY, so a genuinely slow
          // command survives the poll and we keep watching.
          auto guard = alive;
          onIrq();
          return *guard && chunkActive;
      })
{
    prdTable = arena.alloc(64 * kPrdEntrySize, 64);
    buffer = arena.alloc(sim::Bytes(kMaxSectors) * sim::kSectorSize,
                         4096);
}

IdeDriver::~IdeDriver()
{
    *alive = false;
    if (irqHandler)
        intc.unregisterHandler(kIrqVector, irqHandler);
}

void
IdeDriver::initialize()
{
    if (!irqHandler)
        irqHandler =
            intc.registerHandler(kIrqVector, [this]() { onIrq(); });
}

void
IdeDriver::read(sim::Lba lba, std::uint32_t count, ReadDone done)
{
    sim::panicIfNot(count > 0, "zero-sector read");
    Op op;
    op.lba = lba;
    op.count = count;
    op.readDone = std::move(done);
    op.submitted = now();
    op.tokens.resize(count);
    queue.push_back(std::move(op));
    pump();
}

void
IdeDriver::write(sim::Lba lba, std::uint32_t count,
                 std::uint64_t content_base, WriteDone done)
{
    sim::panicIfNot(count > 0, "zero-sector write");
    Op op;
    op.isWrite = true;
    op.lba = lba;
    op.count = count;
    op.contentBase = content_base;
    op.writeDone = std::move(done);
    op.submitted = now();
    queue.push_back(std::move(op));
    pump();
}

void
IdeDriver::pump()
{
    if (chunkActive || queue.empty())
        return;
    issueChunk();
}

void
IdeDriver::issueChunk()
{
    Op &op = queue.front();
    sim::Lba lba = op.lba + op.doneSectors;
    std::uint32_t n = std::min(kMaxSectors, op.count - op.doneSectors);
    chunkActive = true;
    chunkSectors = n;

    if (op.isWrite) {
        hw::fillTokenBuffer(mem, buffer, lba, n, op.contentBase);
    }

    // Build the PRD table: 64 KiB elements, EOT on the last.
    sim::Bytes total = sim::Bytes(n) * sim::kSectorSize;
    sim::Addr entry = prdTable;
    sim::Addr buf = buffer;
    while (total > 0) {
        sim::Bytes chunk = std::min<sim::Bytes>(total, 65536);
        mem.write32(entry, static_cast<std::uint32_t>(buf));
        mem.write16(entry + 4,
                    static_cast<std::uint16_t>(chunk == 65536 ? 0
                                                              : chunk));
        total -= chunk;
        buf += chunk;
        mem.write16(entry + 6, total == 0 ? kPrdEot : 0);
        entry += kPrdEntrySize;
    }

    // Program the bus master, then the task file, then go.
    view.write(IoSpace::Pio, kBmBase + kBmPrdtAddr,
               static_cast<std::uint32_t>(prdTable), 4);
    view.write(IoSpace::Pio, kBmBase + kBmCommand,
               op.isWrite ? 0 : kBmCmdToMemory, 1);

    // LBA48 task file: high bytes first (they land in the "previous"
    // register slots), then low bytes.
    view.write(IoSpace::Pio, kPioBase + kSectorCount, (n >> 8) & 0xFF,
               1);
    view.write(IoSpace::Pio, kPioBase + kSectorCount, n & 0xFF, 1);
    view.write(IoSpace::Pio, kPioBase + kLbaLow, (lba >> 24) & 0xFF, 1);
    view.write(IoSpace::Pio, kPioBase + kLbaMid, (lba >> 32) & 0xFF, 1);
    view.write(IoSpace::Pio, kPioBase + kLbaHigh, (lba >> 40) & 0xFF,
               1);
    view.write(IoSpace::Pio, kPioBase + kLbaLow, lba & 0xFF, 1);
    view.write(IoSpace::Pio, kPioBase + kLbaMid, (lba >> 8) & 0xFF, 1);
    view.write(IoSpace::Pio, kPioBase + kLbaHigh, (lba >> 16) & 0xFF,
               1);
    view.write(IoSpace::Pio, kPioBase + kDevice, kDeviceLbaMode, 1);
    view.write(IoSpace::Pio, kPioBase + kCmdStatus,
               op.isWrite ? kCmdWriteDmaExt : kCmdReadDmaExt, 1);

    view.write(IoSpace::Pio, kBmBase + kBmCommand,
               (op.isWrite ? 0 : kBmCmdToMemory) | kBmCmdStart, 1);
    wdog.arm();
}

void
IdeDriver::onIrq()
{
    if (!chunkActive)
        return; // spurious (e.g. raised for someone else)

    // ISR protocol: read status (acks INTRQ), check BM, stop it,
    // clear the interrupt bit.
    auto status = static_cast<std::uint8_t>(
        view.read(IoSpace::Pio, kPioBase + kCmdStatus, 1));
    if (status & kStatusBsy)
        return; // not ours yet
    view.read(IoSpace::Pio, kBmBase + kBmStatus, 1);
    view.write(IoSpace::Pio, kBmBase + kBmCommand, 0, 1);
    view.write(IoSpace::Pio, kBmBase + kBmStatus, kBmStIrq, 1);

    Op &op = queue.front();
    if (!op.isWrite) {
        sim::Lba lba = op.lba + op.doneSectors;
        (void)lba;
        for (std::uint32_t i = 0; i < chunkSectors; ++i)
            op.tokens[op.doneSectors + i] =
                hw::bufferTokenAt(mem, buffer, i);
    }
    op.doneSectors += chunkSectors;
    chunkActive = false;

    if (op.doneSectors == op.count) {
        latencySum += now() - op.submitted;
        ++numOps;
        Op finished = std::move(op);
        queue.pop_front();
        auto guard = alive;
        if (finished.isWrite) {
            if (finished.writeDone)
                finished.writeDone();
        } else if (finished.readDone) {
            finished.readDone(finished.tokens);
        }
        if (!*guard)
            return;
    }
    pump(); // issues the next chunk (re-arming the watchdog), if any
    if (!chunkActive)
        wdog.disarm();
}

} // namespace guest
