#include "obs/run_report.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

namespace obs {

RunReport
RunReport::build(const Tracer &t)
{
    RunReport r;
    r.events_.reserve(t.milestones().size());
    for (const Milestone &m : t.milestones()) {
        r.events_.push_back({m.ts, t.trackName(m.track),
                             m.name != nullptr ? m.name : "",
                             m.value});
    }
    std::stable_sort(r.events_.begin(), r.events_.end(),
                     [](const MilestoneEvent &a,
                        const MilestoneEvent &b) {
                         return a.ts < b.ts;
                     });
    for (const MilestoneEvent &e : r.events_) {
        MilestoneSummary &s = r.summary_[e.name];
        if (s.count == 0)
            s.first = e.ts;
        s.last = e.ts;
        ++s.count;
    }
    return r;
}

std::optional<sim::Tick>
RunReport::firstTs(const std::string &name) const
{
    auto it = summary_.find(name);
    if (it == summary_.end())
        return std::nullopt;
    return it->second.first;
}

std::uint64_t
RunReport::count(const std::string &name) const
{
    auto it = summary_.find(name);
    return it == summary_.end() ? 0 : it->second.count;
}

namespace {

void
jsonEscape(std::ostream &os, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

} // namespace

void
RunReport::writeJson(std::ostream &os) const
{
    os << "{\n  \"milestones\": [";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const MilestoneEvent &e = events_[i];
        os << (i == 0 ? "\n" : ",\n") << "    {\"ts_ns\": " << e.ts
           << ", \"track\": \"";
        jsonEscape(os, e.track);
        os << "\", \"name\": \"";
        jsonEscape(os, e.name);
        os << "\"";
        if (e.value != 0.0)
            os << ", \"value\": " << e.value;
        os << "}";
    }
    os << (events_.empty() ? "" : "\n  ") << "],\n  \"summary\": {";
    bool first = true;
    for (const auto &[name, s] : summary_) {
        os << (first ? "\n" : ",\n") << "    \"";
        jsonEscape(os, name);
        os << "\": {\"first_ns\": " << s.first
           << ", \"last_ns\": " << s.last
           << ", \"count\": " << s.count << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

bool
RunReport::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return os.good();
}

} // namespace obs
