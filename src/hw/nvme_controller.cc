#include "hw/nvme_controller.hh"

#include "hw/dma.hh"
#include "simcore/logging.hh"

namespace hw {

using namespace nvme;

NvmeController::NvmeController(sim::EventQueue &eq, std::string name,
                               IoBus &bus_, PhysMem &mem_, Disk &disk,
                               IrqLine irq_q0, IrqLine irq_q1)
    : sim::SimObject(eq, std::move(name)),
      bus(bus_), mem(mem_), disk_(disk), irq{irq_q0, irq_q1}
{
    bus.addDevice(IoSpace::Mmio, kBase, kSize,
                  IoDevice{this->name(),
                           [this](sim::Addr o, unsigned s) {
                               return mmioRead(o, s);
                           },
                           [this](sim::Addr o, std::uint64_t v,
                                  unsigned s) { mmioWrite(o, v, s); }});
}

std::uint64_t
NvmeController::mmioRead(sim::Addr offset, unsigned size)
{
    (void)size;
    switch (offset) {
      case kCap:
        // MQES (0-based max queue entries) in bits 15:0.
        return 1023;
      case kVs:
        return 0x00010400; // 1.4
      case kIntms:
      case kIntmc:
        return intMask;
      case kCc:
        return cc;
      case kCsts:
        return (cc & kCcEn) ? kCstsRdy : 0;
      default:
        for (unsigned qp = 0; qp < kNumQueuePairs; ++qp) {
            if (offset == sqBaseReg(qp))
                return q[qp].sqBase;
            if (offset == cqBaseReg(qp))
                return q[qp].cqBase;
            if (offset == qDepthReg(qp))
                return q[qp].depth;
            // Model-specific queue-state readback (real NVMe exposes
            // this through admin commands): the SQ tail as submitted,
            // and the CQ tail with the current phase tag in bit 31 —
            // what a re-installed mediator needs to resynchronize its
            // interpretation of a live queue.
            if (offset == sqTailDb(qp))
                return q[qp].sqTail;
            if (offset == cqHeadDb(qp))
                return q[qp].cqTail |
                       (std::uint32_t(q[qp].phase) << 31);
        }
        return 0;
    }
}

void
NvmeController::mmioWrite(sim::Addr offset, std::uint64_t value,
                          unsigned size)
{
    (void)size;
    auto v = static_cast<std::uint32_t>(value);
    switch (offset) {
      case kIntms:
        intMask |= v; // W1S
        return;
      case kIntmc:
        intMask &= ~v; // W1C
        return;
      case kCc:
        if ((cc & kCcEn) && !(v & kCcEn)) {
            // Controller disable: reset queue state.
            for (auto &qp : q) {
                qp.sqHead = qp.sqTail = qp.cqTail = 0;
                qp.phase = 1;
                qp.outstanding = 0;
            }
        }
        cc = v & kCcEn;
        return;
      default:
        break;
    }

    for (unsigned qp = 0; qp < kNumQueuePairs; ++qp) {
        if (offset == sqBaseReg(qp)) {
            q[qp].sqBase = v;
            return;
        }
        if (offset == cqBaseReg(qp)) {
            q[qp].cqBase = v;
            return;
        }
        if (offset == qDepthReg(qp)) {
            // Programming the depth (re)creates the queue pair: all
            // pointers reset, as admin queue deletion/creation would.
            q[qp].depth = v;
            q[qp].sqHead = q[qp].sqTail = q[qp].cqTail = 0;
            q[qp].phase = 1;
            q[qp].outstanding = 0;
            return;
        }
        if (offset == sqTailDb(qp)) {
            sim::panicIfNot(q[qp].depth != 0,
                            "NVMe doorbell on unconfigured queue");
            q[qp].sqTail = v % q[qp].depth;
            if (cc & kCcEn)
                processNext();
            return;
        }
        if (offset == cqHeadDb(qp)) {
            // The model never throttles on CQ fullness; the head
            // doorbell is accepted for protocol fidelity only.
            return;
        }
    }
}

NvmeCommand
NvmeController::decodeEntry(unsigned qp, std::uint32_t index) const
{
    const QueuePair &queue = q[qp];
    sim::Addr sqe = queue.sqBase + sim::Addr(index) * kSqEntrySize;

    NvmeCommand cmd;
    cmd.qp = qp;
    cmd.cid = mem.read16(sqe + kSqeCid);
    std::uint8_t op = mem.read8(sqe + kSqeOpcode);
    cmd.isWrite = op == kOpWrite;
    if (op != kOpWrite && op != kOpRead)
        cmd.status = kScInvalidOpcode;
    cmd.prp1 = mem.read64(sqe + kSqePrp1);
    cmd.lba = mem.read64(sqe + kSqeSlba);
    cmd.sectors = std::uint32_t(mem.read16(sqe + kSqeNlb)) + 1;
    return cmd;
}

void
NvmeController::processNext()
{
    if (active || !(cc & kCcEn))
        return;

    // Round-robin queue arbitration starting after the last served.
    unsigned qp = kNumQueuePairs;
    for (unsigned i = 1; i <= kNumQueuePairs; ++i) {
        unsigned cand = (lastQp + i) % kNumQueuePairs;
        if (q[cand].depth != 0 && q[cand].sqHead != q[cand].sqTail) {
            qp = cand;
            break;
        }
    }
    if (qp == kNumQueuePairs)
        return;

    lastQp = qp;
    active = true;

    NvmeCommand cmd = decodeEntry(qp, q[qp].sqHead);
    q[qp].sqHead = (q[qp].sqHead + 1) % q[qp].depth;
    ++q[qp].outstanding;

    if (cmd.status != 0) {
        // Unknown opcode: complete immediately with an error status,
        // no media access.
        finishCommand(cmd);
        return;
    }

    std::vector<SgEntry> sg{
        {cmd.prp1, sim::Bytes(cmd.sectors) * sim::kSectorSize}};
    if (cmd.isWrite)
        dmaFromMemory(mem, sg, disk_.store(), cmd.lba, cmd.sectors);

    DiskRequest req;
    req.isWrite = cmd.isWrite;
    req.lba = cmd.lba;
    req.sectors = cmd.sectors;
    req.done = [this, cmd]() { finishCommand(cmd); };
    disk_.submit(std::move(req));
}

void
NvmeController::finishCommand(const NvmeCommand &cmd)
{
    if (!cmd.isWrite && cmd.status == 0) {
        std::vector<SgEntry> sg{
            {cmd.prp1, sim::Bytes(cmd.sectors) * sim::kSectorSize}};
        dmaToMemory(mem, sg, disk_.store(), cmd.lba, cmd.sectors);
    }

    postCompletion(cmd);
    --q[cmd.qp].outstanding;
    active = false;
    ++numCompleted;

    if (!(intMask & (1u << cmd.qp)))
        irq[cmd.qp].raise();

    processNext();
}

void
NvmeController::postCompletion(const NvmeCommand &cmd)
{
    QueuePair &queue = q[cmd.qp];
    sim::Addr cqe =
        queue.cqBase + sim::Addr(queue.cqTail) * kCqEntrySize;

    mem.write32(cqe, 0);
    mem.write16(cqe + kCqeSqHead,
                static_cast<std::uint16_t>(queue.sqHead));
    mem.write16(cqe + kCqeSqId, static_cast<std::uint16_t>(cmd.qp));
    mem.write16(cqe + kCqeCid, cmd.cid);
    // Status code in bits 15:1 with the current phase tag.
    mem.write16(cqe + kCqeStatus,
                std::uint16_t(cmd.status << 1) | queue.phase);

    queue.cqTail = (queue.cqTail + 1) % queue.depth;
    if (queue.cqTail == 0)
        queue.phase ^= 1;
}

} // namespace hw
