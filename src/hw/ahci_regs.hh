/**
 * @file
 * AHCI HBA register layout and structure offsets shared by the
 * controller model, the guest AHCI driver, and the BMcast AHCI
 * device mediator.
 */

#ifndef HW_AHCI_REGS_HH
#define HW_AHCI_REGS_HH

#include <cstdint>

#include "simcore/types.hh"

namespace hw::ahci {

/** MMIO base of the HBA (ABAR) and size covering port 0. */
constexpr sim::Addr kAbar = 0xFEB00000;
constexpr sim::Addr kAbarSize = 0x200;

/** @name Generic host control registers (offsets from ABAR). */
/// @{
constexpr sim::Addr kCap = 0x00;
constexpr sim::Addr kGhc = 0x04;
constexpr sim::Addr kIs = 0x08;  //!< one bit per port, W1C
constexpr sim::Addr kPi = 0x0C;
constexpr sim::Addr kVs = 0x10;
/// @}

/** GHC bits. */
constexpr std::uint32_t kGhcHr = 1u << 0;
constexpr std::uint32_t kGhcIe = 1u << 1;
constexpr std::uint32_t kGhcAe = 1u << 31;

/** @name Port 0 registers (offsets from ABAR). */
/// @{
constexpr sim::Addr kPort = 0x100;
constexpr sim::Addr kPxClb = kPort + 0x00;
constexpr sim::Addr kPxClbu = kPort + 0x04;
constexpr sim::Addr kPxFb = kPort + 0x08;
constexpr sim::Addr kPxFbu = kPort + 0x0C;
constexpr sim::Addr kPxIs = kPort + 0x10; //!< W1C
constexpr sim::Addr kPxIe = kPort + 0x14;
constexpr sim::Addr kPxCmd = kPort + 0x18;
constexpr sim::Addr kPxTfd = kPort + 0x20;
constexpr sim::Addr kPxSig = kPort + 0x24;
constexpr sim::Addr kPxSsts = kPort + 0x28;
constexpr sim::Addr kPxSctl = kPort + 0x2C;
constexpr sim::Addr kPxSerr = kPort + 0x30;
constexpr sim::Addr kPxSact = kPort + 0x34;
constexpr sim::Addr kPxCi = kPort + 0x38; //!< W1S, device clears
/// @}

/** PxIS bits. */
constexpr std::uint32_t kIsDhrs = 1u << 0; //!< D2H register FIS

/** PxCMD bits. */
constexpr std::uint32_t kCmdSt = 1u << 0;   //!< start processing
constexpr std::uint32_t kCmdFre = 1u << 4;  //!< FIS receive enable
constexpr std::uint32_t kCmdFr = 1u << 14;  //!< FIS receive running
constexpr std::uint32_t kCmdCr = 1u << 15;  //!< command list running

/** PxTFD status byte bits (mirror of ATA status). */
constexpr std::uint32_t kTfdErr = 0x01;
constexpr std::uint32_t kTfdDrq = 0x08;
constexpr std::uint32_t kTfdBsy = 0x80;

/** Number of command slots. */
constexpr unsigned kNumSlots = 32;

/** Command header layout (32 bytes per slot at PxCLB). */
constexpr sim::Bytes kCmdHeaderSize = 32;
constexpr std::uint32_t kHdrWrite = 1u << 6;       //!< DW0 W bit
constexpr unsigned kHdrPrdtlShift = 16;            //!< DW0 PRDTL

/** Command table layout. */
constexpr sim::Bytes kCfisOffset = 0x00;
constexpr sim::Bytes kCfisSize = 64;
constexpr sim::Bytes kPrdtOffset = 0x80;
constexpr sim::Bytes kPrdtEntrySize = 16;

/** CFIS (register H2D FIS) byte offsets. */
constexpr sim::Bytes kFisType = 0;    //!< 0x27
constexpr sim::Bytes kFisFlags = 1;   //!< bit7 = C
constexpr sim::Bytes kFisCommand = 2;

/** ATA command opcodes carried in the CFIS. */
constexpr std::uint8_t kFisCmdReadDmaExt = 0x25;
constexpr std::uint8_t kFisCmdWriteDmaExt = 0x35;
constexpr sim::Bytes kFisLba0 = 4;
constexpr sim::Bytes kFisLba1 = 5;
constexpr sim::Bytes kFisLba2 = 6;
constexpr sim::Bytes kFisDevice = 7;
constexpr sim::Bytes kFisLba3 = 8;
constexpr sim::Bytes kFisLba4 = 9;
constexpr sim::Bytes kFisLba5 = 10;
constexpr sim::Bytes kFisCount0 = 12;
constexpr sim::Bytes kFisCount1 = 13;

constexpr std::uint8_t kFisTypeH2d = 0x27;
constexpr std::uint8_t kFisFlagC = 0x80;

/** IRQ vector used by the HBA. */
constexpr unsigned kIrqVector = 11;

} // namespace hw::ahci

#endif // HW_AHCI_REGS_HH
