/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders closures by (tick, sequence). All simulated
 * components in one Machine (and across Machines in one experiment)
 * share one queue so that cross-machine interactions (network packets)
 * are globally ordered.
 *
 * Implementation: a two-band structure keyed by distance from now.
 *
 * Near band — a timer wheel (Varghese & Lauck) of kWheelSize
 * one-tick buckets with an occupancy bitmap. An event within
 * kWheelSize ticks of now is appended to the intrusive FIFO list of
 * its tick's bucket in O(1); finding the next event is a bitmap scan
 * (find-first-set over a few words). Because every bucket covers
 * exactly one tick, append order IS (tick, seq) dispatch order: the
 * hot path does no comparisons, no sifting and no sorting at all.
 * Trace counters show the bulk of real events (device completions,
 * poll cadences, preemption timers) land here.
 *
 * Far band — an indexed 4-ary min-heap over (tick, seq). Far events
 * pay the O(log n) sift once; by the time their tick comes into
 * view they are popped in order. A heap entry for tick T is always
 * FIFO-older than any wheel entry for T (scheduling it required
 * T - now >= kWheelSize, i.e. an earlier now), so cross-band
 * ordering is "heap first", with no seq exchanged between bands.
 *
 * Event records (the closures) live in a chunked slot pool recycled
 * through a free list; the chunks never move, so callbacks execute
 * in place (no per-dispatch closure copies) even when they schedule
 * further events. cancel() is an O(1) mark in either band — the
 * entry stays behind as a tombstone and is skipped (and counted)
 * when its tick is drained; when tombstones outnumber live entries
 * in the heap it is compacted in one O(n) sweep, so cancel-heavy
 * workloads (e.g. retransmission timers that almost always get
 * cancelled) cannot bloat it. Closures are stored in
 * sim::InlineCallback, so the common small captures never touch the
 * heap.
 *
 * API contract (relied upon across src/ and asserted by the property
 * test against a reference model):
 *  - events scheduled for the same tick run in scheduling order
 *    (stable FIFO; seq is the tiebreaker);
 *  - an EventId stays valid() after its event runs — valid() means
 *    "this handle ever referred to a scheduled event", not "is still
 *    pending";
 *  - cancel() returns true exactly once, and only if the event had
 *    not yet run: double-cancel and cancel-after-run return false by
 *    construction even after the internal slot has been reused,
 *    because handles carry a generation stamp that is bumped on every
 *    slot recycle.
 */

#ifndef SIMCORE_EVENT_QUEUE_HH
#define SIMCORE_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "simcore/inline_callback.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace sim {

/**
 * Handle for a scheduled event, usable to cancel it. Default-constructed
 * handles are inert. Handles are generation-stamped: they remain safe
 * to cancel() (returning false) after the event ran, was cancelled, or
 * its storage was recycled for another event.
 */
class EventId
{
  public:
    EventId() = default;

    /** True if this handle ever referred to a scheduled event. The
     *  flag persists after the event runs; use cancel()'s return
     *  value to learn whether the event was still pending. */
    bool valid() const { return gen != 0; }

  private:
    friend class EventQueue;

    EventId(std::uint32_t s, std::uint32_t g) : slot(s), gen(g) {}

    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
};

/**
 * A priority queue of timestamped callbacks; the heart of the simulator.
 *
 * Events scheduled for the same tick run in scheduling order (stable).
 * Callbacks may schedule or cancel further events freely.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    /** Enables the zero-copy overloads for raw void() closures. */
    template <typename F>
    using EnableForClosure = std::enable_if_t<
        !std::is_same_v<std::decay_t<F>, Callback> &&
        std::is_invocable_r_v<void, std::decay_t<F> &>>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a callback @p delay ticks in the future.
     * @return a handle usable with cancel().
     */
    EventId schedule(Tick delay, Callback cb);

    /** Schedule a callback at an absolute tick (>= now). */
    EventId scheduleAt(Tick when, Callback cb);

    /**
     * Schedule a drift-free periodic callback: first firing at
     * now + @p interval, then every @p interval ticks after the
     * previous firing's timestamp. The closure is stored once and
     * reused, so a periodic event allocates nothing per firing.
     * The handle stays cancellable across firings; cancel() (also
     * from within the callback itself) stops the cycle.
     */
    EventId schedulePeriodic(Tick interval, Callback cb);

    /**
     * Zero-copy overloads: a raw closure is constructed directly in
     * the event's pooled slot — no intermediate Callback object, no
     * moves. Overload resolution prefers these for lambdas; the
     * Callback overloads above still serve pre-built callbacks.
     */
    template <typename F, typename = EnableForClosure<F>>
    EventId
    schedule(Tick delay, F &&f)
    {
        return scheduleAt(curTick + delay, std::forward<F>(f));
    }

    template <typename F, typename = EnableForClosure<F>>
    EventId
    scheduleAt(Tick when, F &&f)
    {
        std::uint32_t idx = beginPost(when, 0);
        slotRef(idx).cb.emplace(std::forward<F>(f));
        return finishPost(when, idx);
    }

    template <typename F, typename = EnableForClosure<F>>
    EventId
    schedulePeriodic(Tick interval, F &&f)
    {
        std::uint32_t idx = beginPeriodicPost(interval);
        slotRef(idx).cb.emplace(std::forward<F>(f));
        return finishPost(curTick + interval, idx);
    }

    /**
     * Cancel a previously scheduled event.
     * @retval true the event was pending and has been removed.
     * @retval false the event already ran, was cancelled, or is inert.
     */
    bool cancel(const EventId &id);

    /** True if no events are pending. */
    bool empty() const { return livePending == 0; }

    /** Number of pending events (tombstones excluded). */
    std::size_t pending() const { return livePending; }

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Time stops at the last executed event (or at @p limit if given
     * and reached).
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick(0));

    /**
     * Run all events with tick <= @p when, then set time to @p when.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick when);

    /** Execute exactly one event if any is pending. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return counters_.executed; }

    /** Kernel performance counters (see sim::KernelCounters). */
    const KernelCounters &counters() const { return counters_; }

  private:
    /**
     * Heap element: 16-byte POD ordered by (when, seq); the closure
     * lives in the slot pool. seq is 32-bit to keep the entry at two
     * words (a 4-child sibling group spans one cache line); the
     * queue renumbers live seqs in one O(n log n) sweep before the
     * counter can wrap, so FIFO order is exact at any event count.
     * No generation stamp is needed here: a slot is freed only when
     * its (single) heap entry is reclaimed, so an entry's slot can
     * never have been recycled while the entry is still in the heap.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint32_t seq;
        std::uint32_t slot;
    };

    enum class SlotState : std::uint8_t { Free, Pending, Cancelled };

    /** Pooled event record; recycled through a free list. */
    struct Slot
    {
        Callback cb;
        Tick period = 0; //!< 0 = one-shot
        std::uint32_t gen = 1;
        std::uint32_t nextFree = kNoSlot;
        /** Intrusive link in the wheel bucket's FIFO list. */
        std::uint32_t nextEvent = kNoSlot;
        SlotState state = SlotState::Free;
        /** A periodic callback is running right now: cancel() must
         *  not destroy the closure under its own feet (dispatch
         *  finishes the teardown). */
        bool executing = false;
        /** Pending in a wheel bucket (vs the overflow heap); steers
         *  cancel()'s tombstone accounting. */
        bool inWheel = false;
    };

    static constexpr std::uint32_t kNoSlot = ~std::uint32_t(0);

    /** Wheel geometry: one-tick buckets, so a bucket's list is a
     *  single tick's FIFO cohort. 4096 buckets cover every delay
     *  shorter than kWheelSize ticks. */
    static constexpr std::size_t kWheelBits = 12;
    static constexpr std::size_t kWheelSize = std::size_t(1)
                                              << kWheelBits;
    static constexpr std::size_t kWheelMask = kWheelSize - 1;
    static constexpr std::size_t kWheelWords = kWheelSize / 64;

    /** Slots live in fixed chunks so growing the pool never moves a
     *  live Slot — the address a callback executes at stays stable
     *  even if the callback schedules new events. */
    static constexpr std::uint32_t kChunkShift = 8;
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
    static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

    /** Min-heap order on (when, seq): seq breaks ties so same-tick
     *  events keep scheduling (FIFO) order. Bitwise (non-short-
     *  circuit) form on purpose: heap keys are effectively random,
     *  so a branchy compare mispredicts on nearly every sift step —
     *  this form compiles to flag ops the sift loops can consume
     *  with conditional moves. */
    static bool
    before(const HeapEntry &a, const HeapEntry &b)
    {
        return (a.when < b.when) |
               ((a.when == b.when) & (a.seq < b.seq));
    }

    Slot &
    slotRef(std::uint32_t idx)
    {
        return chunks[idx >> kChunkShift][idx & kChunkMask];
    }

    /** Route a pending slot to the wheel (near) or heap (far). */
    void postEntry(Tick when, std::uint32_t slot);
    /** Append to @p when's bucket list (when - now < kWheelSize). */
    void wheelAppend(Tick when, std::uint32_t slot);
    /** Tick of the earliest occupied bucket, if any (bitmap scan). */
    bool wheelNextTick(Tick &out) const;
    /** Unlink and return the head of @p t's bucket (kNoSlot if
     *  empty), maintaining tail pointer and occupancy bit. */
    std::uint32_t wheelPopFront(Tick t);
    /** Reclaim a cancelled entry drained from a wheel bucket. */
    void reclaimWheelTombstone(std::uint32_t slot);

    EventId post(Tick when, Tick period, Callback cb);
    /** Validate @p when and allocate a slot primed with @p period. */
    std::uint32_t beginPost(Tick when, Tick period);
    /** beginPost for a periodic event (validates the interval). */
    std::uint32_t beginPeriodicPost(Tick interval);
    /** Push the heap entry and update counters; returns the handle. */
    EventId finishPost(Tick when, std::uint32_t idx);
    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t idx);
    void push(Tick when, std::uint32_t slot);
    HeapEntry popTop();
    void siftUp(std::size_t i);
    void siftDown(std::size_t i);
    /** Re-assign dense seqs in heap order (runs before seq wrap). */
    void renumberSeqs();
    /** Drop tombstones from the heap top; true if a live entry
     *  remains. */
    bool settleTop();
    /** Remove and reclaim a tombstone that was just popped. */
    void reclaimTombstone(const HeapEntry &dead);
    /** One O(n) sweep dropping every tombstone, then re-heapify. */
    void compactHeap();
    /** Pull every live entry with when == @p t out of the heap in
     *  one sweep (appended to @p out unordered), reclaiming
     *  tombstones on the way, then re-heapify what remains. */
    void extractTick(Tick t, std::vector<HeapEntry> &out);
    /** Dispatch one popped live entry (caller advanced curTick). */
    void dispatch(const HeapEntry &e);

    Tick curTick = 0;
    std::uint32_t nextSeq = 1;
    std::size_t livePending = 0;

    /** Wheel bucket lists (slot indices) and occupancy bitmap. */
    std::vector<std::uint32_t> bucketHead =
        std::vector<std::uint32_t>(kWheelSize, kNoSlot);
    std::vector<std::uint32_t> bucketTail =
        std::vector<std::uint32_t>(kWheelSize, kNoSlot);
    std::vector<std::uint64_t> wheelOcc =
        std::vector<std::uint64_t>(kWheelWords, 0);

    std::vector<HeapEntry> heap;
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::uint32_t slotCount = 0;
    std::uint32_t freeHead = kNoSlot;

    /** Estimate of tombstone entries still in the heap; drives
     *  compaction. Approximate by design (a cancel hitting an entry
     *  already drained into the same-tick batch over-counts by one),
     *  so it is clamped rather than trusted exactly. */
    std::size_t deadInHeap = 0;

    /** Same-tick batch scratch, reused across run() iterations. */
    std::vector<HeapEntry> batch;

    KernelCounters counters_;

    /** obs track cache for dispatch spans (plain ints so this header
     *  needs no obs include); revalidated against the armed tracer's
     *  epoch in dispatch(). */
    std::uint64_t obsEpoch_ = 0;
    std::uint32_t obsTrack_ = 0;
};

} // namespace sim

#endif // SIMCORE_EVENT_QUEUE_HH
