/**
 * @file
 * The consistency bitmap of §3.3: tracks which local-disk blocks hold
 * valid content (FILLED) versus not-yet-deployed blocks (EMPTY).
 *
 * The atomic check-then-write rule that prevents the background copy
 * from clobbering fresher guest data is `claimForVmmWrite()`:
 * the writer thread may only write a block it successfully claimed,
 * and a guest write (which marks FILLED immediately at command issue)
 * makes any later claim fail.
 *
 * Persistence (§3.3): the VMM saves the bitmap into an unused
 * on-disk region so deployment survives shutdown/reboot. Sector
 * content in this simulation is a 64-bit token, so the serialized
 * bitmap bytes are modelled by a registry keyed by the content token
 * actually written to the region — a reload must read the exact
 * token back from the disk to recover the state, preserving the
 * failure modes (a guest overwrite of the region would destroy it,
 * which is why the mediators convert guest access to the region into
 * dummy reads).
 */

#ifndef BMCAST_BLOCK_BITMAP_HH
#define BMCAST_BLOCK_BITMAP_HH

#include <cstdint>
#include <vector>

#include "simcore/interval_set.hh"
#include "simcore/types.hh"

namespace bmcast {

/** FILLED-state tracker over [0, totalSectors). */
class BlockBitmap
{
  public:
    explicit BlockBitmap(sim::Lba totalSectors)
        : total(totalSectors) {}

    /** Mark [lba, lba+count) FILLED (guest write at issue time, or
     *  completed VMM copy). */
    void markFilled(sim::Lba lba, std::uint64_t count);

    /** True if the whole range is FILLED. */
    bool isFilled(sim::Lba lba, std::uint64_t count) const;

    /** True if any sector of the range is EMPTY. */
    bool anyEmpty(sim::Lba lba, std::uint64_t count) const;

    /** EMPTY sub-ranges of [lba, lba+count), ascending. */
    std::vector<sim::IntervalSet::Range>
    emptyRanges(sim::Lba lba, std::uint64_t count) const;

    /**
     * Visit the EMPTY sub-ranges of [lba, lba+count) in ascending
     * order without allocating (see IntervalSet::forEachGap). This
     * is the form the hot copy-on-read redirection path uses.
     */
    template <typename Visitor>
    void
    forEachEmpty(sim::Lba lba, std::uint64_t count,
                 Visitor &&visit) const
    {
        filled.forEachGap(lba, lba + count,
                          std::forward<Visitor>(visit));
    }

    /** First EMPTY sub-range of [lba, lba+count), if any;
     *  allocation-free. */
    std::optional<sim::IntervalSet::Range>
    firstEmptyRange(sim::Lba lba, std::uint64_t count) const;

    /**
     * Atomic check for the background writer: true (and the caller
     * may write) only if the whole block is still EMPTY. Does NOT
     * mark; the writer marks FILLED at write completion.
     */
    bool claimForVmmWrite(sim::Lba lba, std::uint64_t count) const;

    /** First EMPTY sector at or after @p from (wrapping not done
     *  here); std::nullopt when [from, total) is fully FILLED. */
    std::optional<sim::Lba> firstEmpty(sim::Lba from) const;

    /** Sectors FILLED so far. */
    sim::Lba filledCount() const { return filled.coveredCount(); }
    /** True when every sector is FILLED. */
    bool complete() const { return filledCount() == total; }

    sim::Lba totalSectors() const { return total; }
    std::size_t extentCount() const { return filled.intervalCount(); }

    /** @name Persistence (see file comment). */
    /// @{
    /** Serialize to an opaque token to be written to the reserved
     *  disk region. */
    std::uint64_t serializeToken() const;
    /** Recover state from a token read back from disk.
     *  @retval false the token does not correspond to a saved bitmap
     *  (fresh disk or corrupted region). */
    bool restoreFromToken(std::uint64_t token);
    /// @}

  private:
    sim::Lba total;
    sim::IntervalSet filled;
};

} // namespace bmcast

#endif // BMCAST_BLOCK_BITMAP_HH
