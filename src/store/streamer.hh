/**
 * @file
 * ChunkStreamer: per-deployment chunk fetch engine.
 *
 * Sits between the VMM's copy-on-read / background-copy machinery and
 * the store fabric.  A fetch resolves block ranges to chunks, ranks
 * sources (warm peers first, then the erasure stripe of seed
 * servers), issues digest-checked routed reads, and reroutes on
 * timeout, error or corruption — a dead source degrades throughput
 * instead of stalling the deployment.
 *
 * The streamer also tracks which chunks have fully landed on the
 * local disk (noteLocalWrite) to register this node as a peer source,
 * and which chunks the tenant has dirtied (notePoisoned) so they are
 * never offered.
 */

#ifndef STORE_STREAMER_HH
#define STORE_STREAMER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aoe/initiator.hh"
#include "obs/obs.hh"
#include "simcore/sim_object.hh"
#include "store/fabric.hh"

namespace store {

class ChunkStreamer : public sim::SimObject
{
  public:
    using FetchDone =
        std::function<void(const std::vector<std::uint64_t> &tokens)>;

    ChunkStreamer(sim::EventQueue &eq, std::string name,
                  aoe::AoeInitiator &aoe, StoreFabric &fabric,
                  std::string image, net::MacAddr selfMac,
                  sim::Lba imageSectors);

    /**
     * Deployment-bandwidth token gate (same shape as
     * bmcast::RateGate / cloud::RateGate, duplicated so the store
     * tier stays free of control-plane headers): gate(bytes, now)
     * returns the earliest issue tick. Applies only to fetches marked
     * background — copy-on-read stays latency-critical and unshaped.
     */
    using RateGate = std::function<sim::Tick(sim::Bytes, sim::Tick)>;
    void setRateGate(RateGate g) { gate_ = std::move(g); }

    /** Fetch [lba, lba+count) of the image through the store tier.
     *  @p done receives one token per sector, digest-verified.
     *  @p background marks bulk background-copy traffic, which draws
     *  issue tokens from the rate gate when one is bound. */
    void fetch(sim::Lba lba, std::uint32_t count, FetchDone done,
               bool background = false);

    /** [lba, lba+count) of pristine image content landed on the local
     *  disk; chunks that become fully resident register this node as
     *  a peer source. */
    void noteLocalWrite(sim::Lba lba, std::uint32_t count);

    /** The tenant dirtied [lba, lba+count): stop offering (or never
     *  offer) the covered chunks. */
    void notePoisoned(sim::Lba lba, std::uint32_t count);

    /** Stop all retries and drop pending completions (power-off). */
    void shutdown() { halted_ = true; }

    /** @name Telemetry */
    /// @{
    std::uint64_t peerHits() const { return peerHits_; }
    std::uint64_t seedFetches() const { return seedFetches_; }
    std::uint64_t reconstructions() const { return reconstructions_; }
    std::uint64_t sourceFailures() const { return sourceFailures_; }
    std::uint64_t noSourceStalls() const { return stalls_; }
    /** Pieces the rate gate pushed into the future. */
    std::uint64_t gateWaits() const { return gateWaits_; }
    /// @}

  private:
    /** One multi-chunk fetch in flight. */
    struct FetchOp
    {
        sim::Lba lba = 0;
        std::uint32_t count = 0;
        std::vector<std::uint64_t> tokens;
        std::size_t remaining = 0; //!< pieces outstanding
        FetchDone done;
    };

    /** The part of an op inside one chunk. */
    struct Piece
    {
        sim::Lba lba = 0;
        std::uint32_t count = 0;
        std::size_t chunkIdx = 0;
    };

    void startPiece(const std::shared_ptr<FetchOp> &op, Piece piece,
                    unsigned attempts);
    void fetchFromPeer(const std::shared_ptr<FetchOp> &op, Piece piece,
                       unsigned attempts, net::MacAddr peer);
    void fetchFromSeeds(const std::shared_ptr<FetchOp> &op, Piece piece,
                        unsigned attempts);
    void commit(const std::shared_ptr<FetchOp> &op, const Piece &piece,
                const std::vector<std::uint64_t> &tokens);
    void suspect(net::MacAddr mac);
    bool live(net::MacAddr mac);

    aoe::AoeInitiator &aoe_;
    StoreFabric &fabric_;
    std::string image_;
    net::MacAddr self_;
    sim::Lba imageSectors_;
    bool halted_ = false;
    RateGate gate_;

    /** Per-chunk lifecycle: sectors landed; 0 filling, 1 registered,
     *  2 poisoned. */
    struct ChunkState
    {
        std::uint32_t landed = 0;
        std::uint8_t state = 0;
    };
    std::map<std::size_t, ChunkState> chunkState_;

    /** Sources deprioritized until a deadline after a failure. */
    std::map<net::MacAddr, sim::Tick> suspectUntil_;

    std::uint64_t peerHits_ = 0;
    std::uint64_t seedFetches_ = 0;
    std::uint64_t reconstructions_ = 0;
    std::uint64_t sourceFailures_ = 0;
    std::uint64_t stalls_ = 0;
    std::uint64_t gateWaits_ = 0;

    obs::Track obsTrack_;
};

} // namespace store

#endif // STORE_STREAMER_HH
