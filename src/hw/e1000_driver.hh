/**
 * @file
 * A minimal e1000-class NIC driver, usable in two modes:
 *
 *  - Interrupt mode: the guest OS's ordinary network driver.
 *  - Polling mode: the BMcast VMM's dedicated-NIC driver (paper
 *    §4.3: "minimal functions to send and receive packets with
 *    polling", 600-760 LOC per adapter family).
 *
 * The driver programs real descriptor rings in simulated physical
 * memory through a BusView, so the identical code runs in guest
 * context (interceptable) and VMM context (direct).
 */

#ifndef HW_E1000_DRIVER_HH
#define HW_E1000_DRIVER_HH

#include <deque>

#include "net/l2.hh"
#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/mem_arena.hh"
#include "hw/nic.hh"
#include "hw/phys_mem.hh"
#include "simcore/sim_object.hh"

namespace hw {

/** The driver. */
class E1000Driver : public sim::SimObject, public net::L2Endpoint
{
  public:
    enum class Mode { Interrupt, Polling };

    /**
     * @param intc required in Interrupt mode (to hook the vector);
     *             ignored in Polling mode.
     */
    E1000Driver(sim::EventQueue &eq, std::string name, BusView view,
                E1000Nic &nic, PhysMem &mem, MemArena &arena,
                Mode mode, InterruptController *intc = nullptr,
                unsigned irqVector = 0);

    /**
     * Virtual-window variant (netmed multi-guest): the driver runs
     * against a register window with no physical device behind it —
     * the mediation tier virtualizes every register and owns the
     * identity (@p mac / @p mtu). Interrupt mode hooks @p irqVector,
     * which the mediation tier raises.
     */
    E1000Driver(sim::EventQueue &eq, std::string name, BusView view,
                sim::Addr mmioBase, net::MacAddr mac, sim::Bytes mtu,
                PhysMem &mem, MemArena &arena, Mode mode,
                InterruptController *intc = nullptr,
                unsigned irqVector = 0);
    ~E1000Driver() override;

    /**
     * Switch the steady-state doorbells (TDT/RDT writes, ICR reads)
     * to a shared-memory page (see hw/nic_doorbell.hh): the exitless
     * fast path. Ring setup has already gone through (trapped) MMIO;
     * from here on the driver touches the window only if the page is
     * detached again. The page must be the one the mediation tier
     * polls for this guest.
     */
    void attachDoorbell(sim::Addr page);
    void detachDoorbell() { dbPage = 0; }

    /** @name net::L2Endpoint */
    /// @{
    void sendFrame(net::Frame frame) override;
    net::MacAddr localMac() const override;
    sim::Bytes mtu() const override;
    void setRxHandler(RxHandler handler) override { rx = std::move(handler); }
    /// @}

    /**
     * Polling-mode service routine: reap TX completions and deliver
     * received frames. The VMM calls this from its preemption-timer
     * poll loop. Harmless in interrupt mode.
     * @return number of frames delivered.
     */
    unsigned poll();

    std::uint64_t framesSent() const { return numTx; }
    std::uint64_t framesDelivered() const { return numRx; }

  private:
    static constexpr unsigned kRingSize = 64;
    static constexpr sim::Bytes kBufSize = 2048;

    void initRings();
    void pumpTx();
    void serviceIrq();

    BusView view;
    PhysMem &mem;
    Mode mode;
    sim::Addr base = 0;      //!< register window this driver programs
    net::MacAddr mac_ = 0;
    sim::Bytes mtu_ = 1500;
    sim::Addr dbPage = 0;    //!< doorbell page (0 = trapped MMIO)
    InterruptController *intc = nullptr;
    unsigned irqVector = 0;
    InterruptController::HandlerId irqHandler = 0;
    RxHandler rx;

    sim::Addr txRing = 0;
    sim::Addr rxRing = 0;
    sim::Addr txBufs = 0;
    sim::Addr rxBufs = 0;
    unsigned txTail = 0;  //!< next descriptor to fill
    unsigned txClean = 0; //!< next descriptor to reclaim
    unsigned txFree = kRingSize;
    unsigned rxHead = 0; //!< next descriptor to examine

    std::deque<net::Frame> txBacklog;

    std::uint64_t numTx = 0;
    std::uint64_t numRx = 0;
};

} // namespace hw

#endif // HW_E1000_DRIVER_HH
