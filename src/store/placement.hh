/**
 * @file
 * Erasure-coded chunk placement across the seed-server pool.
 *
 * Each chunk digest maps to a stripe of code->width() members drawn
 * round-robin from the server pool.  The stripe's algebra lives in an
 * ec::Code: fetch plans and repair plans are plan DAGs the code
 * builds over the concrete member MACs (store/ec/code.hh), and the
 * legacy planFor() shape survives as a flattening shim for callers
 * that only need the source list.
 *
 * Modeling note: the simulation carries sector *tokens*, not real
 * bytes, so every stripe member exports the full chunk content and
 * the erasure code is modeled at the placement/availability level —
 * a plan exists iff enough stripe members are live, and using parity
 * members marks the plan as a reconstruction.  Wire traffic still
 * splits the chunk across the chosen members the way the code
 * dictates, so throughput scales the way real striping would.
 *
 * Repair re-homes members per digest: rehome(d, i, mac) overrides
 * stripe slot i for chunk d (the RepairScheduler points a rebuilt
 * member at its new server), and all plans follow the override.
 */

#ifndef STORE_PLACEMENT_HH
#define STORE_PLACEMENT_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "net/frame.hh"
#include "store/chunk.hh"
#include "store/ec/code.hh"

namespace store {

class Placement
{
  public:
    /** Legacy shape: flat k+m Reed–Solomon over @p servers. */
    Placement(unsigned dataShards, unsigned parityShards,
              std::vector<net::MacAddr> servers);

    /** Plan-driven shape: any code over @p servers. */
    Placement(std::shared_ptr<const ec::Code> code,
              std::vector<net::MacAddr> servers);

    /** A flattened fetch plan: the chosen sources, possibly parity. */
    struct Plan
    {
        std::vector<net::MacAddr> sources;
        unsigned parityUsed = 0;
    };

    /** Stripe members for @p d (data members first, overrides
     *  applied). */
    std::vector<net::MacAddr> stripeFor(Digest d) const;

    /**
     * Pick k live stripe members for @p d, preferring data members
     * and back-filling from live parity.  Returns nullopt when too
     * few members are live (chunk unreconstructable right now).
     */
    std::optional<Plan>
    planFor(Digest d,
            const std::function<bool(net::MacAddr)> &live) const;

    /** The code's read plan for @p sectors sectors of chunk @p d. */
    std::optional<ec::Plan>
    readPlanFor(Digest d, const ec::LiveFn &live,
                std::uint32_t sectors) const;

    /** The code's rebuild plan for stripe member @p lost of @p d. */
    std::optional<ec::Plan>
    repairPlanFor(Digest d, unsigned lost, const ec::LiveFn &live,
                  std::uint32_t chunkSectors) const;

    /** Override stripe slot @p member of chunk @p d to @p mac (a
     *  completed rebuild re-homing the member). */
    void rehome(Digest d, unsigned member, net::MacAddr mac);

    /** Stripe slot of @p mac in @p d's stripe, if any. */
    std::optional<unsigned> memberIndexOf(Digest d,
                                          net::MacAddr mac) const;

    const ec::Code &code() const { return *code_; }
    std::shared_ptr<const ec::Code> sharedCode() const
    {
        return code_;
    }
    /** Swap the stripe algebra (elastic transformation); the caller
     *  is responsible for rebuilding parity members. */
    void setCode(std::shared_ptr<const ec::Code> code);

    const std::vector<net::MacAddr> &servers() const
    {
        return servers_;
    }
    std::size_t rehomedChunks() const { return overrides_.size(); }

    unsigned dataShards() const { return code_->dataShards(); }
    unsigned parityShards() const { return code_->parityMembers(); }
    unsigned stripeWidth() const { return width_; }

  private:
    void checkPool() const;

    std::shared_ptr<const ec::Code> code_;
    unsigned width_;
    std::vector<net::MacAddr> servers_;
    /** Per-digest member overrides from completed repairs. */
    std::map<Digest, std::map<unsigned, net::MacAddr>> overrides_;
};

} // namespace store

#endif // STORE_PLACEMENT_HH
