/**
 * @file
 * Register-level conformance tests: the storage controllers are
 * programmed directly through raw bus accesses (no driver layer),
 * checking the architected behaviours the mediators rely on — ATA
 * LBA28 and LBA48 task-file semantics, INTRQ ack on status read,
 * alternate status without ack, nIEN gating, bus-master bits, SRST,
 * unsupported-command errors; AHCI W1S/W1C semantics, round-robin
 * slot processing, HBA reset, and the e1000 ring protocol.
 */

#include <gtest/gtest.h>

#include "hw/ahci_regs.hh"
#include "hw/ide_regs.hh"
#include "hw/machine.hh"
#include "net/network.hh"

namespace {

using hw::IoSpace;

struct IdeWorld
{
    explicit IdeWorld(sim::Bytes disk_bytes = 1 * sim::kGiB)
        : lan(eq, "lan")
    {
        hw::MachineConfig mc;
        mc.name = "m";
        mc.storage = hw::StorageKind::Ide;
        mc.disk.capacityBytes = disk_bytes;
        m = std::make_unique<hw::Machine>(eq, mc, lan, 1, lan, 2);
        m->intc().registerHandler(hw::ide::kIrqVector,
                                  [this]() { ++irqs; });
    }

    std::uint8_t
    rd(sim::Addr a)
    {
        return static_cast<std::uint8_t>(
            m->bus().guestRead(IoSpace::Pio, a, 1));
    }
    void
    wr(sim::Addr a, std::uint8_t v)
    {
        m->bus().guestWrite(IoSpace::Pio, a, v, 1);
    }

    /** Program a full LBA48 read of one sector into buffer 0x5000
     *  with a PRD at 0x4000. */
    void
    programRead48(sim::Lba lba)
    {
        using namespace hw::ide;
        m->mem().write32(0x4000, 0x5000);
        m->mem().write16(0x4004, sim::kSectorSize);
        m->mem().write16(0x4006, kPrdEot);
        m->bus().guestWrite(IoSpace::Pio, kBmBase + kBmPrdtAddr,
                            0x4000, 4);
        wr(kBmBase + kBmCommand, kBmCmdToMemory);
        wr(kPioBase + kSectorCount, 0);
        wr(kPioBase + kSectorCount, 1);
        wr(kPioBase + kLbaLow, (lba >> 24) & 0xFF);
        wr(kPioBase + kLbaMid, (lba >> 32) & 0xFF);
        wr(kPioBase + kLbaHigh, (lba >> 40) & 0xFF);
        wr(kPioBase + kLbaLow, lba & 0xFF);
        wr(kPioBase + kLbaMid, (lba >> 8) & 0xFF);
        wr(kPioBase + kLbaHigh, (lba >> 16) & 0xFF);
        wr(kPioBase + kDevice, kDeviceLbaMode);
        wr(kPioBase + kCmdStatus, kCmdReadDmaExt);
        wr(kBmBase + kBmCommand, kBmCmdToMemory | kBmCmdStart);
    }

    sim::EventQueue eq;
    net::Network lan;
    std::unique_ptr<hw::Machine> m;
    int irqs = 0;
};

TEST(IdeConformance, Lba48ReadDeliversDataAndIrq)
{
    using namespace hw::ide;
    IdeWorld w;
    w.m->disk().store().write(4242, 1, 0x77ULL << 8 | 1);
    w.programRead48(4242);
    w.eq.run();
    EXPECT_EQ(w.irqs, 1);
    EXPECT_EQ(w.m->mem().read64(0x5000),
              hw::sectorToken(0x77ULL << 8 | 1, 4242));
    // BM status: interrupt bit set, active cleared.
    EXPECT_TRUE(w.rd(kBmBase + kBmStatus) & kBmStIrq);
    EXPECT_FALSE(w.rd(kBmBase + kBmStatus) & kBmStActive);
    // Status: DRDY, not BSY.
    EXPECT_EQ(w.rd(kPioBase + kCmdStatus), kStatusDrdy);
}

TEST(IdeConformance, Lba28CommandDecodesDeviceBits)
{
    using namespace hw::ide;
    // A disk big enough that LBA28 bits 27:24 are exercised.
    IdeWorld w(16 * sim::kGiB);
    // LBA 0x1234567 needs device-register bits (LBA28 >> 24 = 0x1).
    sim::Lba lba = 0x1234567;
    w.m->disk().store().write(lba, 1, 0x88ULL << 8 | 1);
    w.m->mem().write32(0x4000, 0x5000);
    w.m->mem().write16(0x4004, sim::kSectorSize);
    w.m->mem().write16(0x4006, kPrdEot);
    w.m->bus().guestWrite(IoSpace::Pio, kBmBase + kBmPrdtAddr, 0x4000,
                          4);
    w.wr(kBmBase + kBmCommand, kBmCmdToMemory);
    w.wr(kPioBase + kSectorCount, 1);
    w.wr(kPioBase + kLbaLow, lba & 0xFF);
    w.wr(kPioBase + kLbaMid, (lba >> 8) & 0xFF);
    w.wr(kPioBase + kLbaHigh, (lba >> 16) & 0xFF);
    w.wr(kPioBase + kDevice,
         kDeviceLbaMode | ((lba >> 24) & 0x0F));
    w.wr(kPioBase + kCmdStatus, kCmdReadDma);
    w.wr(kBmBase + kBmCommand, kBmCmdToMemory | kBmCmdStart);
    w.eq.run();
    EXPECT_EQ(w.m->mem().read64(0x5000),
              hw::sectorToken(0x88ULL << 8 | 1, lba));
}

TEST(IdeConformance, AltStatusDoesNotAckIntrq)
{
    using namespace hw::ide;
    IdeWorld w;
    w.programRead48(100);
    w.eq.run();
    ASSERT_EQ(w.irqs, 1);
    // Reading the ALT status must not disturb anything; reading the
    // main status acks INTRQ (modelled as clearing irqPending).
    EXPECT_EQ(w.rd(kCtrlPort), kStatusDrdy);
    EXPECT_EQ(w.rd(kPioBase + kCmdStatus), kStatusDrdy);
}

TEST(IdeConformance, NienSuppressesInterrupt)
{
    using namespace hw::ide;
    IdeWorld w;
    w.wr(kCtrlPort, kCtrlNIen);
    w.programRead48(100);
    w.eq.run();
    EXPECT_EQ(w.irqs, 0) << "nIEN must gate INTRQ";
    // The operation still completed (data + BM irq bit).
    EXPECT_TRUE(w.rd(kBmBase + kBmStatus) & kBmStIrq);
}

TEST(IdeConformance, UnsupportedCommandSetsError)
{
    using namespace hw::ide;
    IdeWorld w;
    w.wr(kPioBase + kCmdStatus, 0xA1); // IDENTIFY PACKET: unsupported
    w.eq.run();
    EXPECT_TRUE(w.rd(kPioBase + kCmdStatus) & kStatusErr);
}

TEST(IdeConformance, SoftResetClearsState)
{
    using namespace hw::ide;
    IdeWorld w;
    w.wr(kPioBase + kSectorCount, 42);
    w.wr(kCtrlPort, kCtrlSrst);
    w.wr(kCtrlPort, 0);
    EXPECT_EQ(w.rd(kPioBase + kSectorCount), 0);
    EXPECT_EQ(w.rd(kPioBase + kCmdStatus), kStatusDrdy);
}

// --- AHCI ---

struct AhciWorld
{
    AhciWorld() : lan(eq, "lan")
    {
        hw::MachineConfig mc;
        mc.name = "m";
        mc.storage = hw::StorageKind::Ahci;
        mc.disk.capacityBytes = 1 * sim::kGiB;
        m = std::make_unique<hw::Machine>(eq, mc, lan, 1, lan, 2);
        m->intc().registerHandler(hw::ahci::kIrqVector,
                                  [this]() { ++irqs; });
    }

    std::uint32_t
    rd(sim::Addr off)
    {
        return static_cast<std::uint32_t>(m->bus().guestRead(
            IoSpace::Mmio, hw::ahci::kAbar + off, 4));
    }
    void
    wr(sim::Addr off, std::uint32_t v)
    {
        m->bus().guestWrite(IoSpace::Mmio, hw::ahci::kAbar + off, v,
                            4);
    }

    /** Build a one-sector read command in @p slot. */
    void
    buildSlot(unsigned slot, sim::Lba lba)
    {
        using namespace hw::ahci;
        sim::Addr table = 0x20000 + slot * 0x1000;
        sim::Addr cfis = table + kCfisOffset;
        m->mem().fill(cfis, 0, kCfisSize);
        m->mem().write8(cfis + kFisType, kFisTypeH2d);
        m->mem().write8(cfis + kFisFlags, kFisFlagC);
        m->mem().write8(cfis + kFisCommand, 0x25);
        m->mem().write8(cfis + kFisLba0, lba & 0xFF);
        m->mem().write8(cfis + kFisLba1, (lba >> 8) & 0xFF);
        m->mem().write8(cfis + kFisLba2, (lba >> 16) & 0xFF);
        m->mem().write8(cfis + kFisCount0, 1);
        sim::Addr prd = table + kPrdtOffset;
        m->mem().write32(prd, 0x30000 + slot * 0x1000);
        m->mem().write32(prd + 12, sim::kSectorSize - 1);
        sim::Addr hdr = 0x10000 + slot * kCmdHeaderSize;
        m->mem().write32(hdr, 5u | (1u << kHdrPrdtlShift));
        m->mem().write32(hdr + 8,
                         static_cast<std::uint32_t>(table));
    }

    sim::EventQueue eq;
    net::Network lan;
    std::unique_ptr<hw::Machine> m;
    int irqs = 0;
};

TEST(AhciConformance, CiIsW1SAndClearsOnCompletion)
{
    using namespace hw::ahci;
    AhciWorld w;
    w.m->disk().store().write(7, 1, 0x99ULL << 8 | 1);
    w.wr(kGhc, kGhcAe | kGhcIe);
    w.wr(kPxClb, 0x10000);
    w.wr(kPxIe, kIsDhrs);
    w.wr(kPxCmd, kCmdSt | kCmdFre);
    w.buildSlot(3, 7);
    w.wr(kPxCi, 1u << 3);
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 0u)
        << "device clears CI on completion";
    EXPECT_EQ(w.irqs, 1);
    EXPECT_EQ(w.m->mem().read64(0x30000 + 3 * 0x1000),
              hw::sectorToken(0x99ULL << 8 | 1, 7));
    // PxIS DHRS is W1C.
    EXPECT_TRUE(w.rd(kPxIs) & kIsDhrs);
    w.wr(kPxIs, kIsDhrs);
    EXPECT_FALSE(w.rd(kPxIs) & kIsDhrs);
}

TEST(AhciConformance, MultipleSlotsRoundRobin)
{
    using namespace hw::ahci;
    AhciWorld w;
    w.wr(kGhc, kGhcAe | kGhcIe);
    w.wr(kPxClb, 0x10000);
    w.wr(kPxIe, kIsDhrs);
    w.wr(kPxCmd, kCmdSt | kCmdFre);
    for (unsigned s : {0u, 5u, 17u, 31u}) {
        w.m->disk().store().write(100 + s, 1,
                                  (0x100ULL + s) << 8 | 1);
        w.buildSlot(s, 100 + s);
    }
    w.wr(kPxCi, (1u << 0) | (1u << 5) | (1u << 17) | (1u << 31));
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 0u);
    for (unsigned s : {0u, 5u, 17u, 31u})
        EXPECT_EQ(w.m->mem().read64(0x30000 + s * 0x1000),
                  hw::sectorToken((0x100ULL + s) << 8 | 1, 100 + s));
}

TEST(AhciConformance, HbaResetClearsEverything)
{
    using namespace hw::ahci;
    AhciWorld w;
    w.wr(kPxIe, kIsDhrs);
    w.wr(kGhc, kGhcHr);
    EXPECT_EQ(w.rd(kPxIe), 0u);
    EXPECT_EQ(w.rd(kPxCi), 0u);
    // AE stays asserted after reset.
    EXPECT_TRUE(w.rd(kGhc) & kGhcAe);
}

TEST(AhciConformance, NoProcessingWithoutStartBit)
{
    using namespace hw::ahci;
    AhciWorld w;
    w.wr(kGhc, kGhcAe | kGhcIe);
    w.wr(kPxClb, 0x10000);
    w.buildSlot(0, 50);
    // ST not set: CI latches but nothing runs.
    w.wr(kPxCi, 1);
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 1u)
        << "command must stay pending until ST is set";
    // Now start the port: the latched command executes.
    w.wr(kPxCmd, kCmdSt | kCmdFre);
    w.wr(kPxCi, 1);
    w.eq.run();
    EXPECT_EQ(w.rd(kPxCi), 0u);
}

} // namespace
