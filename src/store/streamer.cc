#include "store/streamer.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace store {

namespace {

/** Failed attempts on a piece before backing off to a timed retry. */
constexpr unsigned kMaxPieceAttempts = 32;

} // namespace

ChunkStreamer::ChunkStreamer(sim::EventQueue &eq, std::string name,
                             aoe::AoeInitiator &aoe, StoreFabric &fabric,
                             std::string image, net::MacAddr self_mac,
                             sim::Lba image_sectors)
    : sim::SimObject(eq, std::move(name)), aoe_(aoe), fabric_(fabric),
      image_(std::move(image)), self_(self_mac),
      imageSectors_(image_sectors), obsTrack_(this->name())
{
    sim::fatalIf(fabric_.catalog().find(image_) == nullptr,
                 "streamer for unknown image ", image_);
}

void
ChunkStreamer::fetch(sim::Lba lba, std::uint32_t count, FetchDone done,
                     bool background)
{
    sim::panicIfNot(count > 0 && lba + count <= imageSectors_,
                    "store fetch outside the image");
    auto op = std::make_shared<FetchOp>();
    op->lba = lba;
    op->count = count;
    op->tokens.resize(count);
    op->done = std::move(done);

    // Cut the range at chunk boundaries.
    std::vector<Piece> pieces;
    sim::Lba pos = lba;
    sim::Lba end = lba + count;
    while (pos < end) {
        std::size_t idx = chunkIndexOf(pos);
        sim::Lba chunk_end = chunkStartLba(idx) + kChunkSectors;
        sim::Lba piece_end = std::min(end, chunk_end);
        pieces.push_back(Piece{
            pos, static_cast<std::uint32_t>(piece_end - pos), idx});
        pos = piece_end;
    }
    op->remaining = pieces.size();
    for (const Piece &p : pieces) {
        if (gate_ && background) {
            // Bulk traffic books each piece against the deployment
            // budget at issue; retries are not re-charged (the bytes
            // were already granted).
            sim::Tick start =
                gate_(sim::Bytes(p.count) * sim::kSectorSize, now());
            if (start > now()) {
                ++gateWaits_;
                schedule(start - now(), [this, op, p]() {
                    startPiece(op, p, 0);
                });
                continue;
            }
        }
        startPiece(op, p, 0);
    }
}

void
ChunkStreamer::startPiece(const std::shared_ptr<FetchOp> &op,
                          Piece piece, unsigned attempts)
{
    if (halted_)
        return;
    if (attempts >= kMaxPieceAttempts) {
        // Everything reachable failed repeatedly; pause and retry
        // fresh (sources may restart or lose their suspect mark).
        ++stalls_;
        schedule(fabric_.params().noSourceRetry,
                 [this, op, piece]() { startPiece(op, piece, 0); });
        return;
    }

    Digest d = fabric_.catalog().digestAt(image_, piece.chunkIdx);

    // Warm peers first.
    for (net::MacAddr peer : fabric_.peers().sourcesFor(d, self_)) {
        if (live(peer)) {
            fetchFromPeer(op, piece, attempts, peer);
            return;
        }
    }
    fetchFromSeeds(op, piece, attempts);
}

void
ChunkStreamer::fetchFromPeer(const std::shared_ptr<FetchOp> &op,
                             Piece piece, unsigned attempts,
                             net::MacAddr peer)
{
    fabric_.peers().noteFetchStart(peer);
    aoe_.readSectorsVia(
        peer, piece.lba, piece.count,
        [this, op, piece, attempts, peer](
            aoe::RoutedStatus st,
            const std::vector<std::uint64_t> &tokens) {
            fabric_.peers().noteFetchEnd(peer);
            if (halted_)
                return;
            if (st == aoe::RoutedStatus::Ok) {
                if (peerHits_++ == 0 && obs::armed()) {
                    obs::Tracer &t = obs::tracer();
                    t.milestone(obsTrack_.id(t),
                                "store.peer_tier_engaged", now(), 1.0);
                }
                commit(op, piece, tokens);
                return;
            }
            ++sourceFailures_;
            suspect(peer);
            startPiece(op, piece, attempts + 1);
        });
}

void
ChunkStreamer::fetchFromSeeds(const std::shared_ptr<FetchOp> &op,
                              Piece piece, unsigned attempts)
{
    Digest d = fabric_.catalog().digestAt(image_, piece.chunkIdx);
    auto plan = fabric_.placement().readPlanFor(
        d, [this](net::MacAddr mac) { return live(mac); },
        piece.count);
    if (!plan) {
        // Too few stripe members reachable: the chunk cannot be
        // reconstructed right now.  Park the piece and retry.
        ++stalls_;
        schedule(fabric_.params().noSourceRetry,
                 [this, op, piece]() { startPiece(op, piece, 0); });
        return;
    }

    // Execute the code's plan DAG: issue the fetch steps (their
    // sector counts tile the piece), then pay the summed combine
    // cost before the data is usable.
    struct Joined
    {
        std::vector<std::uint64_t> tokens;
        std::size_t remaining = 0;
        bool failed = false;
    };
    auto join = std::make_shared<Joined>();
    join->tokens.resize(piece.count);

    const bool reconstructed = plan->degraded();
    const sim::Tick combine = plan->combineCost();

    struct Slice
    {
        net::MacAddr src;
        sim::Lba lba;
        std::uint32_t off;
        std::uint32_t count;
    };
    std::vector<Slice> slices;
    std::uint32_t off = 0;
    for (const ec::PlanStep &step : plan->steps) {
        if (step.op != ec::StepOp::Fetch)
            continue;
        slices.push_back(
            Slice{step.source, piece.lba + off, off, step.sectors});
        off += step.sectors;
    }
    join->remaining = slices.size();

    for (const Slice &s : slices) {
        aoe_.readSectorsVia(
            s.src, s.lba, s.count,
            [this, op, piece, attempts, join, s, reconstructed,
             combine](
                aoe::RoutedStatus st,
                const std::vector<std::uint64_t> &tokens) {
                if (halted_)
                    return;
                if (st != aoe::RoutedStatus::Ok) {
                    ++sourceFailures_;
                    suspect(s.src);
                    if (!join->failed) {
                        // First failing slice re-plans the piece; the
                        // surviving slices' data is discarded (a real
                        // decoder needs k complete shards).
                        join->failed = true;
                        startPiece(op, piece, attempts + 1);
                    }
                    return;
                }
                if (join->failed)
                    return;
                std::copy(tokens.begin(), tokens.end(),
                          join->tokens.begin() + s.off);
                if (--join->remaining > 0)
                    return;
                ++seedFetches_;
                if (reconstructed) {
                    if (reconstructions_++ == 0 && obs::armed()) {
                        obs::Tracer &t = obs::tracer();
                        t.milestone(obsTrack_.id(t),
                                    "store.reconstruction", now(),
                                    1.0);
                    }
                    // Model the plan's combine steps (XOR peel / GF
                    // decode) before the data is usable.
                    schedule(combine, [this, op, piece, join]() {
                        if (!halted_)
                            commit(op, piece, join->tokens);
                    });
                    return;
                }
                commit(op, piece, join->tokens);
            });
    }
}

void
ChunkStreamer::commit(const std::shared_ptr<FetchOp> &op,
                      const Piece &piece,
                      const std::vector<std::uint64_t> &tokens)
{
    std::copy(tokens.begin(), tokens.end(),
              op->tokens.begin() + (piece.lba - op->lba));
    if (--op->remaining == 0 && op->done)
        op->done(op->tokens);
}

void
ChunkStreamer::suspect(net::MacAddr mac)
{
    suspectUntil_[mac] = now() + fabric_.params().suspectTtl;
}

bool
ChunkStreamer::live(net::MacAddr mac)
{
    auto it = suspectUntil_.find(mac);
    if (it != suspectUntil_.end()) {
        if (now() < it->second)
            return false;
        suspectUntil_.erase(it);
    }
    return fabric_.sourceUp(mac);
}

void
ChunkStreamer::noteLocalWrite(sim::Lba lba, std::uint32_t count)
{
    sim::Lba end = std::min<sim::Lba>(lba + count, imageSectors_);
    sim::Lba pos = std::min<sim::Lba>(lba, end);
    while (pos < end) {
        std::size_t idx = chunkIndexOf(pos);
        sim::Lba chunk_end = std::min<sim::Lba>(
            chunkStartLba(idx) + kChunkSectors, imageSectors_);
        sim::Lba seg_end = std::min(end, chunk_end);
        ChunkState &cs = chunkState_[idx];
        cs.landed += static_cast<std::uint32_t>(seg_end - pos);
        std::uint32_t span = static_cast<std::uint32_t>(
            chunk_end - chunkStartLba(idx));
        if (cs.state == 0 && cs.landed >= span) {
            cs.state = 1;
            fabric_.noteChunkLanded(self_, image_, idx);
        }
        pos = seg_end;
    }
}

void
ChunkStreamer::notePoisoned(sim::Lba lba, std::uint32_t count)
{
    if (count == 0)
        return;
    std::size_t first = chunkIndexOf(lba);
    std::size_t last = chunkIndexOf(
        std::min<sim::Lba>(lba + count - 1, imageSectors_ - 1));
    for (std::size_t idx = first; idx <= last; ++idx) {
        ChunkState &cs = chunkState_[idx];
        if (cs.state == 1)
            fabric_.dropChunk(self_, image_, idx);
        cs.state = 2;
    }
}

} // namespace store
