#include "hw/disk.hh"

#include <algorithm>
#include <cmath>

#include "simcore/logging.hh"

namespace hw {

Disk::Disk(sim::EventQueue &eq, std::string name, DiskParams params,
           std::uint64_t seed)
    : sim::SimObject(eq, std::move(name)),
      params_(params),
      capSectors(params.capacityBytes / sim::kSectorSize),
      rng(sim::Rng::seedFrom(this->name(), seed))
{
}

void
Disk::submit(DiskRequest req)
{
    sim::panicIfNot(req.sectors > 0, "zero-length disk request");
    sim::panicIfNot(req.lba + req.sectors <= capSectors,
                    "disk request beyond capacity: lba ", req.lba,
                    " +", req.sectors);
    queue.push_back(std::move(req));
    if (!active)
        startNext();
}

void
Disk::startNext()
{
    if (queue.empty())
        return;
    active = true;
    DiskRequest req = std::move(queue.front());
    queue.pop_front();

    sim::Tick svc = serviceTime(req);
    mediaBusy += svc;

    if (req.isWrite) {
        ++numWrites;
        writeBytes += sim::Bytes(req.sectors) * sim::kSectorSize;
    } else {
        ++numReads;
        readBytes += sim::Bytes(req.sectors) * sim::kSectorSize;
    }

    cacheInsert(req);
    headPos = req.lba + req.sectors;

    schedule(svc, [this, req = std::move(req)]() {
        if (req.done)
            req.done();
        active = false;
        startNext();
    });
}

bool
Disk::cacheHit(const DiskRequest &req) const
{
    if (req.isWrite || req.sectors > params_.cacheTrackLimit)
        return false;
    for (const auto &[lba, sectors] : cacheLru) {
        if (req.lba >= lba && req.lba + req.sectors <= lba + sectors)
            return true;
    }
    return false;
}

void
Disk::cacheInsert(const DiskRequest &req)
{
    if (req.sectors > params_.cacheTrackLimit)
        return;
    // Move-to-front if an existing slot covers it; else push.
    for (auto it = cacheLru.begin(); it != cacheLru.end(); ++it) {
        if (req.lba >= it->first &&
            req.lba + req.sectors <= it->first + it->second) {
            auto slot = *it;
            cacheLru.erase(it);
            cacheLru.push_front(slot);
            return;
        }
    }
    cacheLru.emplace_front(req.lba, req.sectors);
    while (cacheLru.size() > params_.cacheSlots)
        cacheLru.pop_back();
}

sim::Tick
Disk::serviceTime(const DiskRequest &req)
{
    if (cacheHit(req)) {
        ++numCacheHits;
        return params_.cacheHitTime;
    }

    double rate_mbps =
        req.isWrite ? params_.writeMBps : params_.readMBps;
    double bytes = static_cast<double>(req.sectors) *
                   static_cast<double>(sim::kSectorSize);
    auto transfer = static_cast<sim::Tick>(
        bytes / (rate_mbps * 1e6) * static_cast<double>(sim::kSec));

    sim::Tick svc = params_.commandOverhead + transfer;

    if (req.lba != headPos) {
        ++numSeeks;
        double dist = std::abs(static_cast<double>(req.lba) -
                               static_cast<double>(headPos));
        double frac = dist / static_cast<double>(capSectors);
        // Seek time grows with the square root of distance, a standard
        // first-order model of arm acceleration.
        auto seek = static_cast<sim::Tick>(
            static_cast<double>(params_.minSeek) +
            std::sqrt(frac) *
                static_cast<double>(params_.maxSeek - params_.minSeek));
        sim::Tick rot = static_cast<sim::Tick>(
            rng.uniform() * static_cast<double>(params_.revolution));
        svc += seek + rot;
    }

    if (faults && faults->anyActive()) {
        sim::FaultSite err = req.isWrite
                                 ? sim::FaultSite::DiskWriteError
                                 : sim::FaultSite::DiskReadError;
        if (faults->shouldFire(err, req.lba)) {
            // A recoverable media error: the drive re-reads/rewrites
            // the sector over several revolutions before succeeding,
            // as real drives do before reporting UNC.
            ++numMediaRetries;
            svc += 3 * params_.revolution;
        }
        if (faults->shouldFire(sim::FaultSite::DiskLatencySpike,
                               req.lba)) {
            svc += faults->magnitude(sim::FaultSite::DiskLatencySpike,
                                     50 * sim::kMs);
        }
    }
    return svc;
}

} // namespace hw
