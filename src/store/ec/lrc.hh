/**
 * @file
 * Azure-style locally-repairable code.
 *
 * Stripe layout: [0, k) data, [k, k+g) one local XOR parity per
 * contiguous data group of k/g members, [k+g, k+g+m) global RS
 * parities.  The whole point is the repair plan: a lost data member
 * rebuilds from its *group* (k/g shards, XOR combine) instead of k
 * shards with a GF decode; globals exist only to survive multi-member
 * failures.  Degraded reads substitute a dead data member's slice
 * with its local parity (XOR cost) when the rest of the group is
 * live, falling back to a global parity (full GF cost) otherwise —
 * same bytes on the wire as a healthy read, cheaper combine than
 * flat RS.
 */

#ifndef STORE_EC_LRC_HH
#define STORE_EC_LRC_HH

#include "store/ec/code.hh"

namespace store::ec {

class Lrc : public Code
{
  public:
    explicit Lrc(CodeParams p);

    CodeKind kind() const override { return CodeKind::Lrc; }
    unsigned parityMembers() const override
    {
        return prm_.localGroups + prm_.parityShards;
    }
    unsigned localParities() const override { return prm_.localGroups; }

    /** Data members per local group (k / localGroups). */
    unsigned groupSize() const { return groupSize_; }
    /** Group index of data member @p i. */
    unsigned groupOf(unsigned i) const { return i / groupSize_; }
    /** Stripe index of group @p j's local parity. */
    unsigned localParityIndex(unsigned j) const
    {
        return dataShards() + j;
    }

    std::optional<Plan>
    readPlan(const std::vector<net::MacAddr> &stripe, const LiveFn &live,
             std::uint32_t sectors) const override;

    std::optional<Plan>
    repairPlan(const std::vector<net::MacAddr> &stripe, unsigned lost,
               const LiveFn &live,
               std::uint32_t chunkSectors) const override;

  private:
    /** Every data member of group @p j except @p skip is live. */
    bool groupDataLive(const std::vector<net::MacAddr> &stripe,
                       const LiveFn &live, unsigned j,
                       unsigned skip) const;

    unsigned groupSize_;
};

} // namespace store::ec

#endif // STORE_EC_LRC_HH
