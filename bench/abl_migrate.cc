/**
 * @file
 * Ablation: malleable metal — re-virtualization, pre-copy live
 * migration and delta re-imaging. Three scenarios, all enforced by
 * exit code:
 *
 *  - downtime_vs_dirty: one instance on the serial Cloud migrates
 *    while a randomized disk-write workload races the pre-copy
 *    rounds, swept over memory re-dirty rates. Gates: every
 *    migration completes; the destination disk at handoff is
 *    byte-identical to the source's write history (shadow-model
 *    check) with zero writes lost in the quiesce; and the zero-dirty
 *    run hits the downtime floor exactly (downtime == handoff
 *    budget, one round, empty stop-and-copy).
 *  - overlay_reimage: a tenant dirties ~10% of its working set, is
 *    released through releaseToOverlay, and the overlay re-lease is
 *    compared against a full redeploy of a cold image. With a warm
 *    peer exporting the shared base chunks, the delta redeploy must
 *    pull < 50% of the full redeploy's bytes off the seed-server
 *    backbone (it lands near the dirty fraction).
 *  - sharded_determinism: the MigrateWorld — per-rack instances
 *    migrating to their neighbors over a shared fat-tree, shipments
 *    crossing shard mailboxes — must produce the identical result
 *    fingerprint on every shard count, with zero aborts.
 *
 * Emits BENCH_migrate.json. `--smoke` shrinks the sweeps for the
 * bench-smoke ctest label (and the TSan CI job).
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "bench/migrate_world.hh"
#include "bmcast/cloud.hh"
#include "hw/disk_store.hh"
#include "migrate/migration.hh"
#include "simcore/random.hh"
#include "simcore/table.hh"
#include "store/chunk.hh"

using namespace bench;

namespace {

constexpr std::uint64_t kImg = 0xBE9C000000000001ULL;
constexpr sim::Bytes kImageBytes = 32 * sim::kMiB;
constexpr sim::Lba kSectors = kImageBytes / sim::kSectorSize;

/** Small-image region tuned so a migration run takes seconds of
 *  simulated time, not the paper's 16 minutes. */
bmcast::CloudConfig
regionConfig(unsigned machines)
{
    bmcast::CloudConfig cfg;
    cfg.machines = machines;
    cfg.machineTemplate.disk.capacityBytes = 2 * sim::kGiB;
    cfg.vmm.bootTime = 5 * sim::kSec;
    cfg.vmm.moderation.vmmWriteInterval = 2 * sim::kMs;
    cfg.vmm.moderation.guestIoFreqThreshold = 1e9;
    cfg.guestTemplate.boot.loaderBytes = 1 * sim::kMiB;
    cfg.guestTemplate.boot.kernelBytes = 4 * sim::kMiB;
    cfg.guestTemplate.boot.numReads = 40;
    cfg.guestTemplate.boot.cpuTotal = 500 * sim::kMs;
    cfg.guestTemplate.boot.regionBytes = 16 * sim::kMiB;
    cfg.migrate.memoryBytes = 8 * sim::kMiB;
    cfg.migrate.memoryDirtyBytesPerSec = 1 * sim::kMiB;
    cfg.migrate.stopCopyThresholdBytes = 2 * sim::kMiB;
    cfg.migrate.maxRounds = 8;
    cfg.migrate.handoffTime = 50 * sim::kMs;
    return cfg;
}

bool
driveUntil(sim::EventQueue &eq, sim::Tick deadline,
           const std::function<bool()> &pred)
{
    while (!pred()) {
        if (eq.now() > deadline || eq.empty())
            return pred();
        eq.step();
    }
    return true;
}

/** Drive one provision to bare metal + a Serving lease. */
bmcast::Instance *
deployOne(sim::EventQueue &eq, bmcast::Cloud &cloud,
          const std::string &image)
{
    bmcast::Instance *inst = cloud.provision(image, nullptr);
    if (!inst)
        return nullptr;
    if (!driveUntil(eq, 40000 * sim::kSec, [&]() {
            return inst->state() ==
                       bmcast::Instance::State::BareMetal &&
                   inst->lease().state() == cloud::LeaseState::Serving;
        }))
        return nullptr;
    return inst;
}

/**
 * The racing workload: a self-rescheduling random writer on the
 * instance's guest, gated on the migration pause like real vCPUs.
 * Each write lands in its own 64-sector stripe and is mirrored into
 * a shadow disk at issue time, so the expected disk image is
 * order-independent: the golden image plus every issued write.
 */
struct Writer
{
    Writer(sim::EventQueue &eq, bmcast::Instance &inst,
           std::uint64_t seed)
        : eq(eq), inst(inst), rng(seed)
    {
        shadow.write(0, kSectors, kImg);
        arm();
    }

    void
    arm()
    {
        eq.schedule(3 * sim::kMs, [this]() {
            migrate::MigrationManager *mig = inst.migration();
            if (mig && mig->finished())
                return;
            if ((!mig || !mig->paused()) &&
                (writeSeq + 1) * 64 <= kSectors) {
                sim::Lba off = rng.uniformInt(0, 31);
                std::uint64_t burst = rng.uniformInt(1, 64 - off);
                sim::Lba lba = writeSeq * 64 + off;
                std::uint64_t base =
                    0xD000000000000000ULL | rng.next() >> 16;
                shadow.write(lba, burst, base);
                inst.guest().blk().write(
                    lba, static_cast<std::uint32_t>(burst), base,
                    [this]() { ++writesDone; });
                ++writeSeq;
                ++writesIssued;
            }
            arm();
        });
    }

    sim::EventQueue &eq;
    bmcast::Instance &inst;
    sim::Rng rng;
    hw::DiskStore shadow;
    std::uint64_t writeSeq = 0;
    std::uint64_t writesIssued = 0;
    std::uint64_t writesDone = 0;
};

struct DirtyRun
{
    sim::Bytes dirtyBps = 0;
    bool withWriter = false;
    double downtimeMs = 0.0;
    unsigned rounds = 0;
    sim::Bytes bytesShipped = 0;
    sim::Bytes finalBytes = 0;
    bool forcedStop = false;
    std::uint64_t writes = 0;
    bool ok = true;
    std::string detail;
};

void
fail(bool &ok, std::string &detail, const std::string &why)
{
    ok = false;
    if (detail.empty())
        detail = why;
}

/** One downtime_vs_dirty point: deploy, (optionally) race a writer,
 *  migrate to the other slot, gate identity + completion. */
DirtyRun
downtimePoint(sim::Bytes dirty_bps, bool with_writer)
{
    DirtyRun out;
    out.dirtyBps = dirty_bps;
    out.withWriter = with_writer;

    sim::EventQueue eq;
    bmcast::CloudConfig cfg = regionConfig(2);
    cfg.migrate.memoryDirtyBytesPerSec = dirty_bps;
    bmcast::Cloud cloud(eq, "region", cfg);
    cloud.addImage("img", kImageBytes, kImg);
    bmcast::Instance *inst = deployOne(eq, cloud, "img");
    if (!inst) {
        fail(out.ok, out.detail, "deployment never reached serving");
        return out;
    }

    std::unique_ptr<Writer> wr;
    if (with_writer)
        wr = std::make_unique<Writer>(eq, *inst, 1 + dirty_bps);

    const unsigned src_slot = inst->lease().slot();
    if (cloud.migrate(*inst, 1u - src_slot) !=
        cloud::MigrateReject::None) {
        fail(out.ok, out.detail, "migrate() refused");
        return out;
    }
    migrate::MigrationManager *mig = inst->migration();
    if (!driveUntil(eq, 40000 * sim::kSec,
                    [&]() { return mig->finished(); })) {
        fail(out.ok, out.detail, "migration never finished");
        return out;
    }

    const migrate::MigrateStats &st = mig->stats();
    out.downtimeMs = sim::toSeconds(st.downtime) * 1e3;
    out.rounds = st.rounds;
    out.bytesShipped = st.bytesShipped;
    out.finalBytes = st.finalBytes;
    out.forcedStop = st.forcedStop;
    if (st.aborted)
        fail(out.ok, out.detail, "migration aborted");
    if (inst->lease().state() != cloud::LeaseState::Serving ||
        inst->lease().slot() != 1u - src_slot)
        fail(out.ok, out.detail, "lease not serving on the dest slot");

    if (wr) {
        out.writes = wr->writesIssued;
        if (wr->writesIssued == 0)
            fail(out.ok, out.detail, "workload never wrote");
        if (wr->writesDone != wr->writesIssued)
            fail(out.ok, out.detail,
                 "writes lost in the handoff quiesce");
        // The tentpole gate: destination disk == image + every write
        // the guest ever issued, byte for byte.
        if (!migrate::diffDisks(inst->machine().disk().store(),
                                wr->shadow, 0, kSectors)
                 .empty())
            fail(out.ok, out.detail,
                 "migrated disk diverges from the write history");
    } else if (dirty_bps == 0) {
        // The downtime floor, exactly.
        if (st.rounds != 1 || st.finalBytes != 0 ||
            st.downtime != cfg.migrate.handoffTime)
            fail(out.ok, out.detail,
                 "zero-dirty downtime missed the handoff floor");
    }
    return out;
}

struct OverlayOut
{
    sim::Bytes overlayBytes = 0;
    sim::Bytes fullBytes = 0;
    double ratio = 0.0;
    std::uint64_t peerHits = 0;
    bool ok = true;
    std::string detail;
};

/**
 * overlay_reimage: warm peer serving the base image, tenant dirties
 * ~10% of its chunks, releaseToOverlay, re-lease from the overlay vs
 * a full redeploy of a cold image — seed-server egress compared.
 */
OverlayOut
overlayReimage()
{
    OverlayOut out;
    constexpr std::uint64_t kDirty = 0xDE17A00000000001ULL;
    constexpr std::uint64_t kCold = 0xC01D000000000001ULL;

    sim::EventQueue eq;
    bmcast::CloudConfig cfg = regionConfig(3);
    cfg.store.enabled = true;
    cfg.store.seedServers = 4;
    cfg.store.dataShards = 2;
    cfg.store.parityShards = 2;
    bmcast::Cloud cloud(eq, "region", cfg);
    cloud.addImage("img", kImageBytes, kImg);

    auto seedBytes = [&cloud]() {
        sim::Bytes b = 0;
        for (unsigned i = 0; i < cloud.seedServerCount(); ++i)
            b += cloud.seedServer(i).dataBytesOut();
        return b;
    };

    // The warm peer: stays leased, exporting every base chunk.
    bmcast::Instance *peer = deployOne(eq, cloud, "img");
    bmcast::Instance *tenant = peer ? deployOne(eq, cloud, "img")
                                    : nullptr;
    if (!tenant) {
        fail(out.ok, out.detail, "setup deployments failed");
        return out;
    }

    // Dirty ~10% of the working set: 13 of the 128 chunks.
    const std::size_t chunks = store::chunkCount(kSectors);
    std::vector<std::size_t> dirtied;
    for (std::size_t c = 3; c < chunks && dirtied.size() < 13; c += 9)
        dirtied.push_back(c);
    for (std::size_t c : dirtied)
        tenant->machine().disk().store().write(
            store::chunkStartLba(c), store::kChunkSectors,
            kDirty + c);

    const sim::Bytes s0 = seedBytes();
    cloud.releaseToOverlay(*tenant, "ovl");
    if (!driveUntil(eq, 40000 * sim::kSec,
                    [&]() { return cloud.freeMachines() == 2; })) {
        fail(out.ok, out.detail, "overlay release never reclaimed");
        return out;
    }

    bmcast::Instance *re = deployOne(eq, cloud, "ovl");
    if (!re) {
        fail(out.ok, out.detail, "overlay redeploy failed");
        return out;
    }
    out.overlayBytes = seedBytes() - s0;
    if (store::ChunkStreamer *st = re->deployer().vmm().streamer()) {
        out.peerHits = st->peerHits();
        if (st->peerHits() == 0)
            fail(out.ok, out.detail,
                 "overlay redeploy never used the warm peer");
    }

    // The redeployed disk is the tenant's exact working set.
    const hw::DiskStore &disk = re->machine().disk().store();
    if (!cloud.storeFabric()->catalog().verifyDisk("ovl", disk))
        fail(out.ok, out.detail, "overlay redeploy content mismatch");
    for (std::size_t c : dirtied)
        if (!disk.rangeHasBase(store::chunkStartLba(c),
                               store::kChunkSectors, kDirty + c))
            fail(out.ok, out.detail, "overlay delta chunk missing");

    // The comparison: a full redeploy of a cold image nobody holds.
    cloud.addImage("cold", kImageBytes, kCold);
    const sim::Bytes s1 = seedBytes();
    bmcast::Instance *full = deployOne(eq, cloud, "cold");
    if (!full) {
        fail(out.ok, out.detail, "full redeploy failed");
        return out;
    }
    out.fullBytes = seedBytes() - s1;

    if (out.fullBytes == 0)
        fail(out.ok, out.detail, "full redeploy shipped nothing");
    else
        out.ratio = double(out.overlayBytes) / double(out.fullBytes);
    if (out.overlayBytes * 2 >= out.fullBytes)
        fail(out.ok, out.detail,
             "overlay reimage bytes " +
                 std::to_string(out.overlayBytes) + " not < 50% of " +
                 std::to_string(out.fullBytes));
    return out;
}

struct ShardOut
{
    std::vector<ScaleRecord> recs;
    bool ok = true;
    std::string detail;
};

/** sharded_determinism: the MigrateWorld fingerprint across shard
 *  counts, with chaos disarmed (abl_faults covers armed plans). */
ShardOut
shardedDeterminism(const std::vector<unsigned> &shard_counts)
{
    ShardOut out;
    std::uint64_t serial_fp = 0;
    for (unsigned shards : shard_counts) {
        migratebench::MigrateWorldParams p;
        p.racks = 8;
        p.shards = shards;
        p.seed = 42;
        p.imageBytes = 8 * sim::kMiB;
        p.migrate.memoryBytes = 4 * sim::kMiB;
        p.migrate.memoryDirtyBytesPerSec = 512 * sim::kKiB;
        p.migrate.stopCopyThresholdBytes = 1 * sim::kMiB;
        p.migrate.handoffTime = 20 * sim::kMs;
        p.runFor = 5 * sim::kSec;

        migratebench::MigrateWorld w(p);
        auto t0 = std::chrono::steady_clock::now();
        w.run();
        auto t1 = std::chrono::steady_clock::now();

        ScaleRecord rec;
        rec.nodes = p.racks;
        rec.shards = shards;
        rec.wallMs =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        rec.events = w.totalExecuted();
        if (rec.wallMs > 0.0)
            rec.eventsPerSec =
                double(rec.events) / (rec.wallMs / 1e3);
        rec.fingerprint = w.fingerprint();
        out.recs.push_back(rec);

        if (w.migrationsDone() != p.racks)
            fail(out.ok, out.detail,
                 "not every rack's migration completed");
        if (w.migrationsAborted() != 0)
            fail(out.ok, out.detail, "unexpected aborts");
        if (shards == shard_counts.front())
            serial_fp = rec.fingerprint;
        else if (rec.fingerprint != serial_fp)
            fail(out.ok, out.detail,
                 std::to_string(shards) +
                     " shards diverged from serial");
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

    figureHeader(
        std::string("Ablation: malleable metal (re-virtualization + "
                    "pre-copy migration + delta reimage") +
        (smoke ? ", smoke)" : ")"));

    // --- downtime vs dirty rate ---
    std::vector<sim::Bytes> rates;
    if (smoke)
        rates = {0, 2 * sim::kMiB};
    else
        rates = {0, 512 * sim::kKiB, 2 * sim::kMiB, 8 * sim::kMiB};

    std::vector<DirtyRun> sweep;
    bool sweep_ok = true;
    std::string sweep_detail;
    for (sim::Bytes bps : rates) {
        DirtyRun r = downtimePoint(bps, bps != 0);
        if (!r.ok)
            fail(sweep_ok, sweep_detail, r.detail);
        sweep.push_back(r);
    }

    {
        sim::Table t({"Dirty (MiB/s)", "Writer", "Downtime (ms)",
                      "Rounds", "Shipped (MiB)", "Final (KiB)",
                      "Forced", "OK"});
        for (const auto &r : sweep)
            t.addRow({sim::Table::num(
                          double(r.dirtyBps) / double(sim::kMiB), 2),
                      r.withWriter ? "yes" : "no",
                      sim::Table::num(r.downtimeMs, 2),
                      std::to_string(r.rounds),
                      sim::Table::num(double(r.bytesShipped) /
                                          double(sim::kMiB),
                                      2),
                      sim::Table::num(double(r.finalBytes) /
                                          double(sim::kKiB),
                                      1),
                      r.forcedStop ? "yes" : "no",
                      r.ok ? "yes" : "NO"});
        std::cout << "\n--- downtime_vs_dirty ---\n";
        t.print(std::cout);
        if (!sweep_ok)
            std::cout << "FAILED: " << sweep_detail << "\n";
    }

    // --- overlay reimage vs full redeploy ---
    OverlayOut ovl = overlayReimage();
    std::cout << "\n--- overlay_reimage ---\n"
              << "overlay redeploy backbone bytes: "
              << ovl.overlayBytes << "\nfull redeploy backbone bytes: "
              << ovl.fullBytes << "\nratio: "
              << sim::Table::num(ovl.ratio, 3)
              << " (gate < 0.50), warm-peer chunk hits: "
              << ovl.peerHits << "\n";
    if (!ovl.ok)
        std::cout << "FAILED: " << ovl.detail << "\n";

    // --- sharded determinism ---
    std::vector<unsigned> shard_counts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    ShardOut sharded = shardedDeterminism(shard_counts);
    {
        sim::Table t({"Shards", "Wall (ms)", "Events", "Events/s",
                      "Fingerprint"});
        for (const auto &r : sharded.recs) {
            std::ostringstream fp;
            fp << "0x" << std::hex << r.fingerprint;
            t.addRow({std::to_string(r.shards),
                      sim::Table::num(r.wallMs, 1),
                      std::to_string(r.events),
                      sim::Table::num(r.eventsPerSec / 1e6, 2) + "M",
                      fp.str()});
        }
        std::cout << "\n--- sharded_determinism ---\n";
        t.print(std::cout);
        if (!sharded.ok)
            std::cout << "FAILED: " << sharded.detail << "\n";
    }

    bool ok = sweep_ok && ovl.ok && sharded.ok;

    std::ofstream json("BENCH_migrate.json");
    json << "{\n  \"bench\": \"abl_migrate\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"scenarios\": {\n"
         << "    \"downtime_vs_dirty\": {\n"
         << "      \"gate\": " << (sweep_ok ? "true" : "false")
         << ",\n      \"points\": [\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const DirtyRun &r = sweep[i];
        json << "        {\"dirty_bps\": " << r.dirtyBps
             << ", \"with_writer\": "
             << (r.withWriter ? "true" : "false")
             << ", \"downtime_ms\": "
             << sim::Table::num(r.downtimeMs, 3)
             << ", \"rounds\": " << r.rounds
             << ", \"bytes_shipped\": " << r.bytesShipped
             << ", \"final_bytes\": " << r.finalBytes
             << ", \"forced_stop\": "
             << (r.forcedStop ? "true" : "false")
             << ", \"writes\": " << r.writes << "}"
             << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    json << "      ]\n    },\n"
         << "    \"overlay_reimage\": {\n"
         << "      \"gate\": " << (ovl.ok ? "true" : "false") << ",\n"
         << "      \"overlay_backbone_bytes\": " << ovl.overlayBytes
         << ",\n      \"full_backbone_bytes\": " << ovl.fullBytes
         << ",\n      \"ratio\": " << sim::Table::num(ovl.ratio, 4)
         << ",\n      \"warm_peer_hits\": " << ovl.peerHits
         << "\n    },\n"
         << "    \"sharded_determinism\": {\n"
         << "      \"gate\": " << (sharded.ok ? "true" : "false")
         << ",\n      " << scaleRecordsJson(sharded.recs, "      ")
         << "\n    }\n  }\n}\n";
    json.close();
    std::cout << "\nwrote BENCH_migrate.json\n";

    if (!ok) {
        std::cout << "MIGRATE GATE FAILED:";
        if (!sweep_ok)
            std::cout << " [downtime_vs_dirty: " << sweep_detail
                      << "]";
        if (!ovl.ok)
            std::cout << " [overlay_reimage: " << ovl.detail << "]";
        if (!sharded.ok)
            std::cout << " [sharded_determinism: " << sharded.detail
                      << "]";
        std::cout << "\n";
    }
    return ok ? 0 : 1;
}
