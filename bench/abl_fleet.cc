/**
 * @file
 * Ablation: the fleet control plane under four elasticity scenarios.
 *
 * Every scenario builds a FleetWorld (control plane on rack 0,
 * cross-shard deployment orders, shared fat-tree topology, optional
 * congestion shaping) and runs once per shard count. Enforced by
 * exit code:
 *
 *  - determinism: per scenario, every shard count produces the
 *    identical result fingerprint (lease timelines, link counters,
 *    sink goodput, event totals);
 *  - flash_crowd: with the congestion controller shaping deployment
 *    fetches, serving goodput during the storm stays >= 90% of the
 *    unloaded baseline; the unshaped run is recorded alongside;
 *  - rolling_reimage: rack-by-rack drain-and-reimage waves place
 *    every replacement lease back on the drained rack;
 *  - spot_reclaim: lease churn against a small region drives every
 *    lease to a terminal state, with typed queue rejections and
 *    queued-lease cancellations actually exercised;
 *  - rack_outage: a scripted RackOutage takes rack 2 out of
 *    placement — the storm avoids it — and placement returns there
 *    after recovery.
 *
 * Emits BENCH_fleet.json with one uniform {nodes, shards, wall_ms,
 * events_per_sec, fingerprint} record per run plus per-scenario
 * results. `--smoke` shrinks the fleet and the shard list for the
 * bench-smoke ctest label (and the TSan CI job).
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/fleet_world.hh"
#include "bench/harness.hh"
#include "simcore/table.hh"

using namespace bench;

namespace {

struct RunOut
{
    ScaleRecord rec;
    bool ok = true;
    std::string detail; ///< first gate failure, for the table
    double ratio = 0.0; ///< flash crowd goodput ratio
    double baseMBps = 0.0;
    double contMBps = 0.0;
};

double
mbps(sim::Bytes bytes, sim::Tick dur)
{
    return double(bytes) * 8.0 / sim::toSeconds(dur) / 1e6;
}

void
fillRec(RunOut &r, const FleetWorld &w, double wall_ms)
{
    r.rec.nodes = w.prm.nodes;
    r.rec.shards = w.prm.shards;
    r.rec.wallMs = wall_ms;
    r.rec.events = w.totalEvents();
    if (wall_ms > 0.0)
        r.rec.eventsPerSec = double(r.rec.events) / (wall_ms / 1e3);
    r.rec.fingerprint = w.fingerprint();
}

void
fail(RunOut &r, const std::string &why)
{
    r.ok = false;
    if (r.detail.empty())
        r.detail = why;
}

/**
 * Scenario 1: flash crowd. Serving streams run from t=0; a storm of
 * leases lands at 2 s. Goodput (SLO-compliant sink bytes) is
 * measured over [1s,2s) unloaded and over a window inside the storm,
 * and the shaped run must keep >= 90% of the baseline rate.
 */
RunOut
flashCrowd(bool smoke, unsigned nodes, unsigned tenants,
           unsigned shards, bool shaped)
{
    FleetParams p;
    p.nodes = nodes;
    p.racks = 8;
    p.shards = shards;
    p.imageBytes = smoke ? 8 * sim::kMiB : 16 * sim::kMiB;
    p.shaped = shaped;
    FleetWorld w(p);

    const unsigned leases = smoke ? 20 : 64;
    const sim::Tick storm = 2 * sim::kSec;
    const sim::Tick cw1 = storm + 200 * sim::kMs;
    const sim::Tick cw2 =
        cw1 + (smoke ? 500 * sim::kMs : 1000 * sim::kMs);
    w.startServing(10 * sim::kMs, cw2 + 100 * sim::kMs);

    sim::EventQueue &q0 = w.group.rackQueue(0);
    for (unsigned i = 0; i < leases; ++i) {
        q0.scheduleAt(storm + i * sim::kMs, [&w, i, tenants]() {
            cloud::LeaseRequest rq;
            rq.image = "golden";
            rq.tenant = i % tenants;
            w.submitLease(std::move(rq));
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    w.runTo(1 * sim::kSec);
    sim::Bytes g1 = w.servingGoodBytes();
    w.runTo(storm);
    sim::Bytes g2 = w.servingGoodBytes();
    w.runTo(cw1);
    sim::Bytes c1 = w.servingGoodBytes();
    w.runTo(cw2);
    sim::Bytes c2 = w.servingGoodBytes();
    bool served = w.runUntil(40 * sim::kSec, [&]() {
        return w.plane().stats().served == leases;
    });
    auto t1 = std::chrono::steady_clock::now();

    RunOut r;
    r.baseMBps = mbps(g2 - g1, storm - 1 * sim::kSec);
    r.contMBps = mbps(c2 - c1, cw2 - cw1);
    r.ratio = r.baseMBps > 0.0 ? r.contMBps / r.baseMBps : 0.0;
    fillRec(r, w,
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    if (!served)
        fail(r, "storm leases never all reached serving");
    if (shaped && r.ratio < 0.90)
        fail(r, "shaped goodput ratio " +
                    sim::Table::num(r.ratio, 3) + " < 0.90");
    return r;
}

/**
 * Scenario 2: rolling fleet reimage. Lease the whole region, then
 * rack by rack: release every lease on the rack and resubmit — the
 * queued replacements must all land back on the drained rack (it is
 * the only one with free slots).
 */
RunOut
rolling(bool smoke, unsigned shards)
{
    struct Drive
    {
        unsigned serving = 0;
        unsigned misplaced = 0;
        bool done = false;
        std::function<void(unsigned)> wave;
    } d;

    FleetParams p;
    p.nodes = smoke ? 16 : 32;
    p.racks = 4;
    p.shards = shards;
    p.imageBytes = 8 * sim::kMiB;
    p.tenantShare = 0.0; // one logical tenant: no per-tenant cap
    p.servingInterval = 0;
    FleetWorld w(p);
    sim::EventQueue &q0 = w.group.rackQueue(0);

    d.wave = [&](unsigned k) {
        if (k == w.prm.racks) {
            d.done = true;
            return;
        }
        std::vector<cloud::Lease *> victims;
        for (const auto &lp : w.plane().leases())
            if (lp->state() == cloud::LeaseState::Serving &&
                lp->rack() == k)
                victims.push_back(lp.get());
        for (cloud::Lease *l : victims)
            w.releaseLease(*l);
        auto left = std::make_shared<unsigned>(
            static_cast<unsigned>(victims.size()));
        for (std::size_t i = 0; i < victims.size(); ++i) {
            cloud::LeaseRequest rq;
            rq.image = "golden";
            w.submitLease(std::move(rq),
                          [&, k, left](cloud::Lease &l) {
                              if (l.rack() != k)
                                  ++d.misplaced;
                              if (--*left == 0)
                                  d.wave(k + 1);
                          });
        }
    };

    for (unsigned i = 0; i < p.nodes; ++i) {
        q0.scheduleAt(sim::kMs + i * 5 * sim::kMs, [&]() {
            cloud::LeaseRequest rq;
            rq.image = "golden";
            w.submitLease(std::move(rq), [&](cloud::Lease &) {
                if (++d.serving == w.prm.nodes)
                    d.wave(0);
            });
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    bool done =
        w.runUntil(120 * sim::kSec, [&]() { return d.done; });
    auto t1 = std::chrono::steady_clock::now();

    RunOut r;
    fillRec(r, w,
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    if (!done)
        fail(r, "reimage waves never completed");
    if (d.misplaced > 0)
        fail(r, std::to_string(d.misplaced) +
                    " replacement leases landed off-rack");
    if (w.plane().stats().released != p.nodes)
        fail(r, "unexpected release count");
    return r;
}

/**
 * Scenario 3: spot-reclaim churn. A small region, a deterministic
 * submission/hold schedule far above capacity, mixed QoS, fail-fast
 * every 5th request, a 12-deep admission queue and a non-zero scrub
 * time: every lease must end terminal, with typed rejections and
 * queued-lease cancellations observed.
 */
RunOut
spotReclaim(bool smoke, unsigned shards)
{
    FleetParams p;
    p.nodes = 16;
    p.racks = 4;
    p.shards = shards;
    p.imageBytes = 8 * sim::kMiB;
    p.servingInterval = 0;
    p.queueCapacity = 12;
    p.perTenantQueueCap = 6;
    p.scrubTime = 50 * sim::kMs;
    FleetWorld w(p);
    sim::EventQueue &q0 = w.group.rackQueue(0);

    const unsigned subs = smoke ? 40 : 60;
    for (unsigned i = 0; i < subs; ++i) {
        sim::Tick at = sim::kMs + i * 40 * sim::kMs;
        sim::Tick hold =
            300 * sim::kMs + ((i * 7919) % 23) * 100 * sim::kMs;
        q0.scheduleAt(at, [&w, &q0, i, hold]() {
            cloud::LeaseRequest rq;
            rq.image = "golden";
            rq.tenant = i % 3;
            rq.qos = i % 3 == 0   ? cloud::QosClass::Critical
                     : i % 3 == 1 ? cloud::QosClass::Standard
                                  : cloud::QosClass::Scavenger;
            rq.failFast = i % 5 == 0;
            cloud::Lease *l = w.submitLease(std::move(rq));
            if (!l->terminal()) {
                q0.scheduleAt(q0.now() + hold, [&w, l]() {
                    if (!l->terminal() &&
                        l->state() != cloud::LeaseState::Releasing)
                        w.releaseLease(*l);
                });
            }
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    bool quiesced = w.runUntil(60 * sim::kSec, [&]() {
        const auto &leases = w.plane().leases();
        if (leases.size() < subs)
            return false;
        for (const auto &l : leases)
            if (!l->terminal())
                return false;
        return true;
    });
    auto t1 = std::chrono::steady_clock::now();

    RunOut r;
    fillRec(r, w,
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    const auto &st = w.plane().stats();
    std::uint64_t rejections = 0;
    for (std::uint64_t n : st.rejected)
        rejections += n;
    if (!quiesced)
        fail(r, "churn never quiesced to all-terminal");
    if (rejections == 0)
        fail(r, "no typed rejections under overload");
    if (st.canceled == 0)
        fail(r, "no queued lease was ever canceled");
    if (st.served == 0)
        fail(r, "nothing ever served");
    return r;
}

/**
 * Scenario 4: rack outage. A scripted RackOutage (key = rack 2,
 * first probe) takes the rack out of placement for 3 s. The 500 ms
 * wave must avoid rack 2 entirely; the 5 s wave (after recovery)
 * must use it again.
 */
RunOut
rackOutage(bool smoke, unsigned shards)
{
    // Declared before the world: the plane's health probe polls it
    // during runs, so it must outlive them (it does — the world dies
    // first, scenario scoping).
    sim::FaultInjector fi(1);
    sim::SitePlan plan;
    plan.fireOn = {1};
    plan.keyLo = 2;
    plan.keyHi = 2;
    plan.magnitude = 3 * sim::kSec;
    fi.arm(sim::FaultSite::RackOutage, plan);

    FleetParams p;
    p.nodes = smoke ? 16 : 32;
    p.racks = 4;
    p.shards = shards;
    p.imageBytes = 8 * sim::kMiB;
    p.servingInterval = 0;
    FleetWorld w(p);
    w.plane().armRackHealthProbe(&fi, 100 * sim::kMs);
    sim::EventQueue &q0 = w.group.rackQueue(0);

    const unsigned wave1 = smoke ? 6 : 9;
    const unsigned wave2 = smoke ? 4 : 6;
    for (unsigned i = 0; i < wave1; ++i) {
        q0.scheduleAt(500 * sim::kMs + i * 10 * sim::kMs, [&w]() {
            cloud::LeaseRequest rq;
            rq.image = "golden";
            w.submitLease(std::move(rq));
        });
    }
    for (unsigned i = 0; i < wave2; ++i) {
        q0.scheduleAt(5 * sim::kSec + i * 10 * sim::kMs, [&w]() {
            cloud::LeaseRequest rq;
            rq.image = "golden";
            w.submitLease(std::move(rq));
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    bool served = w.runUntil(30 * sim::kSec, [&]() {
        return w.plane().stats().served == wave1 + wave2;
    });
    auto t1 = std::chrono::steady_clock::now();

    RunOut r;
    fillRec(r, w,
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count());
    unsigned outage_hits = 0, recovered_hits = 0;
    const auto &leases = w.plane().leases();
    for (std::size_t i = 0; i < leases.size(); ++i) {
        if (leases[i]->state() != cloud::LeaseState::Serving)
            continue;
        if (i < wave1 && leases[i]->rack() == 2)
            ++outage_hits;
        if (i >= wave1 && leases[i]->rack() == 2)
            ++recovered_hits;
    }
    if (!served)
        fail(r, "waves never all reached serving");
    if (outage_hits > 0)
        fail(r, std::to_string(outage_hits) +
                    " leases placed on the downed rack");
    if (recovered_hits == 0)
        fail(r, "placement never returned to the recovered rack");
    if (fi.triggers(sim::FaultSite::RackOutage) != 1 ||
        fi.triggers(sim::FaultSite::RackRecover) != 1)
        fail(r, "outage/recover sites did not fire exactly once");
    return r;
}

struct Scenario
{
    std::string name;
    std::vector<RunOut> runs;
    bool deterministic = true;
    bool ok = true;
    std::string detail;
    std::string extraJson; ///< scenario-specific JSON fields
};

void
finishScenario(Scenario &s)
{
    for (const auto &r : s.runs) {
        s.deterministic =
            s.deterministic &&
            r.rec.fingerprint == s.runs[0].rec.fingerprint;
        if (!r.ok && s.detail.empty())
            s.detail = r.detail;
        s.ok = s.ok && r.ok;
    }
    if (!s.deterministic) {
        s.ok = false;
        if (s.detail.empty())
            s.detail = "fingerprints differ across shard counts";
    }
}

void
printScenario(const Scenario &s)
{
    sim::Table t({"Shards", "Wall (ms)", "Events", "Events/s",
                  "Fingerprint", "OK"});
    for (const auto &r : s.runs) {
        std::ostringstream fp;
        fp << "0x" << std::hex << r.rec.fingerprint;
        t.addRow({std::to_string(r.rec.shards),
                  sim::Table::num(r.rec.wallMs, 1),
                  std::to_string(r.rec.events),
                  sim::Table::num(r.rec.eventsPerSec / 1e6, 2) + "M",
                  fp.str(), r.ok ? "yes" : "NO"});
    }
    std::cout << "\n--- " << s.name << " ---\n";
    t.print(std::cout);
    if (!s.ok)
        std::cout << "FAILED: " << s.detail << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());

    const unsigned nodes =
        envUnsigned("BMCAST_NODES", smoke ? 32 : 96);
    const unsigned tenants = envUnsigned("BMCAST_TENANTS", 4);
    sim::fatalIf(nodes % 8 != 0,
                 "BMCAST_NODES must be a multiple of 8 racks");

    std::vector<unsigned> shard_counts;
    if (smoke)
        shard_counts = {1, std::max(2u, std::min(8u, hw))};
    else
        shard_counts = envUnsignedList("BMCAST_SHARDS", {1, 2, 4, 8});
    // The 4-rack scenarios clamp to 4 shards anyway; drop duplicates
    // so the sweep stays one run per distinct effective shard count.
    std::vector<unsigned> small_counts;
    for (unsigned s : shard_counts) {
        unsigned c = std::min(s, 4u);
        if (std::find(small_counts.begin(), small_counts.end(), c) ==
            small_counts.end())
            small_counts.push_back(c);
    }

    figureHeader(
        "Ablation: fleet control plane (" + std::to_string(nodes) +
        " nodes, admission queue + topology + congestion" +
        (smoke ? ", smoke" : "") + ")");
    std::cout << "host hardware threads: " << hw << "\n";

    // --- flash crowd: shaped sweep + one unshaped reference ---
    Scenario flash;
    flash.name = "flash_crowd (shaped)";
    for (unsigned s : shard_counts)
        flash.runs.push_back(
            flashCrowd(smoke, nodes, tenants, s, true));
    finishScenario(flash);
    RunOut unshaped =
        flashCrowd(smoke, nodes, tenants, shard_counts[0], false);
    printScenario(flash);
    std::cout << "serving goodput: baseline "
              << sim::Table::num(flash.runs[0].baseMBps, 1)
              << " Mb/s, shaped storm "
              << sim::Table::num(flash.runs[0].contMBps, 1)
              << " Mb/s (ratio "
              << sim::Table::num(flash.runs[0].ratio, 3)
              << ", gate >= 0.90), unshaped storm "
              << sim::Table::num(unshaped.contMBps, 1)
              << " Mb/s (ratio "
              << sim::Table::num(unshaped.ratio, 3)
              << ", recorded)\n";
    {
        std::ostringstream ex;
        ex << "\"baseline_mbps\": "
           << sim::Table::num(flash.runs[0].baseMBps, 3)
           << ", \"shaped_storm_mbps\": "
           << sim::Table::num(flash.runs[0].contMBps, 3)
           << ", \"shaped_goodput_ratio\": "
           << sim::Table::num(flash.runs[0].ratio, 4)
           << ", \"unshaped_storm_mbps\": "
           << sim::Table::num(unshaped.contMBps, 3)
           << ", \"unshaped_goodput_ratio\": "
           << sim::Table::num(unshaped.ratio, 4);
        flash.extraJson = ex.str();
    }

    Scenario roll;
    roll.name = "rolling_reimage";
    for (unsigned s : small_counts)
        roll.runs.push_back(rolling(smoke, s));
    finishScenario(roll);
    printScenario(roll);

    Scenario spot;
    spot.name = "spot_reclaim";
    for (unsigned s : small_counts)
        spot.runs.push_back(spotReclaim(smoke, s));
    finishScenario(spot);
    printScenario(spot);

    Scenario outage;
    outage.name = "rack_outage";
    for (unsigned s : small_counts)
        outage.runs.push_back(rackOutage(smoke, s));
    finishScenario(outage);
    printScenario(outage);

    const std::vector<const Scenario *> all{&flash, &roll, &spot,
                                           &outage};
    bool ok = true;
    for (const Scenario *s : all)
        ok = ok && s->ok;

    std::ofstream json("BENCH_fleet.json");
    json << "{\n  \"bench\": \"abl_fleet\",\n"
         << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
         << "  \"hardware_threads\": " << hw << ",\n"
         << "  \"tenants\": " << tenants << ",\n"
         << "  \"scenarios\": {\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
        const Scenario &s = *all[i];
        std::string key = s.name.substr(0, s.name.find(' '));
        std::vector<ScaleRecord> recs;
        for (const auto &r : s.runs)
            recs.push_back(r.rec);
        json << "    \"" << key << "\": {\n"
             << "      \"deterministic_across_shards\": "
             << (s.deterministic ? "true" : "false") << ",\n"
             << "      \"gate\": " << (s.ok ? "true" : "false")
             << ",\n";
        if (!s.extraJson.empty())
            json << "      " << s.extraJson << ",\n";
        json << "      " << scaleRecordsJson(recs, "      ")
             << "\n    }" << (i + 1 < all.size() ? "," : "")
             << "\n";
    }
    json << "  }\n}\n";
    json.close();
    std::cout << "\nwrote BENCH_fleet.json\n";

    if (!ok) {
        std::cout << "FLEET GATE FAILED:";
        for (const Scenario *s : all)
            if (!s->ok)
                std::cout << " [" << s->name << ": " << s->detail
                          << "]";
        std::cout << "\n";
    }
    return ok ? 0 : 1;
}
