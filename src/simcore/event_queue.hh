/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders closures by (tick, sequence). All simulated
 * components in one Machine (and across Machines in one experiment)
 * share one queue so that cross-machine interactions (network packets)
 * are globally ordered.
 */

#ifndef SIMCORE_EVENT_QUEUE_HH
#define SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "simcore/types.hh"

namespace sim {

/**
 * Handle for a scheduled event, usable to cancel it. Default-constructed
 * handles are inert.
 */
class EventId
{
  public:
    EventId() = default;

    /** True if this handle ever referred to a scheduled event. */
    bool valid() const { return seq != 0; }

  private:
    friend class EventQueue;

    EventId(Tick w, std::uint64_t s) : when(w), seq(s) {}

    Tick when = 0;
    std::uint64_t seq = 0;
};

/**
 * A priority queue of timestamped callbacks; the heart of the simulator.
 *
 * Events scheduled for the same tick run in scheduling order (stable).
 * Callbacks may schedule or cancel further events freely.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule a callback @p delay ticks in the future.
     * @return a handle usable with cancel().
     */
    EventId schedule(Tick delay, Callback cb);

    /** Schedule a callback at an absolute tick (>= now). */
    EventId scheduleAt(Tick when, Callback cb);

    /**
     * Cancel a previously scheduled event.
     * @retval true the event was pending and has been removed.
     * @retval false the event already ran, was cancelled, or is inert.
     */
    bool cancel(const EventId &id);

    /** True if no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /**
     * Run events until the queue is empty or @p limit is reached.
     * Time stops at the last executed event (or at @p limit if given
     * and reached).
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = ~Tick(0));

    /**
     * Run all events with tick <= @p when, then set time to @p when.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick when);

    /** Execute exactly one event if any is pending. */
    bool step();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    using Key = std::pair<Tick, std::uint64_t>;

    Tick curTick = 0;
    std::uint64_t nextSeq = 1;
    std::uint64_t numExecuted = 0;
    std::map<Key, Callback> events;
};

} // namespace sim

#endif // SIMCORE_EVENT_QUEUE_HH
