/**
 * @file
 * The AoE storage server ("vblade" with the paper's thread-pool
 * extension, §4.2).
 *
 * The original vblade is single-threaded and bottlenecks when the VMM
 * issues a large volume of read requests; the paper adds a thread
 * pool. Both configurations are modelled: `workers = 1` reproduces
 * the original, larger values the extension. Workers share the
 * server's backing store bandwidth.
 */

#ifndef AOE_SERVER_HH
#define AOE_SERVER_HH

#include <deque>
#include <map>
#include <vector>

#include "aoe/protocol.hh"
#include "hw/disk_store.hh"
#include "net/network.hh"
#include "simcore/random.hh"
#include "simcore/sim_object.hh"

namespace aoe {

/** Server service-model parameters. */
struct ServerParams
{
    /** Worker threads (1 = original vblade). */
    unsigned workers = 4;
    /** CPU per request: parse, lookup, syscall setup. */
    sim::Tick cpuPerRequest = 30 * sim::kUs;
    /** CPU per response/ack frame prepared. */
    sim::Tick cpuPerFragment = 6 * sim::kUs;
    /** Backing-store streaming rates (shared by all workers). */
    double diskReadMBps = 400.0;
    double diskWriteMBps = 300.0;
    /** Per-operation backing-store latency. */
    sim::Tick diskLatency = 200 * sim::kUs;
    /** Seek + rotation when an access does not continue the
     *  previous one (the image lives on a mechanical drive). */
    sim::Tick diskSeek = 12 * sim::kMs;
    /**
     * Probability that a read is served from the server's page
     * cache. Zero for the raw block-device vblade of the prototype;
     * file-level servers (the NFS baselines) benefit from host
     * caching.
     */
    double cacheHitRate = 0.0;
    /**
     * Fraction of the media-write time the client still waits for
     * before the ack (file servers ack from the page cache but
     * commit pressure leaks into the client-visible latency).
     */
    double writeAckMediaFraction = 0.3;
};

/** One exported target (a disk image). */
struct AoeTarget
{
    std::uint16_t major = 0;
    std::uint8_t minor = 0;
    sim::Lba capacity = 0;
    hw::DiskStore store;
};

/** The server, attached directly to a switch port. */
class AoeServer : public sim::SimObject
{
  public:
    AoeServer(sim::EventQueue &eq, std::string name, net::Port &port,
              ServerParams params = ServerParams{});

    /**
     * Export a target whose every sector initially holds content
     * derived from @p imageBase (the "golden image").
     */
    AoeTarget &addTarget(std::uint16_t major, std::uint8_t minor,
                         sim::Lba capacity, std::uint64_t imageBase);

    AoeTarget *findTarget(std::uint16_t major, std::uint8_t minor);

    /** @name Telemetry */
    /// @{
    std::uint64_t requestsServed() const { return numServed; }
    sim::Bytes dataBytesOut() const { return bytesOut; }
    std::size_t maxQueueDepth() const { return maxQueue; }
    /** Aggregate worker busy time (utilization across the pool). */
    sim::Tick workerBusyTime() const { return busyTime; }
    const ServerParams &params() const { return params_; }
    /// @}

  private:
    struct Job
    {
        Message request;
        net::MacAddr client;
    };

    /** Write-reassembly key. */
    using RxKey = std::pair<net::MacAddr, std::uint32_t>;

    struct WriteAssembly
    {
        std::vector<std::uint64_t> tokens;
        std::vector<bool> got;
        std::uint32_t numGot = 0;
        sim::Lba lba = 0;
    };

    void onFrame(const net::Frame &frame);
    void enqueue(Job job);
    void dispatch();
    void serve(unsigned worker, Job job);
    sim::Tick diskOccupy(sim::Lba lba, std::uint32_t sectors,
                         bool isWrite, sim::Tick earliest,
                         bool *cacheHit = nullptr);

    net::Port &port;
    ServerParams params_;
    sim::Rng rng;
    std::map<std::pair<std::uint16_t, std::uint8_t>, AoeTarget> targets;

    std::deque<Job> queue;
    std::vector<sim::Tick> workerFreeAt;
    sim::Tick diskFreeAt = 0;
    sim::Lba diskHead = 0;
    std::map<RxKey, WriteAssembly> assemblies;

    std::uint64_t numServed = 0;
    sim::Bytes bytesOut = 0;
    std::size_t maxQueue = 0;
    sim::Tick busyTime = 0;
};

} // namespace aoe

#endif // AOE_SERVER_HH
