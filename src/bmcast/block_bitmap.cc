#include "bmcast/block_bitmap.hh"

#include <map>
#include <mutex>

#include "simcore/logging.hh"

namespace bmcast {

namespace {

/**
 * Registry modelling serialized bitmap bytes at rest: the token
 * written to the reserved region maps to the interval list. (Sector
 * content in this simulation is a 64-bit token; see the file comment
 * in block_bitmap.hh.) Process-global and hit by every shard of a
 * sharded run, hence the lock; tokens are content hashes, so the
 * registry's contents are interleaving-independent.
 */
std::mutex savedStatesMu;

std::map<std::uint64_t,
         std::vector<sim::IntervalSet::Range>> &
savedStates()
{
    static std::map<std::uint64_t,
                    std::vector<sim::IntervalSet::Range>> reg;
    return reg;
}

std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
}

} // namespace

void
BlockBitmap::markFilled(sim::Lba lba, std::uint64_t count)
{
    sim::panicIfNot(lba + count <= total,
                    "bitmap mark beyond device: ", lba, "+", count);
    filled.insert(lba, lba + count);
}

bool
BlockBitmap::isFilled(sim::Lba lba, std::uint64_t count) const
{
    return filled.covers(lba, lba + count);
}

bool
BlockBitmap::anyEmpty(sim::Lba lba, std::uint64_t count) const
{
    return !isFilled(lba, count);
}

std::vector<sim::IntervalSet::Range>
BlockBitmap::emptyRanges(sim::Lba lba, std::uint64_t count) const
{
    return filled.gaps(lba, lba + count);
}

std::optional<sim::IntervalSet::Range>
BlockBitmap::firstEmptyRange(sim::Lba lba, std::uint64_t count) const
{
    std::optional<sim::IntervalSet::Range> first;
    filled.forEachGap(lba, lba + count,
                      [&first](sim::Lba s, sim::Lba e) {
                          first.emplace(s, e);
                          return false; // only the first range
                      });
    return first;
}

bool
BlockBitmap::claimForVmmWrite(sim::Lba lba, std::uint64_t count) const
{
    // The VMM only writes blocks with no fresher content anywhere in
    // them; a single FILLED sector vetoes the whole block.
    return !filled.intersects(lba, lba + count);
}

std::optional<sim::Lba>
BlockBitmap::firstEmpty(sim::Lba from) const
{
    return filled.firstGap(from, total);
}

std::uint64_t
BlockBitmap::serializeToken() const
{
    std::uint64_t h = 0xB1C457A0F00DULL;
    h = mix(h, total);
    for (const auto &[s, e] : filled.intervals()) {
        h = mix(h, s);
        h = mix(h, e);
    }
    if (h == 0)
        h = 1; // never collide with "unwritten"
    std::lock_guard<std::mutex> g(savedStatesMu);
    savedStates()[h] = filled.intervals();
    return h;
}

bool
BlockBitmap::restoreFromToken(std::uint64_t token)
{
    std::vector<sim::IntervalSet::Range> saved;
    {
        std::lock_guard<std::mutex> g(savedStatesMu);
        auto it = savedStates().find(token);
        if (it == savedStates().end())
            return false;
        saved = it->second;
    }
    filled.clear();
    for (const auto &[s, e] : saved)
        filled.insert(s, e);
    return true;
}

} // namespace bmcast
