/**
 * @file
 * fio-style storage throughput (paper §5.5.2, Fig. 10) and
 * ioping-style latency (Fig. 11) drivers. These run genuinely
 * through a guest block driver, so mediator multiplexing delays,
 * background-copy interference and virtio overheads all show up in
 * the measurements rather than being asserted.
 */

#ifndef WORKLOADS_FIO_HH
#define WORKLOADS_FIO_HH

#include <functional>

#include "guest/block_driver.hh"
#include "simcore/random.hh"
#include "simcore/sim_object.hh"
#include "simcore/stats.hh"

namespace workloads {

/** fio sequential-throughput parameters (paper: 200 MB, 1 MB
 *  blocks, direct I/O, libaio). */
struct FioParams
{
    sim::Bytes totalBytes = 200 * sim::kMiB;
    sim::Bytes blockBytes = 1 * sim::kMiB;
    /** Asynchronous queue depth (fio's libaio default iodepth=1). */
    unsigned queueDepth = 1;
    sim::Lba startLba = 4 * 2048; //!< test-file location
    bool isWrite = false;
    /**
     * Lay the file out (guest writes) before a read test. Off by
     * default: fio reads existing image data, which during the
     * BMcast deployment phase means copy-on-read redirections —
     * exactly the Fig. 10 "Deploy" condition.
     */
    bool layoutFirst = false;
};

/** fio result. */
struct FioResult
{
    double mbPerSec = 0.0;
    sim::Tick elapsed = 0;
};

/** The fio job. */
class Fio : public sim::SimObject
{
  public:
    Fio(sim::EventQueue &eq, std::string name,
        guest::BlockDriver &blk, FioParams params = FioParams{});

    void run(std::function<void(FioResult)> done);

  private:
    void layout(sim::Lba lba);
    void startMeasured();
    void issue();
    void completed();

    guest::BlockDriver &blk;
    FioParams params;
    sim::Tick startedAt = 0;
    sim::Bytes issued = 0;
    sim::Bytes finished = 0;
    unsigned inflight = 0;
    std::function<void(FioResult)> doneCb;
};

/** ioping parameters (paper: 4 KiB reads, 100 samples, within a
 *  1 MiB span). */
struct IopingParams
{
    unsigned samples = 100;
    sim::Bytes blockBytes = 4 * sim::kKiB;
    sim::Bytes spanBytes = 1 * sim::kMiB;
    sim::Lba startLba = 1024 * 2048;
    /** Pause between probes (ioping default: 1 s). */
    sim::Tick interval = 1 * sim::kSec;
    bool layoutFirst = false;
    std::uint64_t seed = 17;
};

/** ioping result. */
struct IopingResult
{
    double meanMs = 0.0;
    double p99Ms = 0.0;
    sim::Distribution samples;
};

/** The ioping probe. */
class Ioping : public sim::SimObject
{
  public:
    Ioping(sim::EventQueue &eq, std::string name,
           guest::BlockDriver &blk, IopingParams params = IopingParams{});

    void run(std::function<void(IopingResult)> done);

  private:
    void probe(unsigned remaining);

    guest::BlockDriver &blk;
    IopingParams params;
    sim::Rng rng;
    sim::Distribution dist;
    std::function<void(IopingResult)> doneCb;
};

} // namespace workloads

#endif // WORKLOADS_FIO_HH
