/**
 * @file
 * Sparse physical memory for a simulated machine.
 *
 * Backing pages (4 KiB) are materialized on first write, so a 96-GB
 * machine costs only what is actually touched (DMA buffers, descriptor
 * rings, command tables). Reads of untouched memory return zeros.
 */

#ifndef HW_PHYS_MEM_HH
#define HW_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "simcore/types.hh"

namespace hw {

/** Byte-addressable sparse physical memory. */
class PhysMem
{
  public:
    explicit PhysMem(sim::Bytes size) : size_(size) {}

    /** Total installed memory. */
    sim::Bytes size() const { return size_; }

    /** Read @p len bytes at @p addr into @p out. */
    void read(sim::Addr addr, void *out, sim::Bytes len) const;

    /** Write @p len bytes from @p in at @p addr. */
    void write(sim::Addr addr, const void *in, sim::Bytes len);

    /** Fill a range with a byte value. */
    void fill(sim::Addr addr, std::uint8_t value, sim::Bytes len);

    /** Typed helpers (little-endian, as x86). */
    std::uint8_t read8(sim::Addr a) const { return readT<std::uint8_t>(a); }
    std::uint16_t read16(sim::Addr a) const { return readT<std::uint16_t>(a); }
    std::uint32_t read32(sim::Addr a) const { return readT<std::uint32_t>(a); }
    std::uint64_t read64(sim::Addr a) const { return readT<std::uint64_t>(a); }

    void write8(sim::Addr a, std::uint8_t v) { writeT(a, v); }
    void write16(sim::Addr a, std::uint16_t v) { writeT(a, v); }
    void write32(sim::Addr a, std::uint32_t v) { writeT(a, v); }
    void write64(sim::Addr a, std::uint64_t v) { writeT(a, v); }

    /** Number of pages currently materialized (for tests/telemetry). */
    std::size_t pagesAllocated() const { return pages.size(); }

  private:
    static constexpr sim::Bytes kPageSize = 4096;

    using Page = std::array<std::uint8_t, kPageSize>;

    template <typename T>
    T
    readT(sim::Addr a) const
    {
        T v;
        read(a, &v, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(sim::Addr a, T v)
    {
        write(a, &v, sizeof(T));
    }

    const Page *findPage(sim::Addr pageAddr) const;
    Page &touchPage(sim::Addr pageAddr);

    sim::Bytes size_;
    std::unordered_map<sim::Addr, Page> pages;
};

} // namespace hw

#endif // HW_PHYS_MEM_HH
