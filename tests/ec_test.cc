/**
 * @file
 * Unit tests of the store/ec coding plans: shard slicing, flat-RS
 * read/repair shapes, the LRC local-group repair discount, the
 * Hitchhiker half-shard repair, the dead-member-never-fetched
 * property across every code, elastic transformation structure, and
 * per-digest placement re-homing.
 */

#include <gtest/gtest.h>

#include <set>

#include "store/ec/code.hh"
#include "store/ec/transform.hh"
#include "store/placement.hh"

namespace {

using store::ec::Code;
using store::ec::CodeKind;
using store::ec::CodeParams;
using store::ec::Plan;
using store::ec::PlanStep;
using store::ec::StepOp;

constexpr std::uint32_t kChunk = 2048; // sectors, divisible by k=4
constexpr sim::Tick kGf = 2 * sim::kMs;

std::vector<net::MacAddr>
stripeOf(unsigned width)
{
    std::vector<net::MacAddr> s;
    for (unsigned i = 0; i < width; ++i)
        s.push_back(0xA0 + i);
    return s;
}

store::ec::LiveFn
allLive()
{
    return [](net::MacAddr) { return true; };
}

store::ec::LiveFn
deadSet(std::set<net::MacAddr> dead)
{
    return [dead = std::move(dead)](net::MacAddr m) {
        return dead.count(m) == 0;
    };
}

std::shared_ptr<const Code>
make(CodeKind kind)
{
    return store::ec::makeCode(kind, CodeParams{4, 2, 2, kGf});
}

std::uint32_t
fetchFrom(const Plan &p, net::MacAddr mac)
{
    std::uint32_t n = 0;
    for (const PlanStep &s : p.steps)
        if (s.op == StepOp::Fetch && s.source == mac)
            n += s.sectors;
    return n;
}

TEST(EcCode, ShardSectorsTileTheChunk)
{
    auto code = make(CodeKind::FlatRs);
    std::uint32_t total = 0;
    for (unsigned i = 0; i < code->dataShards(); ++i)
        total += code->shardSectors(1003, i);
    EXPECT_EQ(total, 1003u);
    // The remainder lands one sector at a time on the first shards.
    EXPECT_EQ(code->shardSectors(1003, 0), 251u);
    EXPECT_EQ(code->shardSectors(1003, 3), 250u);
}

TEST(EcFlatRs, HealthyReadSlicesAcrossDataMembers)
{
    auto code = make(CodeKind::FlatRs);
    auto stripe = stripeOf(code->width());
    auto plan = code->readPlan(stripe, allLive(), 100);
    ASSERT_TRUE(plan.has_value());
    EXPECT_FALSE(plan->degraded());
    EXPECT_EQ(plan->fetches(), 4u);
    EXPECT_EQ(plan->fetchSectors(), 100u);
    EXPECT_EQ(plan->combineCost(), 0u);
    // Data members in index order, 25 sectors each.
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(plan->steps[i].member, i);
        EXPECT_EQ(plan->steps[i].sectors, 25u);
    }
}

TEST(EcFlatRs, DegradedReadBackfillsParityAndPaysTheDecode)
{
    auto code = make(CodeKind::FlatRs);
    auto stripe = stripeOf(code->width());
    auto plan = code->readPlan(stripe, deadSet({stripe[1]}), 100);
    ASSERT_TRUE(plan.has_value());
    EXPECT_TRUE(plan->degraded());
    EXPECT_EQ(plan->parityUsed, 1u);
    EXPECT_EQ(plan->combineCost(), kGf);
    EXPECT_EQ(fetchFrom(*plan, stripe[1]), 0u);
    EXPECT_GT(fetchFrom(*plan, stripe[4]), 0u) << "first parity fills";

    // Below k live members there is no plan at all.
    EXPECT_FALSE(code->readPlan(stripe,
                                deadSet({stripe[0], stripe[1],
                                         stripe[4], stripe[5]}),
                                100)
                     .has_value());
}

TEST(EcFlatRs, RepairMovesKFullShards)
{
    auto code = make(CodeKind::FlatRs);
    auto stripe = stripeOf(code->width());
    auto plan =
        code->repairPlan(stripe, 1, deadSet({stripe[1]}), kChunk);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->fetches(), 4u);
    EXPECT_EQ(plan->fetchSectors(), kChunk)
        << "flat RS pays a full chunk to rebuild one member";
    EXPECT_EQ(plan->combineCost(), kGf);
}

TEST(EcLrc, DataRepairTouchesOneLocalGroup)
{
    auto code = make(CodeKind::Lrc);
    ASSERT_EQ(code->width(), 8u); // 4 data + 2 locals + 2 globals
    auto stripe = stripeOf(code->width());
    auto plan =
        code->repairPlan(stripe, 0, deadSet({stripe[0]}), kChunk);
    ASSERT_TRUE(plan.has_value());
    // Group 0 = data {0,1} + local parity 4: one sibling + the local
    // parity, XOR-combined — half of flat RS's bill.
    EXPECT_EQ(plan->fetches(), 2u);
    EXPECT_EQ(plan->fetchSectors(), kChunk / 2);
    EXPECT_GT(fetchFrom(*plan, stripe[1]), 0u);
    EXPECT_GT(fetchFrom(*plan, stripe[4]), 0u);
    EXPECT_EQ(plan->combineCost(), kGf / 4) << "XOR, not GF";
}

TEST(EcLrc, GroupDoubleFailureFallsBackToGlobalDecode)
{
    auto code = make(CodeKind::Lrc);
    auto stripe = stripeOf(code->width());
    // Lost member 0 and its local parity: the cheap path is gone.
    auto plan = code->repairPlan(
        stripe, 0, deadSet({stripe[0], stripe[4]}), kChunk);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->fetches(), 4u);
    EXPECT_EQ(plan->fetchSectors(), kChunk);
    EXPECT_EQ(plan->combineCost(), kGf);
}

TEST(EcLrc, ParityRepairsReencodeFromTheRightMembers)
{
    auto code = make(CodeKind::Lrc);
    auto stripe = stripeOf(code->width());
    // A local parity re-encodes from its own group's data only.
    auto local =
        code->repairPlan(stripe, 4, deadSet({stripe[4]}), kChunk);
    ASSERT_TRUE(local.has_value());
    EXPECT_EQ(local->fetches(), 2u);
    EXPECT_GT(fetchFrom(*local, stripe[0]), 0u);
    EXPECT_GT(fetchFrom(*local, stripe[1]), 0u);
    EXPECT_EQ(local->combineCost(), kGf / 4);
    // A global parity pays the full k-shard re-encode.
    auto global =
        code->repairPlan(stripe, 6, deadSet({stripe[6]}), kChunk);
    ASSERT_TRUE(global.has_value());
    EXPECT_EQ(global->fetches(), 4u);
    EXPECT_EQ(global->fetchSectors(), kChunk);
}

TEST(EcHitchhiker, SingleFailureRepairMovesHalfShards)
{
    auto code = make(CodeKind::Hitchhiker);
    auto stripe = stripeOf(code->width());
    auto plan =
        code->repairPlan(stripe, 1, deadSet({stripe[1]}), kChunk);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->fetches(), 4u);
    EXPECT_EQ(plan->fetchSectors(), kChunk / 2)
        << "piggybacked sub-shards halve the repair bill";
    EXPECT_EQ(plan->combineCost(), kGf / 2)
        << "two-stage combine: XOR then a small GF solve";
}

TEST(EcHitchhiker, MultiFailureFallsBackToFullRs)
{
    auto code = make(CodeKind::Hitchhiker);
    auto stripe = stripeOf(code->width());
    auto plan = code->repairPlan(
        stripe, 1, deadSet({stripe[1], stripe[3]}), kChunk);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->fetchSectors(), kChunk)
        << "the sub-shard trick only covers single failures";
    EXPECT_EQ(plan->combineCost(), kGf);
}

TEST(EcCode, NoPlanEverFetchesADeadMember)
{
    for (CodeKind kind : {CodeKind::FlatRs, CodeKind::Lrc,
                          CodeKind::Hitchhiker}) {
        auto code = make(kind);
        auto stripe = stripeOf(code->width());
        for (unsigned dead = 0; dead < code->width(); ++dead) {
            auto live = deadSet({stripe[dead]});
            auto read = code->readPlan(stripe, live, kChunk);
            ASSERT_TRUE(read.has_value()) << code->name();
            EXPECT_EQ(fetchFrom(*read, stripe[dead]), 0u)
                << code->name() << " read fetched dead member "
                << dead;
            for (unsigned lost = 0; lost < code->width(); ++lost) {
                auto rep =
                    code->repairPlan(stripe, lost, live, kChunk);
                if (!rep.has_value())
                    continue;
                EXPECT_EQ(fetchFrom(*rep, stripe[dead]), 0u)
                    << code->name() << " repair of " << lost
                    << " fetched dead member " << dead;
            }
        }
    }
}

TEST(EcTransform, FlatToLrcReusesGlobalsAndBuildsLocals)
{
    auto flat = make(CodeKind::FlatRs);
    auto lrc = make(CodeKind::Lrc);
    auto plan = store::ec::transformPlan(*flat, *lrc, stripeOf(8),
                                         allLive(), kChunk);
    ASSERT_TRUE(plan.has_value());
    // Both globals carry over for free; only the two new local
    // parities move bytes — each from its own group.
    ASSERT_EQ(plan->reused.size(), 2u);
    EXPECT_EQ(plan->reused[0].fromMember, 4u);
    EXPECT_EQ(plan->reused[0].toMember, 6u);
    ASSERT_EQ(plan->builds.size(), 2u);
    EXPECT_EQ(plan->builds[0].member, 4u);
    EXPECT_EQ(plan->builds[1].member, 5u);
    EXPECT_TRUE(plan->retired.empty());
    EXPECT_EQ(plan->fetchBytes(),
              sim::Bytes(kChunk) * sim::kSectorSize)
        << "two half-chunk group reads";
    EXPECT_EQ(plan->naiveBytes,
              4 * sim::Bytes(kChunk) * sim::kSectorSize)
        << "naive re-encode reads k shards per target parity";
}

TEST(EcTransform, LrcToFlatRetiresTheLocalParities)
{
    auto flat = make(CodeKind::FlatRs);
    auto lrc = make(CodeKind::Lrc);
    auto plan = store::ec::transformPlan(*lrc, *flat, stripeOf(6),
                                         allLive(), kChunk);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->reused.size(), 2u);
    EXPECT_TRUE(plan->builds.empty()) << "no new parity to build";
    ASSERT_EQ(plan->retired.size(), 2u);
    EXPECT_EQ(plan->retired[0], 4u) << "the old local parities";
    EXPECT_EQ(plan->fetchBytes(), 0u);
}

TEST(EcPlacement, RehomeRedirectsStripesAndPlans)
{
    auto servers = stripeOf(8);
    store::Placement p(store::ec::makeCode(CodeKind::FlatRs,
                                           CodeParams{4, 2, 2, kGf}),
                       servers);
    const store::Digest d = 17;
    auto before = p.stripeFor(d);
    const net::MacAddr spare = 0xFF01;
    p.rehome(d, 0, spare);
    auto after = p.stripeFor(d);
    EXPECT_EQ(after[0], spare);
    EXPECT_EQ(after[1], before[1]) << "other slots untouched";
    EXPECT_EQ(p.rehomedChunks(), 1u);
    EXPECT_EQ(p.memberIndexOf(d, spare), std::optional<unsigned>(0));

    // Plans follow the override: a healthy read of the re-homed
    // stripe fetches from the spare, never the old member.
    auto plan = p.readPlanFor(d, allLive(), kChunk);
    ASSERT_TRUE(plan.has_value());
    EXPECT_GT(fetchFrom(*plan, spare), 0u);
    EXPECT_EQ(fetchFrom(*plan, before[0]), 0u);

    // Other digests keep their original stripes.
    EXPECT_NE(p.stripeFor(d + 1)[0], spare);
}

} // namespace
