/**
 * @file
 * A sharded malleable-metal world: per-rack instances live-migrating
 * to the neighbor rack over a fat-tree aggregation fabric, driven by
 * deterministic dirty-write processes.
 *
 * The world exists to prove the mobility machinery deterministic
 * under the PR-6 sharded kernel: R racks each run one source
 * instance (a token disk plus a MigrationManager on the rack's own
 * EventQueue) that migrates to rack (r+1) % R. Pre-copy shipments
 * book the shared net::Topology in the split-charge style of
 * bench/fleet_world.hh — the up-link on the source shard at
 * departure, the down-link on the destination shard at arrival, the
 * completion acknowledged back through the mailbox — so every
 * cross-rack byte pays the same links a deployment would, and the
 * whole schedule is a pure function of (racks, seed), never of the
 * shard count.
 *
 * fingerprint() folds every migration's stats, every disk's content
 * runs, the write-process counters and the topology byte meters into
 * one order-sensitive hash: equal fingerprints across shard counts
 * mean equal simulated outcomes, which bench/abl_migrate gates on
 * its exit code and tests/migration_test.cc asserts directly.
 */

#ifndef BENCH_MIGRATE_WORLD_HH
#define BENCH_MIGRATE_WORLD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk_store.hh"
#include "migrate/migration.hh"
#include "net/topology.hh"
#include "simcore/fault_injector.hh"
#include "simcore/logging.hh"
#include "simcore/random.hh"
#include "simcore/shard_group.hh"
#include "simcore/types.hh"

namespace migratebench {

struct MigrateWorldParams
{
    unsigned racks = 4;
    unsigned shards = 1;
    std::uint64_t seed = 1;

    sim::Bytes imageBytes = 32 * sim::kMiB;
    /** Aggregation fabric (shared; split-charged per rack). */
    double uplinkBps = 10e9;
    double oversubscription = 4.0;
    /** Cross-rack latency == the shard group's lookahead window. */
    sim::Tick uplinkLatency = sim::kMs;

    /** Dirty-write process: one burst every interval per rack. */
    sim::Tick writeInterval = 2 * sim::kMs;
    std::uint32_t writeBurstMax = 64; //!< sectors per burst, 1..max

    /** Every rack's migration starts here. */
    sim::Tick migrateAt = 50 * sim::kMs;
    sim::Tick runFor = 30 * sim::kSec;

    migrate::MigrateParams migrate;

    /** Armed on every rack's injector when probability/fireOn set. */
    sim::SitePlan streamDrop;
    sim::SitePlan destCrash;
};

class MigrateWorld
{
  public:
    explicit MigrateWorld(MigrateWorldParams p)
        : prm(p),
          group(sim::ShardGroup::Params{p.racks, p.shards,
                                        p.uplinkLatency, 4096})
    {
        sim::fatalIf(prm.racks == 0, "migrate world needs racks");
        sectors_ = prm.imageBytes / sim::kSectorSize;

        net::TopologyConfig tc;
        tc.racks = prm.racks;
        tc.uplinkBps = prm.uplinkBps;
        tc.oversubscription = prm.oversubscription;
        topo_ = std::make_unique<net::Topology>(tc);

        racks_.reserve(prm.racks);
        for (unsigned r = 0; r < prm.racks; ++r) {
            auto rack = std::make_unique<Rack>();
            sim::EventQueue &eq = group.rackQueue(r);

            rack->faults =
                std::make_unique<sim::FaultInjector>(prm.seed, r);
            if (armed(prm.streamDrop))
                rack->faults->arm(sim::FaultSite::MigrateStreamDrop,
                                  prm.streamDrop);
            if (armed(prm.destCrash))
                rack->faults->arm(sim::FaultSite::MigrateDestCrash,
                                  prm.destCrash);

            // The source instance's disk starts as a freshly landed
            // image; the write process dirties it from tick 0.
            rack->disk.write(0, sectors_, imageBase(r));
            rack->mgr = std::make_unique<migrate::MigrationManager>(
                eq, "rack" + std::to_string(r) + ".mig", prm.migrate,
                sectors_);
            rack->mgr->setFaultInjector(rack->faults.get());
            rack->wrRng = sim::Rng(
                sim::Rng::seedForShard("migw", prm.seed, r));

            racks_.push_back(std::move(rack));
        }

        for (unsigned r = 0; r < prm.racks; ++r) {
            armWriter(r);
            group.rackQueue(r).scheduleAt(
                prm.migrateAt, [this, r]() { startMigration(r); });
        }
    }

    /** Drive to runFor (window-aligned), chunked. */
    void
    run()
    {
        const sim::Tick w = group.window();
        sim::Tick until = ((prm.runFor + w - 1) / w) * w;
        group.run(until);
    }

    unsigned
    migrationsDone() const
    {
        unsigned n = 0;
        for (const auto &rk : racks_)
            n += rk->mgr->phase() ==
                 migrate::MigrationManager::Phase::Done;
        return n;
    }
    unsigned
    migrationsAborted() const
    {
        unsigned n = 0;
        for (const auto &rk : racks_)
            n += rk->mgr->stats().aborted;
        return n;
    }
    std::uint64_t
    faultTriggers(sim::FaultSite site) const
    {
        std::uint64_t n = 0;
        for (const auto &rk : racks_)
            n += rk->faults->triggers(site);
        return n;
    }
    const migrate::MigrateStats &
    stats(unsigned rack) const
    {
        return racks_.at(rack)->mgr->stats();
    }
    /** The migrated replica rack @p r received from its neighbor. */
    const hw::DiskStore &
    destDisk(unsigned r) const
    {
        return racks_.at(r)->destDisk;
    }
    const hw::DiskStore &
    sourceDisk(unsigned r) const
    {
        return racks_.at(r)->disk;
    }
    sim::Lba sectors() const { return sectors_; }
    std::uint64_t
    totalExecuted() const
    {
        return group.totalExecuted();
    }

    /** Order-sensitive digest of every simulated outcome. */
    std::uint64_t
    fingerprint() const
    {
        std::uint64_t h = sim::kFingerprintSeed;
        for (unsigned r = 0; r < prm.racks; ++r) {
            const Rack &rk = *racks_[r];
            const migrate::MigrateStats &st = rk.mgr->stats();
            h = sim::fingerprintMix(h, st.rounds);
            h = sim::fingerprintMix(h, st.bytesShipped);
            h = sim::fingerprintMix(h, st.diskBytesShipped);
            h = sim::fingerprintMix(h, st.memoryBytesShipped);
            h = sim::fingerprintMix(h, st.finalBytes);
            h = sim::fingerprintMix(h, st.forcedStop);
            h = sim::fingerprintMix(h, st.aborted);
            h = sim::fingerprintMix(h, st.abortAtRound);
            h = sim::fingerprintMix(h, st.startedAt);
            h = sim::fingerprintMix(h, st.pausedAt);
            h = sim::fingerprintMix(h, st.finishedAt);
            h = sim::fingerprintMix(h, st.downtime);
            h = sim::fingerprintMix(h, rk.writes);
            h = sim::fingerprintMix(h, rk.sectorsWritten);
            h = foldDisk(h, rk.disk);
            h = foldDisk(h, rk.destDisk);
            h = sim::fingerprintMix(h, topo_->uplinkBytes(r));
            h = sim::fingerprintMix(h, topo_->downlinkBytes(r));
            h = sim::fingerprintMix(
                h, rk.faults->triggers(
                       sim::FaultSite::MigrateStreamDrop));
            h = sim::fingerprintMix(
                h, rk.faults->triggers(
                       sim::FaultSite::MigrateDestCrash));
        }
        return h;
    }

    const MigrateWorldParams prm;
    sim::ShardGroup group;

  private:
    struct Rack
    {
        hw::DiskStore disk;     //!< the source instance's local disk
        hw::DiskStore destDisk; //!< replica arriving from rack r-1
        std::unique_ptr<migrate::MigrationManager> mgr;
        std::unique_ptr<sim::FaultInjector> faults;
        sim::Rng wrRng{0};
        std::uint64_t writes = 0;
        std::uint64_t sectorsWritten = 0;
        std::uint64_t nextBase = 1;
    };

    static bool
    armed(const sim::SitePlan &p)
    {
        return p.probability > 0.0 || !p.fireOn.empty();
    }

    static std::uint64_t
    imageBase(unsigned rack)
    {
        return 0xABCD000000000100ULL + rack;
    }

    std::uint64_t
    foldDisk(std::uint64_t h, const hw::DiskStore &d) const
    {
        d.forEachBase(0, sectors_,
                      [&h](sim::Lba lba, std::uint64_t count,
                           std::uint64_t base) {
                          h = sim::fingerprintMix(h, lba);
                          h = sim::fingerprintMix(h, count);
                          h = sim::fingerprintMix(h, base);
                      });
        return h;
    }

    /** The dirty-write process: one burst per interval, paused with
     *  the guest during stop-and-copy, retired once the instance has
     *  moved (an aborted migration keeps writing — the guest never
     *  stopped). */
    void
    armWriter(unsigned r)
    {
        group.rackQueue(r).schedule(prm.writeInterval, [this, r]() {
            Rack &rk = *racks_[r];
            using Phase = migrate::MigrationManager::Phase;
            if (rk.mgr->phase() == Phase::Done)
                return; // instance left this rack
            if (!rk.mgr->paused()) {
                sim::Lba lba = rk.wrRng.uniformInt(0, sectors_ - 1);
                std::uint64_t count =
                    rk.wrRng.uniformInt(1, prm.writeBurstMax);
                if (lba + count > sectors_)
                    count = sectors_ - lba;
                std::uint64_t base =
                    0xD000000000000000ULL |
                    (std::uint64_t(r) << 40) | rk.nextBase++;
                rk.disk.write(lba, count, base);
                rk.mgr->noteGuestWrite(
                    lba, static_cast<std::uint32_t>(count));
                ++rk.writes;
                rk.sectorsWritten += count;
            }
            armWriter(r);
        });
    }

    void
    startMigration(unsigned r)
    {
        Rack &rk = *racks_[r];
        const unsigned dst = (r + 1) % prm.racks;

        migrate::MigrationManager::Hooks hooks;
        // Re-virtualization is a fixed-cost stage here: the world
        // has no VMM, the tracker is live from tick 0 (equivalent to
        // seeding with the pre-migration dirty set).
        hooks.revirt = [this, r](std::function<void()> done) {
            group.rackQueue(r).schedule(sim::kMs, std::move(done));
        };

        hooks.ship = [this, r, dst](sim::Bytes bytes,
                                    std::function<void()> done) {
            sim::EventQueue &q = group.rackQueue(r);
            sim::Tick up = topo_->chargeUplink(r, bytes, q.now());
            sim::Tick arrive = up + topo_->config().aggHopLatency +
                               prm.uplinkLatency;
            if (prm.racks == 1) {
                // Single-rack world: no fabric to cross.
                q.scheduleAt(arrive, std::move(done));
                return;
            }
            group.postToRack(
                r, dst, arrive,
                [this, r, dst, bytes,
                 done = std::move(done)]() mutable {
                    sim::EventQueue &dq = group.rackQueue(dst);
                    sim::Tick clear = topo_->chargeDownlink(
                        dst, bytes, dq.now());
                    if (clear < dq.now())
                        clear = dq.now();
                    // Acknowledge back to the source shard.
                    group.postToRack(dst, r,
                                     clear + prm.uplinkLatency,
                                     std::move(done));
                });
        };

        hooks.handoff = [this, r, dst](std::function<void()> done) {
            // Apply the byte-identical replica on the destination
            // rack: snapshot by value, apply on its shard.
            std::vector<migrate::DirtyRun> runs;
            racks_[r]->disk.forEachBase(
                0, sectors_,
                [&runs](sim::Lba lba, std::uint64_t count,
                        std::uint64_t base) {
                    if (base != 0)
                        runs.push_back({lba, count, base});
                });
            if (prm.racks == 1) {
                for (const auto &dr : runs)
                    racks_[r]->destDisk.write(dr.lba, dr.count,
                                              dr.base);
            } else {
                sim::EventQueue &q = group.rackQueue(r);
                group.postToRack(
                    r, dst, q.now() + prm.uplinkLatency,
                    [this, dst, runs = std::move(runs)]() {
                        for (const auto &dr : runs)
                            racks_[dst]->destDisk.write(
                                dr.lba, dr.count, dr.base);
                    });
            }
            done();
        };

        rk.mgr->start(std::move(hooks));
    }

    sim::Lba sectors_ = 0;
    std::unique_ptr<net::Topology> topo_;
    std::vector<std::unique_ptr<Rack>> racks_;
};

} // namespace migratebench

#endif // BENCH_MIGRATE_WORLD_HH
