/**
 * @file
 * GuestPort over the e1000 register file.
 *
 * Two window flavours:
 *  - The *real* window: the physical NIC's own MMIO range. Register
 *    accesses the port does not virtualize fall through to the
 *    device, exactly as the original single-guest mediator behaved.
 *  - A *virtual* window: a register range with no device behind it,
 *    used to give additional guests their own NIC. The port registers
 *    a stub device (link-up STATUS, zeroes elsewhere) and virtualizes
 *    everything.
 *
 * Trap mode intercepts every access. Exitless mode still intercepts —
 * ring setup is a handful of boot-time exits — but the steady-state
 * doorbells (TDT/RDT/ICR) travel through a shared-memory page the
 * core folds in via syncDoorbell(); a guest driver that has attached
 * the page never exits on the data path.
 */

#ifndef NETMED_E1000_GUEST_PORT_HH
#define NETMED_E1000_GUEST_PORT_HH

#include <string>

#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/phys_mem.hh"
#include "netmed/guest_port.hh"
#include "netmed/types.hh"

namespace netmed {

/** e1000-flavoured guest attachment. */
class E1000GuestPort : public GuestPort, public hw::IoInterceptor
{
  public:
    /**
     * @param windowBase  the register window to virtualize.
     * @param virtualWindow  true when no device backs the window.
     * @param doorbell  exitless doorbell page (0 = trapped doorbells).
     * @param intc  when set, interrupt causes are delivered as virtual
     *              IRQs on @p irqVector; when null the physical NIC's
     *              interrupt is assumed to reach the guest (the
     *              single-guest trap configuration).
     */
    E1000GuestPort(std::string name, hw::IoBus &bus, hw::PhysMem &mem,
                   sim::Addr windowBase, bool virtualWindow,
                   MedMode mode, sim::Addr doorbell,
                   hw::InterruptController *intc, unsigned irqVector);

    /** @name GuestPort */
    /// @{
    void attach(GuestPortHooks hooks) override;
    void detach() override;
    bool syncDoorbell() override;
    sim::Bytes peekTxWire() override;
    bool takeTx(net::Frame &frame) override;
    bool deliverRx(const net::Frame &frame) override;
    void postTxCause() override;
    void postRxCause() override;
    GuestRingState rings() const override;
    sim::Addr doorbellPage() const override { return dbPage; }
    /// @}

    /** @name hw::IoInterceptor (guest register accesses) */
    /// @{
    bool interceptRead(sim::Addr addr, unsigned size,
                       std::uint64_t &value) override;
    bool interceptWrite(sim::Addr addr, std::uint64_t value,
                        unsigned size) override;
    /// @}

    sim::Addr windowBase() const { return base; }

  private:
    void postCause(std::uint32_t cause);

    std::string name_;
    hw::IoBus &bus;
    hw::PhysMem &mem;
    sim::Addr base;
    bool virtualWindow;
    MedMode mode;
    sim::Addr dbPage;
    hw::InterruptController *intc;
    unsigned irqVector;

    bool deviceAdded = false;
    bool attached = false;
    GuestPortHooks hooks_;

    GuestRingState g;
};

} // namespace netmed

#endif // NETMED_E1000_GUEST_PORT_HH
