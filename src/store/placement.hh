/**
 * @file
 * Erasure-coded chunk placement across the seed-server pool.
 *
 * Each chunk digest maps to a stripe of k data + m parity members
 * drawn round-robin from the server pool.  Any k live members of the
 * stripe can reconstruct the chunk; fetch plans substitute live
 * parity members for dead data members (Reed–Solomon-style), at a
 * decode cost the streamer models as a fixed penalty.
 *
 * Modeling note: the simulation carries sector *tokens*, not real
 * bytes, so every stripe member exports the full chunk content and
 * the erasure code is modeled at the placement/availability level —
 * a plan exists iff >= k stripe members are live, and using parity
 * members marks the plan as a reconstruction.  Wire traffic still
 * splits the chunk across the k chosen members (1/k each), so
 * throughput scales the way a real k+m striping would.
 */

#ifndef STORE_PLACEMENT_HH
#define STORE_PLACEMENT_HH

#include <functional>
#include <optional>
#include <vector>

#include "net/frame.hh"
#include "store/chunk.hh"

namespace store {

class Placement
{
  public:
    Placement(unsigned dataShards, unsigned parityShards,
              std::vector<net::MacAddr> servers);

    /** A concrete fetch plan: k sources, possibly using parity. */
    struct Plan
    {
        std::vector<net::MacAddr> sources;
        unsigned parityUsed = 0;
    };

    /** Stripe members for @p d (data members first). */
    std::vector<net::MacAddr> stripeFor(Digest d) const;

    /**
     * Pick k live stripe members for @p d, preferring data members
     * and back-filling from live parity.  Returns nullopt when fewer
     * than k members are live (chunk unreconstructable right now).
     */
    std::optional<Plan>
    planFor(Digest d,
            const std::function<bool(net::MacAddr)> &live) const;

    unsigned dataShards() const { return k_; }
    unsigned parityShards() const { return m_; }
    unsigned stripeWidth() const { return width_; }

  private:
    unsigned k_;
    unsigned m_;
    unsigned width_;
    std::vector<net::MacAddr> servers_;
};

} // namespace store

#endif // STORE_PLACEMENT_HH
