/**
 * @file
 * Ablation (paper §4.2): "the original vblade cannot fully utilize
 * the network bandwidth because it is single-threaded and becomes a
 * performance bottleneck when the VMM sends a significant volume of
 * read requests. Therefore, we implemented a thread pool."
 *
 * vblade is a user-space daemon: each jumbo frame costs a packet
 * syscall plus copies (~180 us on the testbed-era CPU), so one
 * thread tops out below gigabit line rate; the pool spreads the
 * per-frame work across cores.
 */

#include "aoe/initiator.hh"
#include "aoe/server.hh"
#include "bench/harness.hh"
#include "net/l2.hh"

using namespace bench;

namespace {

double
runWorkers(unsigned workers)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    net::Port &sport = lan.attach(1, {1e9, 9000, 0.0});
    aoe::ServerParams sp;
    sp.workers = workers;
    // User-space datapath costs of the original vblade on the
    // paper-era CPU: syscall + copy per jumbo frame.
    sp.cpuPerRequest = 200 * sim::kUs;
    sp.cpuPerFragment = 180 * sim::kUs;
    sp.cacheHitRate = 0.9; // image mostly warm; CPU is the story
    aoe::AoeServer server(eq, "server", sport, sp);
    server.addTarget(0, 0, 1 << 24, kImageBase);

    // Four clients keep deep pipelines of 1-MiB reads outstanding —
    // the "significant volume of read requests" regime.
    constexpr unsigned kClients = 4;
    constexpr unsigned kReadsPer = 48;
    std::vector<std::unique_ptr<net::PortEndpoint>> eps;
    std::vector<std::unique_ptr<aoe::AoeInitiator>> inits;
    unsigned done = 0;
    for (unsigned c = 0; c < kClients; ++c) {
        net::Port &p = lan.attach(10 + c, {1e9, 9000, 0.0});
        eps.push_back(std::make_unique<net::PortEndpoint>(p));
        aoe::InitiatorParams ip;
        ip.minTimeout = 4 * sim::kSec; // a loaded server is not loss
        inits.push_back(std::make_unique<aoe::AoeInitiator>(
            eq, "init" + std::to_string(c), *eps.back(), 1, ip));
    }
    for (unsigned c = 0; c < kClients; ++c) {
        for (unsigned i = 0; i < kReadsPer; ++i) {
            sim::Lba lba =
                ((sim::Lba(c) * 7919 + i * 131) % 8000) * 2048;
            inits[c]->readSectors(lba, 2048,
                                  [&done](const auto &) { ++done; });
        }
    }
    while (done < kClients * kReadsPer && !eq.empty())
        eq.step();
    double total_mb = double(kClients * kReadsPer) * 1.048576;
    return total_mb / sim::toSeconds(eq.now());
}

} // namespace

int
main()
{
    figureHeader("Ablation (paper §4.2): vblade single thread vs "
                 "thread pool — aggregate serve rate");
    sim::Table t({"Server workers", "Aggregate MB/s", "vs 1 worker"});
    double base = 0;
    for (unsigned w : {1u, 2u, 4u, 8u}) {
        double mbps = runWorkers(w);
        if (w == 1)
            base = mbps;
        t.addRow({std::to_string(w), sim::Table::num(mbps, 1),
                  sim::Table::num(mbps / base, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nOne worker is CPU-bound below line rate; the "
                 "pool restores wire-limited serving (~118 MB/s on "
                 "GbE\nwith jumbo frames), matching the paper's "
                 "§4.2 fix.\n";
    return 0;
}
