#include "simcore/event_queue.hh"

#include <algorithm>
#include <chrono>

#include "obs/obs.hh"
#include "simcore/logging.hh"

namespace sim {

EventQueue::~EventQueue() = default;

EventId
EventQueue::schedule(Tick delay, Callback cb)
{
    return scheduleAt(curTick + delay, std::move(cb));
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    return post(when, 0, std::move(cb));
}

EventId
EventQueue::schedulePeriodic(Tick interval, Callback cb)
{
    panicIfNot(interval > 0, "periodic event with zero interval");
    return post(curTick + interval, interval, std::move(cb));
}

EventId
EventQueue::post(Tick when, Tick period, Callback cb)
{
    panicIfNot(static_cast<bool>(cb), "scheduling an empty callback");
    std::uint32_t idx = beginPost(when, period);
    slotRef(idx).cb = std::move(cb);
    return finishPost(when, idx);
}

std::uint32_t
EventQueue::beginPost(Tick when, Tick period)
{
    if (when < curTick)
        panic("scheduling into the past: ", when, " < ", curTick);
    std::uint32_t idx = allocSlot();
    Slot &s = slotRef(idx);
    s.state = SlotState::Pending;
    s.period = period;
    return idx;
}

std::uint32_t
EventQueue::beginPeriodicPost(Tick interval)
{
    panicIfNot(interval > 0, "periodic event with zero interval");
    return beginPost(curTick + interval, interval);
}

EventId
EventQueue::finishPost(Tick when, std::uint32_t idx)
{
    Slot &s = slotRef(idx);
    if (s.cb.spilled())
        ++counters_.spilledCallbacks;
    postEntry(when, idx);
    ++counters_.scheduled;
    ++livePending;
    counters_.peakPending =
        std::max<std::uint64_t>(counters_.peakPending, livePending);
    return EventId(idx, s.gen);
}

bool
EventQueue::cancel(const EventId &id)
{
    if (!id.valid() || id.slot >= slotCount)
        return false;
    Slot &s = slotRef(id.slot);
    // The generation stamp makes cancel-after-run and double-cancel
    // return false even after the slot was recycled for a new event.
    if (s.gen != id.gen || s.state != SlotState::Pending)
        return false;
    s.state = SlotState::Cancelled;
    --livePending;
    ++counters_.cancelled;
    if (s.executing) {
        // A periodic cancelling itself from inside its own callback:
        // the closure is running right now, so dispatch() finishes
        // the teardown after the invocation returns. No heap entry
        // exists for it at this moment (it was popped to fire).
        return true;
    }
    // Drop the closure now (it may own resources); the entry stays
    // behind as a tombstone and is reclaimed when its tick is
    // drained (wheel: within kWheelSize ticks) or compacted away.
    s.cb.reset();
    if (!s.inWheel) {
        ++deadInHeap;
        // Amortized-O(1) pressure valve: once tombstones outnumber
        // live entries, one sweep reclaims them all. Without this,
        // cancelled far-future timers (the retransmission-timer
        // pattern) would pile up until their deadlines pass.
        if (deadInHeap > 64 && deadInHeap * 2 > heap.size())
            compactHeap();
    }
    return true;
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead != kNoSlot) {
        std::uint32_t idx = freeHead;
        Slot &s = slotRef(idx);
        freeHead = s.nextFree;
        s.nextFree = kNoSlot;
        return idx;
    }
    panicIfNot(slotCount < kNoSlot, "event slot pool exhausted");
    if (slotCount == chunks.size() * kChunkSize)
        chunks.push_back(std::make_unique<Slot[]>(kChunkSize));
    return slotCount++;
}

void
EventQueue::freeSlot(std::uint32_t idx)
{
    Slot &s = slotRef(idx);
    s.cb.reset();
    s.state = SlotState::Free;
    s.period = 0;
    if (++s.gen == 0) // skip 0: it marks inert handles
        s.gen = 1;
    s.nextFree = freeHead;
    freeHead = idx;
}

void
EventQueue::postEntry(Tick when, std::uint32_t slot)
{
    // when >= curTick was validated in beginPost, so the unsigned
    // difference is the true distance from now.
    if (when - curTick < kWheelSize) {
        wheelAppend(when, slot);
    } else {
        slotRef(slot).inWheel = false;
        push(when, slot);
    }
}

void
EventQueue::wheelAppend(Tick when, std::uint32_t slot)
{
    Slot &s = slotRef(slot);
    s.inWheel = true;
    s.nextEvent = kNoSlot;
    const std::size_t b = when & kWheelMask;
    if (bucketHead[b] == kNoSlot)
        bucketHead[b] = slot;
    else
        slotRef(bucketTail[b]).nextEvent = slot;
    bucketTail[b] = slot;
    wheelOcc[b >> 6] |= std::uint64_t(1) << (b & 63);
}

bool
EventQueue::wheelNextTick(Tick &out) const
{
    // Circular find-first-set from the cursor: every pending wheel
    // entry lies in [curTick, curTick + kWheelSize), so the first
    // occupied bucket in circular order is the earliest tick.
    const std::size_t cursor = curTick & kWheelMask;
    std::size_t word = cursor >> 6;
    std::uint64_t w =
        wheelOcc[word] & (~std::uint64_t(0) << (cursor & 63));
    for (std::size_t i = 0; i <= kWheelWords; ++i) {
        if (w) {
            const std::size_t b =
                (word << 6) + static_cast<std::size_t>(
                                  __builtin_ctzll(w));
            out = curTick + ((b - cursor) & kWheelMask);
            return true;
        }
        word = (word + 1) & (kWheelWords - 1);
        w = wheelOcc[word];
        if (i + 1 == kWheelWords) // wrapped back to the cursor word
            w &= ~(~std::uint64_t(0) << (cursor & 63));
    }
    return false;
}

std::uint32_t
EventQueue::wheelPopFront(Tick t)
{
    const std::size_t b = t & kWheelMask;
    const std::uint32_t idx = bucketHead[b];
    if (idx == kNoSlot)
        return kNoSlot;
    Slot &s = slotRef(idx);
    bucketHead[b] = s.nextEvent;
    if (bucketHead[b] == kNoSlot) {
        bucketTail[b] = kNoSlot;
        wheelOcc[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
    }
    s.nextEvent = kNoSlot;
    return idx;
}

void
EventQueue::reclaimWheelTombstone(std::uint32_t slot)
{
    panicIfNot(slotRef(slot).state == SlotState::Cancelled,
               "wheel tombstone points at a live slot");
    ++counters_.tombstonesPopped;
    freeSlot(slot);
}

void
EventQueue::push(Tick when, std::uint32_t slot)
{
    if (nextSeq == ~std::uint32_t(0))
        renumberSeqs();
    heap.push_back(HeapEntry{when, nextSeq++, slot});
    siftUp(heap.size() - 1);
}

void
EventQueue::renumberSeqs()
{
    // Dense re-assignment in (when, seq) order keeps the relative
    // FIFO order of every pending event; a sorted array is a valid
    // heap, so no re-heapify is needed. Runs at most once per 2^32
    // schedules — amortized free.
    std::sort(heap.begin(), heap.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return before(a, b);
              });
    std::uint32_t s = 0;
    for (HeapEntry &e : heap)
        e.seq = ++s;
    nextSeq = s + 1;
}

EventQueue::HeapEntry
EventQueue::popTop()
{
    HeapEntry top = heap.front();
    const std::size_t n = heap.size() - 1;
    if (n > 0) {
        const HeapEntry tail = heap[n];
        heap.pop_back();
        // Bottom-up pop: descend the min-child path to the bottom
        // without comparing against the displaced tail, then bubble
        // the tail up from the hole. The tail came from the deepest
        // layer, so the bubble-up almost always stops immediately —
        // this saves a comparison (and a mispredicting early-exit
        // branch) per level versus the classic sift-down.
        std::size_t hole = 0;
        for (;;) {
            std::size_t child = 4 * hole + 1;
            if (child >= n)
                break;
            const std::size_t end = std::min(child + 4, n);
            std::size_t best = child;
            // Ternary, not if: selects with cmov — see before().
            for (std::size_t c = child + 1; c < end; ++c)
                best = before(heap[c], heap[best]) ? c : best;
            heap[hole] = heap[best];
            hole = best;
        }
        while (hole > 0) {
            const std::size_t parent = (hole - 1) >> 2;
            if (!before(tail, heap[parent]))
                break;
            heap[hole] = heap[parent];
            hole = parent;
        }
        heap[hole] = tail;
    } else {
        heap.pop_back();
    }
    return top;
}

void
EventQueue::siftUp(std::size_t i)
{
    HeapEntry e = heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) >> 2;
        if (!before(e, heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = e;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap.size();
    HeapEntry e = heap[i];
    for (;;) {
        std::size_t child = 4 * i + 1;
        if (child >= n)
            break;
        const std::size_t end = std::min(child + 4, n);
        std::size_t best = child;
        for (std::size_t c = child + 1; c < end; ++c)
            best = before(heap[c], heap[best]) ? c : best;
        if (!before(heap[best], e))
            break;
        heap[i] = heap[best];
        i = best;
    }
    heap[i] = e;
}

void
EventQueue::reclaimTombstone(const HeapEntry &dead)
{
    // An entry can only go stale through cancel(): a slot is freed
    // exactly when its single heap entry is reclaimed, so the slot
    // still belongs to the cancelled event.
    panicIfNot(slotRef(dead.slot).state == SlotState::Cancelled,
               "tombstone points at a live slot");
    ++counters_.tombstonesPopped;
    if (deadInHeap > 0)
        --deadInHeap;
    freeSlot(dead.slot);
}

bool
EventQueue::settleTop()
{
    while (!heap.empty()) {
        if (slotRef(heap.front().slot).state == SlotState::Pending)
            return true;
        reclaimTombstone(popTop());
    }
    return false;
}

void
EventQueue::compactHeap()
{
    std::size_t kept = 0;
    for (const HeapEntry &e : heap) {
        if (slotRef(e.slot).state == SlotState::Pending) {
            heap[kept++] = e;
        } else {
            panicIfNot(slotRef(e.slot).state == SlotState::Cancelled,
                       "tombstone points at a live slot");
            ++counters_.tombstonesPopped;
            freeSlot(e.slot);
        }
    }
    heap.resize(kept);
    deadInHeap = 0;
    if (kept > 1) {
        for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;)
            siftDown(i);
    }
}

void
EventQueue::extractTick(Tick t, std::vector<HeapEntry> &out)
{
    std::size_t kept = 0;
    for (const HeapEntry &e : heap) {
        if (e.when != t) {
            heap[kept++] = e;
            continue;
        }
        if (slotRef(e.slot).state == SlotState::Pending)
            out.push_back(e);
        else
            reclaimTombstone(e);
    }
    heap.resize(kept);
    if (kept > 1) {
        for (std::size_t i = (kept - 2) / 4 + 1; i-- > 0;)
            siftDown(i);
    }
}

void
EventQueue::dispatch(const HeapEntry &e)
{
    // Slots never move (chunked pool), so the closure runs in place:
    // it may schedule events — growing the pool — without its own
    // storage shifting underneath it.
    Slot &s = slotRef(e.slot);
    ++counters_.executed;
    const bool traced = obs::armed();
    if (traced) {
        obs::Tracer &t = obs::tracer();
        if (obsEpoch_ != t.epoch()) {
            obsTrack_ = t.track("kernel");
            obsEpoch_ = t.epoch();
        }
        t.spanBegin(obsTrack_, "kernel",
                    s.period == 0 ? "event" : "periodic", e.when);
    }
    if (s.period == 0) {
        // One-shot: kill the handle *before* invoking, so cancel()
        // from within the callback (or any time later, even after
        // slot reuse) reports "already ran". The slot is not on the
        // free list yet, so nothing can recycle it mid-invocation.
        if (++s.gen == 0)
            s.gen = 1;
        s.state = SlotState::Free;
        --livePending;
        s.cb.consume();
        s.nextFree = freeHead;
        freeHead = e.slot;
    } else {
        s.executing = true;
        s.cb();
        s.executing = false;
        if (s.state == SlotState::Pending) {
            // Still armed: re-post for a drift-free cadence. Short
            // intervals (the poll-loop case) re-enter the wheel —
            // a periodic firing then costs two list splices and no
            // comparisons at all.
            postEntry(e.when + s.period, e.slot);
        } else {
            // The callback cancelled its own cycle.
            freeSlot(e.slot);
        }
    }
    // Re-check armed(): a callback may tear the tracer down (the
    // bench harness disarms from its destructor).
    if (traced && obs::armed())
        obs::tracer().spanEnd(obsTrack_, e.when);
}

bool
EventQueue::step()
{
    for (;;) {
        Tick tw = 0;
        const bool haveWheel = wheelNextTick(tw);
        if (settleTop() &&
            (!haveWheel || heap.front().when <= tw)) {
            HeapEntry e = popTop();
            panicIfNot(e.when >= curTick,
                       "event queue went backwards");
            curTick = e.when;
            dispatch(e);
            return true;
        }
        if (!haveWheel)
            return false;
        const std::uint32_t u = wheelPopFront(tw);
        if (slotRef(u).state != SlotState::Pending) {
            // Tombstone-only stretch of the bucket; keep scanning.
            reclaimWheelTombstone(u);
            continue;
        }
        curTick = tw;
        dispatch(HeapEntry{tw, 0, u});
        return true;
    }
}

std::uint64_t
EventQueue::run(Tick limit)
{
    const auto wallStart = std::chrono::steady_clock::now();
    std::uint64_t n = 0;

    // Take the scratch buffer (returned below) so the common case
    // reuses its capacity while reentrant run() calls stay safe.
    std::vector<HeapEntry> ready;
    std::swap(ready, batch);

    for (;;) {
        Tick tw = 0;
        const bool haveWheel = wheelNextTick(tw);
        const bool haveHeap = settleTop();
        Tick t;
        if (haveHeap && (!haveWheel || heap.front().when <= tw))
            t = heap.front().when;
        else if (haveWheel)
            t = tw;
        else
            break;
        if (t > limit)
            break;

        // Far band first: a heap entry for tick t predates every
        // wheel entry for t (posting it to the heap required
        // t - now >= kWheelSize, i.e. an earlier now), so the heap
        // cohort is FIFO-older than the bucket. A callback here can
        // only add tick-t events via the wheel (distance 0), which
        // the bucket drain below picks up.
        if (haveHeap && heap.front().when == t) {
            HeapEntry e = popTop();
            curTick = t;
            if (heap.empty() || heap.front().when != t) {
                // Singleton cohort — the common case.
                dispatch(e);
                ++n;
            } else {
                // Drain the same-tick cohort into contiguous
                // scratch. Small cohorts pop one by one (seq order
                // falls out of the heap); once a cohort proves
                // large, one linear sweep + O(n) rebuild is cheaper
                // than sifting the heap per entry.
                ready.clear();
                ready.push_back(e);
                while (!heap.empty() && heap.front().when == t &&
                       ready.size() < 4) {
                    HeapEntry f = popTop();
                    if (slotRef(f.slot).state !=
                        SlotState::Pending) {
                        reclaimTombstone(f);
                        continue;
                    }
                    ready.push_back(f);
                }
                if (!heap.empty() && heap.front().when == t) {
                    extractTick(t, ready);
                    std::sort(
                        ready.begin(), ready.end(),
                        [](const HeapEntry &a, const HeapEntry &b) {
                            return a.seq < b.seq;
                        });
                }
                for (const HeapEntry &f : ready) {
                    if (slotRef(f.slot).state !=
                        SlotState::Pending) {
                        // Cancelled by an earlier cohort callback.
                        reclaimTombstone(f);
                        continue;
                    }
                    dispatch(f);
                    ++n;
                }
            }
        }

        // Near band: tick t's bucket holds exactly tick t's wheel
        // events in append (= FIFO) order; callbacks scheduling for
        // the current tick append behind the cursor and run in this
        // same drain.
        std::uint32_t u;
        while ((u = wheelPopFront(t)) != kNoSlot) {
            if (slotRef(u).state != SlotState::Pending) {
                reclaimWheelTombstone(u);
                continue;
            }
            curTick = t;
            dispatch(HeapEntry{t, 0, u});
            ++n;
        }
    }

    std::swap(ready, batch);
    counters_.wallNs += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wallStart)
            .count());
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when)
{
    std::uint64_t n = run(when);
    if (when > curTick)
        curTick = when;
    return n;
}

} // namespace sim
