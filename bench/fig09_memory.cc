/**
 * @file
 * Figure 9: SysBench memory benchmark — throughput of repeated
 * allocate-and-fill until 1 MB is written, block sizes 1K..16K
 * (paper §5.5.1). KVM loses 35% at 16 KiB (nested paging + cache
 * pollution); BMcast ~6% while deploying, zero after.
 */

#include "baselines/kvm.hh"
#include "bench/harness.hh"
#include "workloads/sysbench.hh"

using namespace bench;

int
main()
{
    figureHeader("Figure 9: SysBench memory — throughput (MiB/s) vs "
                 "block size");

    const sim::Bytes sizes[] = {1 * sim::kKiB, 2 * sim::kKiB,
                                4 * sim::kKiB, 8 * sim::kKiB,
                                16 * sim::kKiB};

    Testbed bare;
    workloads::SysbenchMemory mem_bare(bare.machine());

    Testbed bm;
    bmcast::BmcastDeployer dep(bm.eq, "dep", bm.machine(), bm.guest(),
                               kServerMac, bm.imageSectors,
                               paperVmmParams(), false);
    bool up = false;
    dep.run([&]() { up = true; });
    bm.runUntil(1000 * sim::kSec, [&]() { return up; });
    workloads::SysbenchMemory mem_bm(bm.machine());

    Testbed kvm;
    baselines::KvmConfig cfg;
    baselines::KvmVmm vmm(kvm.eq, "kvm", kvm.machine(), cfg,
                          kServerMac);
    kvm.machine().setProfile(vmm.profile());
    workloads::SysbenchMemory mem_kvm(kvm.machine());

    sim::Table t({"Block", "Baremetal", "BMcast(Deploy)", "KVM",
                  "BMcast vs bare", "KVM vs bare"});
    for (sim::Bytes bs : sizes) {
        double b = mem_bare.throughputMiBps(bs);
        double d = mem_bm.throughputMiBps(bs);
        double k = mem_kvm.throughputMiBps(bs);
        t.addRow({std::to_string(bs / sim::kKiB) + "K",
                  sim::Table::num(b, 0), sim::Table::num(d, 0),
                  sim::Table::num(k, 0), sim::Table::pct(d, b),
                  sim::Table::pct(k, b)});
    }
    t.print(std::cout);
    std::cout << "\nPaper: KVM -35% at 16K blocks; BMcast -6% during "
                 "deployment, 0% after de-virtualization.\n";
    return 0;
}
