/**
 * @file
 * The guest OS's block-device driver interface. Implementations
 * program the simulated IDE/AHCI controllers at register level —
 * which is precisely what the BMcast device mediators interpret.
 */

#ifndef GUEST_BLOCK_DRIVER_HH
#define GUEST_BLOCK_DRIVER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "simcore/types.hh"

namespace guest {

/** Completion callback for reads: one content token per sector. */
using ReadDone =
    std::function<void(const std::vector<std::uint64_t> &tokens)>;
/** Completion callback for writes. */
using WriteDone = std::function<void()>;

/** Abstract block driver. */
class BlockDriver
{
  public:
    virtual ~BlockDriver() = default;

    /**
     * Program the controller (ring/list setup, enables). Called by
     * the guest OS during boot — i.e. after any VMM has installed
     * its mediators, exactly as on real hardware.
     */
    virtual void initialize() {}

    /** Read [lba, lba+count). Requests may queue internally. */
    virtual void read(sim::Lba lba, std::uint32_t count,
                      ReadDone done) = 0;

    /**
     * Write [lba, lba+count) with content derived from
     * @p contentBase (see hw/disk_store.hh).
     */
    virtual void write(sim::Lba lba, std::uint32_t count,
                       std::uint64_t contentBase, WriteDone done) = 0;

    /**
     * True when no request is queued or in flight. Re-virtualization
     * uses this to find a guest-quiescent instant before reinstalling
     * a mediator whose install path resyncs from controller state
     * (see bmcast::Vmm::revirtualize). Externally-modelled drivers
     * (the KVM-baseline virtio model) are never re-virtualized and
     * keep the permissive default.
     */
    virtual bool idle() const { return true; }

    /** Completed operations. */
    virtual std::uint64_t opsCompleted() const = 0;

    /** Sum of per-op service latencies (queue + device). */
    virtual sim::Tick totalLatency() const = 0;
};

} // namespace guest

#endif // GUEST_BLOCK_DRIVER_HH
