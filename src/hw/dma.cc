#include "hw/dma.hh"

#include "simcore/logging.hh"

namespace hw {

namespace {

/**
 * Walk a scatter list sector by sector, invoking fn(sectorIndex,
 * physAddrOfSectorStart).
 */
template <typename Fn>
void
forEachSector(const std::vector<SgEntry> &sg, std::uint32_t count,
              Fn &&fn)
{
    std::uint32_t sector = 0;
    for (const SgEntry &e : sg) {
        sim::panicIfNot(e.bytes % sim::kSectorSize == 0,
                        "SG element not sector-aligned: ", e.bytes);
        sim::Bytes off = 0;
        while (off < e.bytes && sector < count) {
            fn(sector, e.addr + off);
            off += sim::kSectorSize;
            ++sector;
        }
        if (sector >= count)
            break;
    }
    sim::panicIfNot(sector == count,
                    "SG list too short: covers ", sector, " of ", count,
                    " sectors");
}

} // namespace

sim::Bytes
sgTotal(const std::vector<SgEntry> &sg)
{
    sim::Bytes total = 0;
    for (const SgEntry &e : sg)
        total += e.bytes;
    return total;
}

void
dmaToMemory(PhysMem &mem, const std::vector<SgEntry> &sg,
            const DiskStore &store, sim::Lba lba, std::uint32_t count)
{
    forEachSector(sg, count, [&](std::uint32_t i, sim::Addr addr) {
        mem.write64(addr, store.tokenAt(lba + i));
    });
}

void
dmaFromMemory(PhysMem &mem, const std::vector<SgEntry> &sg,
              DiskStore &store, sim::Lba lba, std::uint32_t count)
{
    // Coalesce consecutive sectors sharing one content base so large
    // writes create single extents.
    std::uint64_t run_base = 0;
    sim::Lba run_start = 0;
    std::uint32_t run_len = 0;

    auto flush = [&]() {
        if (run_len > 0)
            store.write(run_start, run_len, run_base);
        run_len = 0;
    };

    forEachSector(sg, count, [&](std::uint32_t i, sim::Addr addr) {
        std::uint64_t token = mem.read64(addr);
        std::uint64_t base = baseFromToken(token, lba + i);
        if (run_len > 0 && base == run_base &&
            run_start + run_len == lba + i) {
            ++run_len;
        } else {
            flush();
            run_base = base;
            run_start = lba + i;
            run_len = 1;
        }
    });
    flush();
}

void
fillTokenBuffer(PhysMem &mem, sim::Addr addr, sim::Lba lba,
                std::uint32_t count, std::uint64_t base)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        mem.write64(addr + sim::Bytes(i) * sim::kSectorSize,
                    sectorToken(base, lba + i));
    }
}

std::uint64_t
bufferTokenAt(const PhysMem &mem, sim::Addr addr,
              std::uint32_t sector_index)
{
    return mem.read64(addr +
                      sim::Bytes(sector_index) * sim::kSectorSize);
}

} // namespace hw
