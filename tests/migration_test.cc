/**
 * @file
 * Malleable-metal tests: re-virtualization + pre-copy live migration
 * end to end on the Cloud facade, the bitmap-persistence completion
 * contract the stop-and-copy handoff leans on, and cross-shard
 * determinism of the sharded migration world.
 *
 * The mobility correctness bar is byte identity: the destination
 * disk at handoff must equal the source disk at the pause instant,
 * for arbitrary write workloads racing the pre-copy rounds. The
 * determinism bar is the usual one — shard count must never change
 * a simulated outcome — applied to migrations whose shipments cross
 * shard mailboxes.
 */

#include <gtest/gtest.h>

#include "bench/migrate_world.hh"
#include "bmcast/cloud.hh"
#include "bmcast/deployer.hh"
#include "hw/disk_store.hh"
#include "migrate/migration.hh"
#include "simcore/random.hh"
#include "tests/test_util.hh"

namespace {

constexpr std::uint64_t kImg = 0xAAAA000000000001ULL;

bmcast::CloudConfig
migrateConfig(unsigned machines)
{
    bmcast::CloudConfig cfg;
    cfg.machines = machines;
    cfg.machineTemplate.disk.capacityBytes = 2 * sim::kGiB;
    cfg.vmm.bootTime = 5 * sim::kSec;
    cfg.vmm.moderation.vmmWriteInterval = 2 * sim::kMs;
    cfg.vmm.moderation.guestIoFreqThreshold = 1e9;
    cfg.guestTemplate.boot.loaderBytes = 1 * sim::kMiB;
    cfg.guestTemplate.boot.kernelBytes = 4 * sim::kMiB;
    cfg.guestTemplate.boot.numReads = 40;
    cfg.guestTemplate.boot.cpuTotal = 500 * sim::kMs;
    cfg.guestTemplate.boot.regionBytes = 16 * sim::kMiB;
    // Fast pre-copy: a small working set at 1 Gbps wire speed.
    cfg.migrate.memoryBytes = 8 * sim::kMiB;
    cfg.migrate.memoryDirtyBytesPerSec = 1 * sim::kMiB;
    cfg.migrate.stopCopyThresholdBytes = 2 * sim::kMiB;
    cfg.migrate.maxRounds = 8;
    cfg.migrate.handoffTime = 50 * sim::kMs;
    return cfg;
}

/** Drive one instance to bare metal; returns it. */
bmcast::Instance *
deployOne(sim::EventQueue &eq, bmcast::Cloud &cloud,
          const std::string &image)
{
    bmcast::Instance *inst = cloud.provision(image, nullptr);
    EXPECT_NE(inst, nullptr);
    if (!inst)
        return nullptr;
    // Wait for the lease too: a fast copy reaches bare metal while
    // the guest is still booting, and migrate() needs Serving.
    EXPECT_TRUE(testutil::runUntil(eq, 40000 * sim::kSec, [&]() {
        return inst->state() == bmcast::Instance::State::BareMetal &&
               inst->lease().state() == cloud::LeaseState::Serving;
    }));
    return inst;
}

/** A self-rescheduling random write workload on @p inst's guest,
 *  gated on the migration pause exactly like a real guest: the
 *  simulated VM-pause stops the vCPUs, so no new commands issue.
 *
 *  Each write lands in its own 64-sector stripe (random offset,
 *  length and content within it), so writes never overlap and the
 *  expected disk image is order-independent: the golden image plus
 *  every issued write, mirrored into `shadow` at issue time. */
struct Writer
{
    Writer(sim::EventQueue &eq, bmcast::Instance &inst,
           std::uint64_t seed, sim::Lba sectors, std::uint64_t image)
        : eq(eq), inst(inst), rng(seed), sectors(sectors)
    {
        shadow.write(0, sectors, image);
        arm();
    }

    void
    arm()
    {
        eq.schedule(3 * sim::kMs, [this]() {
            migrate::MigrationManager *mig = inst.migration();
            if (mig && mig->finished())
                return; // instance moved (or rolled back for good)
            if ((!mig || !mig->paused()) &&
                (writeSeq + 1) * 64 <= sectors) {
                sim::Lba off = rng.uniformInt(0, 31);
                std::uint64_t burst = rng.uniformInt(1, 64 - off);
                sim::Lba lba = writeSeq * 64 + off;
                std::uint64_t base =
                    0xD000000000000000ULL | rng.next() >> 16;
                shadow.write(lba, burst, base);
                inst.guest().blk().write(
                    lba, static_cast<std::uint32_t>(burst), base,
                    [this]() { ++writesDone; });
                ++writeSeq;
                ++writesIssued;
            }
            arm();
        });
    }

    sim::EventQueue &eq;
    bmcast::Instance &inst;
    sim::Rng rng;
    sim::Lba sectors;
    hw::DiskStore shadow;
    std::uint64_t writeSeq = 0;
    std::uint64_t writesIssued = 0;
    std::uint64_t writesDone = 0;
};

// The tentpole property: for randomized write workloads racing the
// pre-copy rounds, the destination disk at handoff is byte-identical
// to the source disk at the pause instant.
TEST(Migration, MigratedDiskByteIdenticalAtHandoff)
{
    const sim::Lba img_sectors = (32 * sim::kMiB) / sim::kSectorSize;
    for (std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
        sim::EventQueue eq;
        bmcast::Cloud cloud(eq, "region", migrateConfig(2));
        cloud.addImage("img", 32 * sim::kMiB, kImg);
        bmcast::Instance *inst = deployOne(eq, cloud, "img");
        ASSERT_NE(inst, nullptr);

        hw::Machine &src = inst->machine();
        const unsigned src_slot = inst->lease().slot();
        Writer wr(eq, *inst, seed, img_sectors, kImg);

        ASSERT_EQ(cloud.migrate(*inst, 1u - src_slot),
                  cloud::MigrateReject::None);
        migrate::MigrationManager *mig = inst->migration();
        ASSERT_NE(mig, nullptr);

        ASSERT_TRUE(testutil::runUntil(
            eq, 40000 * sim::kSec,
            [&]() { return mig->finished(); }))
            << "seed " << seed;

        const migrate::MigrateStats &st = mig->stats();
        ASSERT_FALSE(st.aborted) << "seed " << seed;
        ASSERT_EQ(mig->phase(),
                  migrate::MigrationManager::Phase::Done);
        // The handoff quiesced the source: every issued write
        // completed before the copy — zero writes lost in flight.
        EXPECT_GT(wr.writesIssued, 0u);
        EXPECT_EQ(wr.writesDone, wr.writesIssued) << "seed " << seed;

        // The instance now runs on the other machine, bare-metal,
        // and its disk is exactly the image plus every write the
        // guest ever completed.
        EXPECT_NE(&inst->machine(), &src) << "seed " << seed;
        EXPECT_EQ(inst->state(),
                  bmcast::Instance::State::BareMetal);
        EXPECT_TRUE(migrate::diffDisks(inst->machine().disk().store(),
                                       wr.shadow, 0, img_sectors)
                        .empty())
            << "seed " << seed
            << ": migrated disk diverges from the source's history";

        // Downtime covers the final shipment, the drain tail and
        // the handoff budget.
        EXPECT_GE(st.downtime,
                  migrateConfig(2).migrate.handoffTime +
                      st.finalBytes * 8);

        // Control plane agreed: lease Serving on the new slot.
        EXPECT_EQ(inst->lease().state(), cloud::LeaseState::Serving);
        EXPECT_EQ(inst->lease().slot(), 1u - src_slot);
        EXPECT_EQ(cloud.plane().stats().migrated, 1u);
    }
}

// With nothing re-dirtying (idle guest, zero memory dirty rate) the
// stop-and-copy ships zero bytes and downtime is exactly the handoff
// budget — the floor of the downtime model.
TEST(Migration, ZeroDirtyDowntimeEqualsHandoffBudget)
{
    sim::EventQueue eq;
    bmcast::CloudConfig cfg = migrateConfig(2);
    cfg.migrate.memoryDirtyBytesPerSec = 0;
    bmcast::Cloud cloud(eq, "region", cfg);
    cloud.addImage("img", 32 * sim::kMiB, kImg);
    bmcast::Instance *inst = deployOne(eq, cloud, "img");
    ASSERT_NE(inst, nullptr);

    const unsigned src_slot = inst->lease().slot();
    ASSERT_EQ(cloud.migrate(*inst, 1u - src_slot),
              cloud::MigrateReject::None);
    migrate::MigrationManager *mig = inst->migration();
    ASSERT_TRUE(testutil::runUntil(
        eq, 40000 * sim::kSec, [&]() { return mig->finished(); }));

    const migrate::MigrateStats &st = mig->stats();
    ASSERT_FALSE(st.aborted);
    EXPECT_EQ(st.rounds, 1u);
    EXPECT_FALSE(st.forcedStop);
    EXPECT_EQ(st.finalBytes, 0u);
    EXPECT_EQ(st.downtime, cfg.migrate.handoffTime);
    EXPECT_GE(st.memoryBytesShipped, cfg.migrate.memoryBytes);
    EXPECT_EQ(inst->lease().state(), cloud::LeaseState::Serving);
    EXPECT_GT(inst->lease().migratedAt(), 0u);

    // The source machine scrubs and returns to the pool.
    sim::Tick horizon = eq.now() + 400 * sim::kSec;
    testutil::runUntil(eq, horizon,
                       [&]() { return cloud.freeMachines() == 1u; });
    EXPECT_EQ(cloud.freeMachines(), 1u);
}

// Convergence contract: an unforced stop-and-copy ships at most the
// threshold, and — idle guest at the pause, flat LAN, no congestion
// control — downtime is exactly the handoff budget plus the final
// shipment's wire time. The memory working set re-dirties during
// round 1's flight, so the final shipment is genuinely non-empty.
TEST(Migration, DowntimeWithinStopCopyBudget)
{
    sim::EventQueue eq;
    bmcast::CloudConfig cfg = migrateConfig(2);
    bmcast::Cloud cloud(eq, "region", cfg);
    cloud.addImage("img", 32 * sim::kMiB, kImg);
    bmcast::Instance *inst = deployOne(eq, cloud, "img");
    ASSERT_NE(inst, nullptr);

    ASSERT_EQ(cloud.migrate(*inst, 1u - inst->lease().slot()),
              cloud::MigrateReject::None);
    migrate::MigrationManager *mig = inst->migration();
    ASSERT_TRUE(testutil::runUntil(
        eq, 40000 * sim::kSec, [&]() { return mig->finished(); }));

    const migrate::MigrateStats &st = mig->stats();
    ASSERT_FALSE(st.aborted);
    if (!st.forcedStop) {
        EXPECT_LE(st.finalBytes,
                  cfg.migrate.stopCopyThresholdBytes);
    }
    EXPECT_GT(st.finalBytes, 0u);
    // 1 Gbps wire = 8 ns per byte, nothing else in the path.
    EXPECT_EQ(st.downtime,
              cfg.migrate.handoffTime + st.finalBytes * 8);
    EXPECT_GE(st.rounds, 1u);
    EXPECT_GT(st.bytesShipped, 0u);
}

// Mobility machinery must be inert when unused: radically different
// migration tuning yields a tick-identical run as long as nobody
// calls migrate().
TEST(Migration, UnusedMigrationConfigIsInert)
{
    auto run = [](bmcast::CloudConfig cfg) {
        sim::EventQueue eq;
        bmcast::Cloud cloud(eq, "region", cfg);
        cloud.addImage("img", 32 * sim::kMiB, kImg);
        bmcast::Instance *inst = deployOne(eq, cloud, "img");
        EXPECT_NE(inst, nullptr);
        while (!eq.empty() && eq.now() < 40000 * sim::kSec)
            eq.step();
        return std::tuple<sim::Tick, sim::Tick, std::uint64_t>(
            inst->deployer().timeline().guestBootDone,
            inst->deployer().timeline().bareMetal, eq.executed());
    };

    bmcast::CloudConfig a = migrateConfig(2);
    bmcast::CloudConfig b = migrateConfig(2);
    b.migrate.memoryBytes = 4 * sim::kGiB;
    b.migrate.memoryDirtyBytesPerSec = 1 * sim::kGiB;
    b.migrate.stopCopyThresholdBytes = 1;
    b.migrate.maxRounds = 100;
    b.migrate.handoffTime = 7 * sim::kSec;
    EXPECT_EQ(run(a), run(b));
}

// Regression: a bitmap save requested while another save is in
// flight must not complete immediately — completion confirms
// durability of the *newest* bitmap state, which requires a fresh
// write after the in-flight one lands (the stop-and-copy handoff
// waits on exactly this).
TEST(Migration, PersistBitmapDefersCompletionToNewestToken)
{
    testutil::RigOptions opt;
    testutil::Rig rig(opt);
    bmcast::BmcastDeployer dep(rig.eq, "dep", *rig.machine,
                               *rig.guest, testutil::kServerMac,
                               opt.imageSectors, rig.fastVmmParams(),
                               false);
    dep.run(nullptr);
    ASSERT_TRUE(testutil::runUntil(rig.eq, 4000 * sim::kSec, [&]() {
        return dep.vmm().phase() == bmcast::Vmm::Phase::Deployment;
    }));

    bool done1 = false, done2 = false;
    dep.vmm().saveBitmapNow([&]() { done1 = true; });

    // Newer state arrives while save #1 is in flight.
    const sim::Lba late = opt.imageSectors - 128;
    dep.vmm().bitmap().markFilled(late, 64);
    dep.vmm().saveBitmapNow([&]() { done2 = true; });
    EXPECT_FALSE(done2)
        << "second save completed synchronously against a stale "
           "in-flight token";

    ASSERT_TRUE(testutil::runUntil(rig.eq, 4000 * sim::kSec,
                                   [&]() { return done2; }));
    EXPECT_TRUE(done1);

    // The token on disk at completion reflects the late mark.
    std::uint64_t token = rig.machine->disk().store().baseAt(
        dep.vmm().bitmapHomeLba());
    bmcast::BlockBitmap restored(opt.imageSectors);
    ASSERT_TRUE(restored.restoreFromToken(token));
    EXPECT_TRUE(restored.isFilled(late, 64));
}

migratebench::MigrateWorldParams
worldParams(unsigned shards, std::uint64_t seed)
{
    migratebench::MigrateWorldParams p;
    p.racks = 8;
    p.shards = shards;
    p.seed = seed;
    p.imageBytes = 8 * sim::kMiB;
    p.migrate.memoryBytes = 4 * sim::kMiB;
    p.migrate.memoryDirtyBytesPerSec = 512 * sim::kKiB;
    p.migrate.stopCopyThresholdBytes = 1 * sim::kMiB;
    p.migrate.handoffTime = 20 * sim::kMs;
    p.runFor = 5 * sim::kSec;
    return p;
}

// The determinism gate: eight racks migrating to their neighbors
// over shared aggregation links produce the same fingerprint — every
// stat, both disks, every link meter — on 1, 2, 4 and 8 shards.
TEST(MigrateWorld, FingerprintIdenticalAcrossShardCounts)
{
    std::uint64_t serial_fp = 0;
    unsigned serial_done = 0;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
        migratebench::MigrateWorld w(worldParams(shards, 42));
        w.run();
        EXPECT_EQ(w.migrationsAborted(), 0u);
        if (shards == 1) {
            serial_fp = w.fingerprint();
            serial_done = w.migrationsDone();
            EXPECT_EQ(serial_done, w.prm.racks);
        } else {
            EXPECT_EQ(w.fingerprint(), serial_fp)
                << shards << " shards diverged from serial";
            EXPECT_EQ(w.migrationsDone(), serial_done);
        }
    }
}

// Byte identity holds in the sharded world too: every destination
// replica equals its source's (frozen-after-pause) disk.
TEST(MigrateWorld, ReplicasByteIdenticalToSources)
{
    migratebench::MigrateWorld w(worldParams(4, 7));
    w.run();
    ASSERT_EQ(w.migrationsDone(), w.prm.racks);
    for (unsigned r = 0; r < w.prm.racks; ++r) {
        unsigned dst = (r + 1) % w.prm.racks;
        EXPECT_TRUE(migrate::diffDisks(w.sourceDisk(r),
                                       w.destDisk(dst), 0,
                                       w.sectors())
                        .empty())
            << "rack " << r << " replica diverged";
        EXPECT_GT(w.stats(r).downtime, 0u);
    }
}

// And the fingerprint is seed-sensitive (the workload actually
// varies — a constant fingerprint would gate nothing).
TEST(MigrateWorld, FingerprintVariesWithSeed)
{
    migratebench::MigrateWorld a(worldParams(2, 1));
    a.run();
    migratebench::MigrateWorld b(worldParams(2, 2));
    b.run();
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

} // namespace
