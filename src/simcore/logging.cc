#include "simcore/logging.hh"

#include <iostream>

namespace sim {

namespace {

LogLevel gLevel = LogLevel::Warn;

} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

void
warnStr(const std::string &msg)
{
    if (gLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
informStr(const std::string &msg)
{
    if (gLevel >= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

void
debugStr(const std::string &msg)
{
    if (gLevel >= LogLevel::Debug)
        std::cerr << "debug: " << msg << std::endl;
}

} // namespace sim
