#include "hw/machine.hh"

namespace hw {

Machine::Machine(sim::EventQueue &eq, MachineConfig config,
                 net::Network &lan, net::MacAddr guest_mac,
                 net::Network &mgmt_lan, net::MacAddr mgmt_mac,
                 IbFabric *ib_fabric)
    : sim::SimObject(eq, config.name),
      cfg(std::move(config)),
      mem_(cfg.memory),
      bus_(),
      intc_(eq, name() + ".intc",
            [this]() -> const VirtProfile & { return profile_; }),
      vmx_(eq, name() + ".vmx", cfg.cores),
      fw(eq, name() + ".fw", cfg.firmwareColdInit, cfg.memory),
      disk_(eq, name() + ".disk", cfg.disk, cfg.seed)
{
    bus_.setExitSink(&vmx_);

    if (cfg.storage == StorageKind::Ide) {
        ide_ = std::make_unique<IdeController>(
            eq, name() + ".ide", bus_, mem_, disk_,
            IrqLine(&intc_, ide::kIrqVector));
    } else if (cfg.storage == StorageKind::Ahci) {
        ahci_ = std::make_unique<AhciController>(
            eq, name() + ".ahci", bus_, mem_, disk_,
            IrqLine(&intc_, ahci::kIrqVector));
    } else {
        nvme_ = std::make_unique<NvmeController>(
            eq, name() + ".nvme", bus_, mem_, disk_,
            IrqLine(&intc_, nvme::kIrqVectorQ0),
            IrqLine(&intc_, nvme::kIrqVectorQ1));
    }

    net::PortConfig guest_port;
    guest_port.bitsPerSec = nicModelSpeed(cfg.guestNicModel);
    guest_port.mtu = 9000;
    net::Port &gport = lan.attach(guest_mac, guest_port);
    guestNic_ = std::make_unique<E1000Nic>(
        eq, name() + ".nic0", cfg.guestNicModel, bus_, mem_, gport,
        kGuestNicMmio, IrqLine(&intc_, kGuestNicIrq));

    net::PortConfig mgmt_port;
    mgmt_port.bitsPerSec = nicModelSpeed(cfg.mgmtNicModel);
    mgmt_port.mtu = 9000;
    net::Port &mport = mgmt_lan.attach(mgmt_mac, mgmt_port);
    mgmtNic_ = std::make_unique<E1000Nic>(
        eq, name() + ".nic1", cfg.mgmtNicModel, bus_, mem_, mport,
        kMgmtNicMmio, IrqLine(&intc_, kMgmtNicIrq));

    if (cfg.hasInfiniBand && ib_fabric) {
        hca_ = std::make_unique<IbHca>(
            eq, name() + ".hca", *ib_fabric, cfg.ibNodeId, cfg.ib,
            [this]() -> const VirtProfile & { return profile_; });
    }
}

} // namespace hw
