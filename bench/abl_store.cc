/**
 * @file
 * Ablation: the bmcast::store tier under concurrent deployments.
 *
 * Three experiments on a Cloud region:
 *
 *  - scaling:  N in {1, 2, 4, 8} staggered deployments of one image,
 *              legacy single-server path vs the store tier (erasure
 *              stripe over the seed pool + peer-assisted streaming).
 *              The store's aggregate deployment throughput must scale
 *              superlinearly relative to the single-server baseline
 *              as N grows: the baseline serializes on one server
 *              while warm peers turn every finished node into a
 *              source.
 *  - degraded: one seed server down for the whole run; every
 *              deployment must complete via k-of-n reconstruction
 *              with byte-identical images.
 *  - disabled: store params touched but enabled=false must replay
 *              the legacy path tick for tick (the default-off
 *              contract the figure benches rely on).
 *
 * Every deployment is verified byte-identical against the image
 * catalog. Emits BENCH_store.json; `--smoke` shrinks the image for
 * the bench-smoke ctest label.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "bmcast/cloud.hh"
#include "simcore/table.hh"
#include "store/streamer.hh"

namespace {

constexpr std::uint64_t kBase = 0xABCD000000000001ULL;
/** Deployment-storm arrivals: near-simultaneous, slightly staggered
 *  (the paper's elasticity scenario — many nodes at once). */
constexpr sim::Tick kArrivalStagger = 250 * sim::kMs;

struct FleetResult
{
    unsigned n = 0;
    bool ok = false;
    double makespanSec = 0.0; //!< first power-on to last bare-metal
    double aggTputMBps = 0.0; //!< N * image bytes / makespan
    std::uint64_t peerHits = 0;
    std::uint64_t seedFetches = 0;
    std::uint64_t reconstructions = 0;
    std::uint64_t executed = 0;
    sim::Tick endTick = 0;
    double wallMs = 0.0;
};

bmcast::CloudConfig
regionConfig(unsigned machines, bool store_on)
{
    bmcast::CloudConfig cfg;
    cfg.machines = machines;
    cfg.machineTemplate.disk.capacityBytes = 2 * sim::kGiB;
    // Keep fixed per-deployment costs (VMM boot, guest boot, write
    // pacing) small so the fetch path — the quantity this ablation
    // varies — bounds deployment time.
    cfg.vmm.bootTime = 500 * sim::kMs;
    cfg.vmm.moderation.vmmWriteInterval = 2 * sim::kMs;
    cfg.vmm.moderation.guestIoFreqThreshold = 1e9;
    cfg.guestTemplate.boot.loaderBytes = 512 * sim::kKiB;
    cfg.guestTemplate.boot.kernelBytes = 2 * sim::kMiB;
    cfg.guestTemplate.boot.numReads = 50;
    cfg.guestTemplate.boot.cpuTotal = 500 * sim::kMs;
    cfg.guestTemplate.boot.regionBytes = 8 * sim::kMiB;
    cfg.store.enabled = store_on;
    // BMCAST_CODE=flat-rs | lrc | hitchhiker swaps the stripe
    // algebra without a recompile; LRC widens the stripe (local
    // parities ride on top of the globals), so grow the seed pool to
    // fit the code's width.
    cfg.store.code =
        bench::envCodeKind("BMCAST_CODE", store::ec::CodeKind::FlatRs);
    const unsigned width =
        store::ec::makeCode(cfg.store.code,
                            store::ec::CodeParams{
                                cfg.store.dataShards,
                                cfg.store.parityShards,
                                cfg.store.lrcGroups,
                                cfg.store.decodePenalty})
            ->width();
    cfg.store.seedServers = std::max(cfg.store.seedServers, width);
    return cfg;
}

FleetResult
runFleet(unsigned n, bool store_on, bool kill_seed,
         sim::Bytes image_bytes)
{
    sim::EventQueue eq;
    bmcast::Cloud cloud(eq, "region", regionConfig(n, store_on));
    cloud.addImage("img", image_bytes, kBase);
    if (kill_seed)
        cloud
            .seedServer(
                static_cast<unsigned>(cloud.seedServerCount() - 1))
            .crash();

    std::vector<bmcast::Instance *> fleet(n, nullptr);
    for (unsigned i = 0; i < n; ++i) {
        eq.schedule(i * kArrivalStagger, [&cloud, &fleet, i]() {
            fleet[i] = cloud.provision("img", nullptr);
        });
    }

    auto all_bare = [&]() {
        for (unsigned i = 0; i < n; ++i) {
            if (!fleet[i] ||
                fleet[i]->state() != bmcast::Instance::State::BareMetal)
                return false;
        }
        return true;
    };
    auto t0 = std::chrono::steady_clock::now();
    while (!all_bare() && !eq.empty() &&
           eq.now() < 500000 * sim::kSec)
        eq.step();
    auto t1 = std::chrono::steady_clock::now();

    FleetResult r;
    r.n = n;
    r.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    r.ok = all_bare();
    const sim::Lba image_sectors = image_bytes / sim::kSectorSize;
    sim::Tick last_bare = 0;
    for (unsigned i = 0; i < n && r.ok; ++i) {
        bmcast::Instance *inst = fleet[i];
        last_bare = std::max(last_bare,
                             inst->deployer().timeline().bareMetal);
        r.ok = r.ok && inst->machine().disk().store().rangeHasBase(
                           0, image_sectors, kBase);
        if (store::StoreFabric *f = cloud.storeFabric()) {
            r.ok = r.ok && f->catalog().verifyDisk(
                               "img", inst->machine().disk().store());
        }
        if (store::ChunkStreamer *s =
                inst->deployer().vmm().streamer()) {
            r.peerHits += s->peerHits();
            r.seedFetches += s->seedFetches();
            r.reconstructions += s->reconstructions();
        }
    }
    r.makespanSec = sim::toSeconds(last_bare);
    if (r.makespanSec > 0.0) {
        r.aggTputMBps =
            static_cast<double>(n) *
            (static_cast<double>(image_bytes) / sim::kMiB) /
            r.makespanSec;
    }
    r.executed = eq.executed();
    r.endTick = eq.now();
    return r;
}

/** Legacy run, optionally with every store knob touched while
 *  enabled stays false; touched and pristine runs must be
 *  tick-identical. */
FleetResult
runDisabled(sim::Bytes image_bytes, bool touched)
{
    sim::EventQueue eq;
    bmcast::CloudConfig cfg = regionConfig(1, false);
    if (touched) {
        cfg.store.seedServers = 5;
        cfg.store.dataShards = 3;
        cfg.store.parityShards = 1;
        cfg.store.shardMinTimeout = 7 * sim::kMs;
    }
    bmcast::Cloud cloud(eq, "region", cfg);
    cloud.addImage("img", image_bytes, kBase);
    bmcast::Instance *a = cloud.provision("img", nullptr);
    while (a->state() != bmcast::Instance::State::BareMetal &&
           !eq.empty() && eq.now() < 500000 * sim::kSec)
        eq.step();
    FleetResult r;
    r.n = 1;
    r.ok = a->state() == bmcast::Instance::State::BareMetal;
    r.executed = eq.executed();
    r.endTick = eq.now();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const sim::Bytes image_bytes =
        smoke ? 64 * sim::kMiB : 256 * sim::kMiB;

    bench::figureHeader(
        "Ablation: content-addressed store, erasure stripe and "
        "peer-assisted streaming");
    std::cout << "image: " << image_bytes / sim::kMiB << " MiB"
              << (smoke ? " (smoke)" : "") << ", arrival stagger: "
              << sim::toSeconds(kArrivalStagger) << " s, code: "
              << store::ec::codeKindName(bench::envCodeKind(
                     "BMCAST_CODE", store::ec::CodeKind::FlatRs))
              << "\n";

    // Fleet sizes come from the environment (BMCAST_NODES=16,32,...)
    // so storm sweeps need no recompile.
    const std::vector<unsigned> fleet_sizes =
        bench::envUnsignedList("BMCAST_NODES", {1, 2, 4, 8});
    std::vector<FleetResult> legacy, stored;
    for (unsigned n : fleet_sizes) {
        legacy.push_back(runFleet(n, false, false, image_bytes));
        stored.push_back(runFleet(n, true, false, image_bytes));
    }

    sim::Table t({"N", "legacy makespan (s)", "store makespan (s)",
                  "legacy MB/s", "store MB/s", "peer hits",
                  "seed fetches"});
    for (std::size_t i = 0; i < fleet_sizes.size(); ++i) {
        t.addRow({std::to_string(fleet_sizes[i]),
                  sim::Table::num(legacy[i].makespanSec, 2),
                  sim::Table::num(stored[i].makespanSec, 2),
                  sim::Table::num(legacy[i].aggTputMBps, 1),
                  sim::Table::num(stored[i].aggTputMBps, 1),
                  std::to_string(stored[i].peerHits),
                  std::to_string(stored[i].seedFetches)});
    }
    t.print(std::cout);

    bool all_ok = true;
    for (const auto &r : legacy)
        all_ok = all_ok && r.ok;
    for (const auto &r : stored)
        all_ok = all_ok && r.ok;

    // Superlinear scaling vs the single-server baseline: the store's
    // throughput advantage must widen as concurrency grows (warm
    // peers add capacity with every finished deployment, while the
    // legacy path queues on one server).
    const auto &lg1 = legacy.front(), &lgN = legacy.back();
    const auto &st1 = stored.front(), &stN = stored.back();
    double rel1 = st1.aggTputMBps / lg1.aggTputMBps;
    double relN = stN.aggTputMBps / lgN.aggTputMBps;
    bool superlinear = relN > rel1 * 1.25 && relN > 1.5;
    std::cout << "\nstore/legacy throughput ratio: N=1 "
              << rel1 << "  N=" << fleet_sizes.back() << " " << relN
              << "  (superlinear: " << (superlinear ? "yes" : "NO")
              << ")\n";

    // Degraded pool: one seed down, everything still deploys
    // byte-identical via k-of-n reconstruction.
    FleetResult degraded = runFleet(4, true, true, image_bytes);
    bool degraded_ok = degraded.ok && degraded.reconstructions > 0;
    std::cout << "degraded (1 seed down, N=4): "
              << (degraded.ok ? "complete" : "INCOMPLETE") << ", "
              << degraded.reconstructions << " reconstructions, "
              << sim::Table::num(degraded.makespanSec, 2)
              << " s makespan\n";

    // Default-off contract: touched-but-disabled store params replay
    // the legacy run tick for tick.
    FleetResult pristine = runDisabled(image_bytes, false);
    FleetResult touched = runDisabled(image_bytes, true);
    bool disabled_identical = pristine.ok && touched.ok &&
                              touched.executed == pristine.executed &&
                              touched.endTick == pristine.endTick;
    std::cout << "store-disabled run tick-identical to legacy: "
              << (disabled_identical ? "yes" : "NO") << "\n";

    // Uniform storm records (one per store-tier configuration), in
    // the same shape abl_scaleout and abl_storm emit.
    std::vector<bench::ScaleRecord> recs;
    for (std::size_t i = 0; i < fleet_sizes.size(); ++i) {
        bench::ScaleRecord rec;
        rec.nodes = fleet_sizes[i];
        rec.wallMs = stored[i].wallMs;
        rec.events = stored[i].executed;
        if (rec.wallMs > 0.0)
            rec.eventsPerSec =
                double(rec.events) / (rec.wallMs / 1000.0);
        recs.push_back(rec);
    }

    std::ofstream json("BENCH_store.json");
    json << "{\n  \"bench\": \"abl_store\",\n"
         << "  \"image_mib\": " << image_bytes / sim::kMiB << ",\n"
         << "  " << bench::scaleRecordsJson(recs, "  ") << ",\n"
         << "  \"superlinear_vs_single_server\": "
         << (superlinear ? "true" : "false") << ",\n"
         << "  \"degraded_ok\": " << (degraded_ok ? "true" : "false")
         << ",\n"
         << "  \"degraded_reconstructions\": "
         << degraded.reconstructions << ",\n"
         << "  \"disabled_tick_identical\": "
         << (disabled_identical ? "true" : "false") << ",\n"
         << "  \"fleets\": [\n";
    for (std::size_t i = 0; i < fleet_sizes.size(); ++i) {
        json << "    {\"n\": " << fleet_sizes[i]
             << ", \"legacy_makespan_sec\": " << legacy[i].makespanSec
             << ", \"store_makespan_sec\": " << stored[i].makespanSec
             << ", \"legacy_agg_mbps\": " << legacy[i].aggTputMBps
             << ", \"store_agg_mbps\": " << stored[i].aggTputMBps
             << ", \"peer_hits\": " << stored[i].peerHits
             << ", \"seed_fetches\": " << stored[i].seedFetches
             << ", \"ok\": "
             << (legacy[i].ok && stored[i].ok ? "true" : "false")
             << "}" << (i + 1 < fleet_sizes.size() ? "," : "")
             << "\n";
    }
    json << "  ]\n}\n";
    json.close();
    std::cout << "wrote BENCH_store.json\n";

    bool ok =
        all_ok && superlinear && degraded_ok && disabled_identical;
    return ok ? 0 : 1;
}
