#include "bmcast/nic_mediator.hh"

#include "simcore/logging.hh"

namespace bmcast {

using namespace hw::e1000;
using hw::IoSpace;

NicMediator::NicMediator(sim::EventQueue &eq, std::string name,
                         hw::IoBus &bus_, hw::PhysMem &mem_,
                         hw::E1000Nic &nic_, hw::MemArena &vmm_arena)
    : sim::SimObject(eq, std::move(name)),
      bus(bus_), vmmView(bus_, /*guestContext=*/false), mem(mem_),
      nic(nic_)
{
    sTxRing = vmm_arena.alloc(kShadowSize * kDescSize, 128);
    sRxRing = vmm_arena.alloc(kShadowSize * kDescSize, 128);
    sTxBufs = vmm_arena.alloc(kShadowSize * kBufSize, 4096);
    sRxBufs = vmm_arena.alloc(kShadowSize * kBufSize, 4096);
}

void
NicMediator::install()
{
    sim::panicIfNot(!installed, "NIC mediator installed twice");
    installed = true;

    // Point the physical NIC at the shadow rings and enable it; the
    // guest's idea of the ring registers is virtualized from now on.
    sim::Addr base = nic.mmioBase();
    for (unsigned i = 0; i < kShadowSize; ++i) {
        sim::Addr d = sRxRing + i * kDescSize;
        mem.write64(d, sRxBufs + i * kBufSize);
        mem.write32(d + 8, 0);
        mem.write32(d + 12, 0);
    }
    vmmView.write(IoSpace::Mmio, base + kRdbal,
                  static_cast<std::uint32_t>(sRxRing), 4);
    vmmView.write(IoSpace::Mmio, base + kRdlen,
                  kShadowSize * kDescSize, 4);
    vmmView.write(IoSpace::Mmio, base + kRdh, 0, 4);
    vmmView.write(IoSpace::Mmio, base + kRdt, kShadowSize - 1, 4);
    vmmView.write(IoSpace::Mmio, base + kRctl, kRctlEn, 4);
    vmmView.write(IoSpace::Mmio, base + kTdbal,
                  static_cast<std::uint32_t>(sTxRing), 4);
    vmmView.write(IoSpace::Mmio, base + kTdlen,
                  kShadowSize * kDescSize, 4);
    vmmView.write(IoSpace::Mmio, base + kTdh, 0, 4);
    vmmView.write(IoSpace::Mmio, base + kTdt, 0, 4);
    vmmView.write(IoSpace::Mmio, base + kTctl, kTctlEn, 4);
    // The physical interrupt stays armed: the device's IRQ drives
    // the *guest's* ISR, whose first ICR read (intercepted) is where
    // the mediator syncs the shadow rings. The guest's own IMS
    // intent is virtualized in gIms.
    vmmView.write(IoSpace::Mmio, base + kIms, kIcrTxdw | kIcrRxt0, 4);

    bus.intercept(IoSpace::Mmio, nic.mmioBase(), kMmioSize, this);
}

void
NicMediator::uninstall()
{
    sim::panicIfNot(installed, "NIC mediator not installed");
    drainShadowRx();

    // Reprogram the device with the guest's ring configuration so
    // the guest driver continues seamlessly.
    sim::Addr base = nic.mmioBase();
    vmmView.write(IoSpace::Mmio, base + kRdbal, gRdbal, 4);
    vmmView.write(IoSpace::Mmio, base + kRdlen, gRdlen, 4);
    vmmView.write(IoSpace::Mmio, base + kRdh, gRdh, 4);
    vmmView.write(IoSpace::Mmio, base + kRdt, gRdt, 4);
    vmmView.write(IoSpace::Mmio, base + kRctl, gRctl, 4);
    vmmView.write(IoSpace::Mmio, base + kTdbal, gTdbal, 4);
    vmmView.write(IoSpace::Mmio, base + kTdlen, gTdlen, 4);
    vmmView.write(IoSpace::Mmio, base + kTdh, gTdh, 4);
    vmmView.write(IoSpace::Mmio, base + kTdt, gTdh, 4);
    vmmView.write(IoSpace::Mmio, base + kTctl, gTctl, 4);
    vmmView.write(IoSpace::Mmio, base + kIms, gIms, 4);

    bus.removeIntercept(IoSpace::Mmio, nic.mmioBase(), kMmioSize);
    installed = false;
}

net::MacAddr
NicMediator::localMac() const
{
    return nic.port().mac();
}

sim::Bytes
NicMediator::mtu() const
{
    return nic.port().config().mtu;
}

unsigned
NicMediator::shadowTxFree()
{
    // Reclaim completed shadow TX descriptors first.
    while (sTxClean != sTxTail) {
        sim::Addr d = sTxRing + sTxClean * kDescSize;
        if (!(mem.read8(d + 12) & kDescDd))
            break;
        sTxClean = (sTxClean + 1) % kShadowSize;
    }
    unsigned used = (sTxTail + kShadowSize - sTxClean) % kShadowSize;
    return kShadowSize - 1 - used;
}

void
NicMediator::shadowSend(const net::Frame &frame, bool from_guest)
{
    if (shadowTxFree() == 0) {
        sim::warn(name(), ": shadow TX ring full; frame dropped");
        return;
    }
    sim::Addr buf = sTxBufs + sTxTail * kBufSize;
    sim::Bytes len = 14 + frame.payload.size();
    sim::panicIfNot(len <= kBufSize, "oversize frame in shadow ring");
    for (int i = 0; i < 6; ++i) {
        mem.write8(buf + i, static_cast<std::uint8_t>(
                                frame.dst >> (8 * (5 - i))));
        mem.write8(buf + 6 + i, static_cast<std::uint8_t>(
                                    frame.src >> (8 * (5 - i))));
    }
    mem.write8(buf + 12,
               static_cast<std::uint8_t>(frame.etherType >> 8));
    mem.write8(buf + 13, static_cast<std::uint8_t>(frame.etherType));
    if (!frame.payload.empty())
        mem.write(buf + 14, frame.payload.data(),
                  frame.payload.size());

    sim::Addr d = sTxRing + sTxTail * kDescSize;
    mem.write64(d, buf);
    mem.write16(d + 8, static_cast<std::uint16_t>(len));
    mem.write8(d + 11, kTxCmdEop | kTxCmdRs);
    mem.write8(d + 12, 0);
    mem.write16(d + 14,
                static_cast<std::uint16_t>(frame.padding >> 3));
    sTxTail = (sTxTail + 1) % kShadowSize;
    vmmView.write(IoSpace::Mmio, nic.mmioBase() + kTdt, sTxTail, 4);

    if (from_guest) {
        ++stats_.guestTx;
        ++stats_.copies;
    } else {
        ++stats_.vmmTx;
    }
}

void
NicMediator::sendFrame(net::Frame frame)
{
    frame.src = localMac();
    shadowSend(frame, /*fromGuest=*/false);
}

void
NicMediator::pumpGuestTx()
{
    // Copy newly queued guest descriptors into the shadow ring.
    unsigned count = gTdlen / kDescSize;
    if (count == 0)
        return;
    while (gTdh != gTdt && shadowTxFree() > 0) {
        sim::Addr d = sim::Addr(gTdbal) + gTdh * kDescSize;
        sim::Addr buf = mem.read64(d);
        std::uint16_t len = mem.read16(d + 8);
        std::uint16_t special = mem.read16(d + 14);

        net::Frame f;
        std::uint64_t dst = 0, src = 0;
        for (int i = 0; i < 6; ++i) {
            dst = (dst << 8) | mem.read8(buf + i);
            src = (src << 8) | mem.read8(buf + 6 + i);
        }
        f.dst = dst;
        f.src = src;
        f.etherType = static_cast<std::uint16_t>(
            (mem.read8(buf + 12) << 8) | mem.read8(buf + 13));
        f.payload.resize(len > 14 ? len - 14 : 0);
        if (!f.payload.empty())
            mem.read(buf + 14, f.payload.data(), f.payload.size());
        f.padding = sim::Bytes(special) << 3;

        shadowSend(f, /*fromGuest=*/true);
        // Complete the guest descriptor.
        mem.write8(d + 12, static_cast<std::uint8_t>(
                               mem.read8(d + 12) | kDescDd));
        gTdh = (gTdh + 1) % count;
    }
}

void
NicMediator::deliverToGuest(const net::Frame &frame)
{
    unsigned count = gRdlen / kDescSize;
    if (!(gRctl & kRctlEn) || count == 0 || gRdh == gRdt)
        return; // guest not ready: drop, as hardware would
    sim::Addr d = sim::Addr(gRdbal) + gRdh * kDescSize;
    sim::Addr buf = mem.read64(d);
    for (int i = 0; i < 6; ++i) {
        mem.write8(buf + i, static_cast<std::uint8_t>(
                                frame.dst >> (8 * (5 - i))));
        mem.write8(buf + 6 + i, static_cast<std::uint8_t>(
                                    frame.src >> (8 * (5 - i))));
    }
    mem.write8(buf + 12,
               static_cast<std::uint8_t>(frame.etherType >> 8));
    mem.write8(buf + 13, static_cast<std::uint8_t>(frame.etherType));
    if (!frame.payload.empty())
        mem.write(buf + 14, frame.payload.data(),
                  frame.payload.size());
    mem.write16(d + 8, static_cast<std::uint16_t>(
                           14 + frame.payload.size()));
    mem.write8(d + 12,
               static_cast<std::uint8_t>(kDescDd | kRxStEop));
    mem.write16(d + 14,
                static_cast<std::uint16_t>(frame.padding >> 3));
    gRdh = (gRdh + 1) % count;
    gIcr |= kIcrRxt0;
    ++stats_.guestRx;
    ++stats_.copies;
}

void
NicMediator::drainShadowRx()
{
    while (true) {
        sim::Addr d = sRxRing + sRxHead * kDescSize;
        std::uint8_t st = mem.read8(d + 12);
        if (!(st & kDescDd))
            break;
        sim::Addr buf = mem.read64(d);
        std::uint16_t len = mem.read16(d + 8);
        std::uint16_t special = mem.read16(d + 14);

        net::Frame f;
        std::uint64_t dst = 0, src = 0;
        for (int i = 0; i < 6; ++i) {
            dst = (dst << 8) | mem.read8(buf + i);
            src = (src << 8) | mem.read8(buf + 6 + i);
        }
        f.dst = dst;
        f.src = src;
        f.etherType = static_cast<std::uint16_t>(
            (mem.read8(buf + 12) << 8) | mem.read8(buf + 13));
        f.payload.resize(len > 14 ? len - 14 : 0);
        if (!f.payload.empty())
            mem.read(buf + 14, f.payload.data(), f.payload.size());
        f.padding = sim::Bytes(special) << 3;

        // Return the shadow descriptor to hardware.
        mem.write8(d + 12, 0);
        vmmView.write(IoSpace::Mmio, nic.mmioBase() + kRdt, sRxHead,
                      4);
        sRxHead = (sRxHead + 1) % kShadowSize;

        // Demultiplex: AoE is the VMM's deployment traffic; all
        // other frames belong to the guest.
        if (f.etherType == aoe::kEtherType) {
            ++stats_.vmmRx;
            if (vmmRx)
                vmmRx(f);
        } else {
            deliverToGuest(f);
        }
    }
}

void
NicMediator::poll()
{
    if (!installed)
        return;
    drainShadowRx();
    shadowTxFree(); // reclaim
}

bool
NicMediator::interceptRead(sim::Addr addr, unsigned size,
                           std::uint64_t &value)
{
    (void)size;
    switch (addr - nic.mmioBase()) {
      case kIcr: {
        // Guest ISR entry: sync the shadow RX into the guest ring
        // before the guest looks, then hand over the causes.
        drainShadowRx();
        value = gIcr;
        gIcr = 0;
        return true;
      }
      case kTdh:
        value = gTdh;
        return true;
      case kTdt:
        value = gTdt;
        return true;
      case kRdh:
        value = gRdh;
        return true;
      case kRdt:
        value = gRdt;
        return true;
      case kTdbal:
        value = gTdbal;
        return true;
      case kRdbal:
        value = gRdbal;
        return true;
      case kIms:
        value = gIms;
        return true;
      default:
        return false; // STATUS etc. pass through
    }
}

bool
NicMediator::interceptWrite(sim::Addr addr, std::uint64_t value,
                            unsigned size)
{
    (void)size;
    auto v = static_cast<std::uint32_t>(value);
    switch (addr - nic.mmioBase()) {
      case kTdbal:
        gTdbal = v;
        return true;
      case kTdlen:
        gTdlen = v;
        return true;
      case kTdh:
        gTdh = v;
        return true;
      case kTdt:
        gTdt = v;
        pumpGuestTx();
        // The guest expects a TX-done interrupt; the real device
        // raises one for the shadow descriptors carrying its frames.
        gIcr |= kIcrTxdw;
        return true;
      case kRdbal:
        gRdbal = v;
        return true;
      case kRdlen:
        gRdlen = v;
        return true;
      case kRdh:
        gRdh = v;
        return true;
      case kRdt:
        gRdt = v;
        return true;
      case kRctl:
        gRctl = v;
        return true;
      case kTctl:
        gTctl = v;
        return true;
      case kIms:
        gIms |= v;
        return true;
      case kImc:
        gIms &= ~v;
        return true;
      default:
        return false;
    }
}

} // namespace bmcast
