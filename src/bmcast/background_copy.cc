#include "bmcast/background_copy.hh"

#include <algorithm>

#include "hw/disk_store.hh"
#include "simcore/logging.hh"

namespace bmcast {

namespace {

/**
 * Split fetched tokens into maximal single-content-base runs.  Flat
 * images produce one run (the legacy path); overlay images served by
 * the store tier can mix bases inside one fetch.
 */
template <typename Fn>
void
forEachTokenRun(sim::Lba lba, const std::vector<std::uint64_t> &tokens,
                Fn fn)
{
    std::size_t i = 0;
    while (i < tokens.size()) {
        std::uint64_t base = hw::baseFromToken(tokens[i], lba + i);
        std::size_t j = i + 1;
        while (j < tokens.size() &&
               hw::baseFromToken(tokens[j], lba + j) == base)
            ++j;
        fn(lba + i, static_cast<std::uint32_t>(j - i), base);
        i = j;
    }
}

} // namespace

BackgroundCopy::BackgroundCopy(sim::EventQueue &eq, std::string name,
                               const VmmParams &params_,
                               DeviceMediator &mediator_,
                               BlockBitmap &bitmap_, FetchFn fetch_,
                               sim::Lba image_sectors,
                               std::function<void()> on_complete)
    : sim::SimObject(eq, std::move(name)),
      params(params_), mod(params_.moderation), mediator(mediator_),
      bitmap(bitmap_), fetch(std::move(fetch_)),
      imageSectors(image_sectors), onComplete(std::move(on_complete)),
      guestIoRate(params_.moderation.guestIoWindow),
      obsTrack_(this->name())
{
}

void
BackgroundCopy::noteMilestone(const char *what, double value)
{
    if (!obs::armed())
        return;
    obs::Tracer &t = obs::tracer();
    t.milestone(obsTrack_.id(t), what, now(), value);
}

void
BackgroundCopy::start()
{
    sim::panicIfNot(!running, "background copy started twice");
    running = true;
    retrieverLoop();
    if (!writerArmed)
        armWriter(pacedInterval());
}

void
BackgroundCopy::noteFetchTrouble()
{
    if (degradeShift < 6) {
        ++degradeShift;
        ++numDegrades;
        noteMilestone("copy.degrade",
                      static_cast<double>(degradeShift));
        sim::inform(name(), ": fetch trouble; pacing backed off to ",
                    sim::toMillis(pacedInterval()), " ms");
    }
}

void
BackgroundCopy::stop()
{
    running = false;
    stopSuspendPoll();
}

void
BackgroundCopy::armWriter(sim::Tick delay)
{
    writerArmed = true;
    schedule(delay, [this]() { writerWake(); });
}

void
BackgroundCopy::stopSuspendPoll()
{
    if (suspendPollActive) {
        eventQueue().cancel(suspendPoll);
        suspendPollActive = false;
        noteMilestone("copy.resume");
    }
}

void
BackgroundCopy::noteGuestIo(bool is_write, std::uint32_t sectors)
{
    (void)is_write;
    (void)sectors;
    guestIoRate.record(now());
    // Seek locality (§3.3): continue copying near the guest's last
    // access. The retriever picks this up on its next block.
}

void
BackgroundCopy::stashFetched(sim::Lba lba, std::uint32_t count,
                             const std::vector<std::uint64_t> &tokens)
{
    if (done || tokens.empty())
        return;
    // Copy-on-read data arriving means the fetch path works.
    degradeShift = 0;
    // Copy-on-read data (Fig. 1b: the VMM "also writes the data to
    // the local disk for future use"): queued for the writer thread,
    // which drains this queue with priority but under the same
    // moderation, so deployment work never competes with a booting
    // or I/O-active guest.
    // Coalesce with the previous stash block when contiguous (boot
    // reads often continue each other), halving the write count and
    // amortizing seeks.  Mixed-base fetches (overlay images via the
    // store tier) split into per-base runs.
    forEachTokenRun(
        lba, tokens,
        [this](sim::Lba rl, std::uint32_t rc, std::uint64_t rb) {
            if (!stashQueue.empty()) {
                Block &back = stashQueue.back();
                if (back.lba + back.count == rl &&
                    back.contentBase == rb &&
                    back.count + rc <= params.copyBlockSectors) {
                    back.count += rc;
                    return;
                }
            }
            stashQueue.push_back(Block{rl, rc, rb});
        });
    // Follow the guest's access pattern for subsequent retrieves.
    cursor = std::min<sim::Lba>(lba + count, imageSectors);
}

void
BackgroundCopy::retrieverLoop()
{
    if (!running || done || retrieverBusy)
        return;
    if (fifo.size() >= params.copyFifoDepth)
        return; // writer drains, then re-kicks us

    // Pick the next EMPTY block at/after the cursor, wrapping once.
    auto next = bitmap.firstEmpty(cursor);
    if (!next || *next >= imageSectors)
        next = bitmap.firstEmpty(0);
    if (!next || *next >= imageSectors) {
        checkComplete();
        return;
    }
    sim::Lba lba = *next;
    auto block = bitmap.firstEmptyRange(
        lba, std::min<std::uint64_t>(params.copyBlockSectors,
                                     imageSectors - lba));
    sim::panicIfNot(block.has_value(),
                    "firstEmpty disagrees with gaps");
    auto count =
        static_cast<std::uint32_t>(block->second - block->first);
    lba = block->first;
    if (params.copyFetchAlignSectors) {
        // Trim a boundary-crossing fetch so it ends on an alignment
        // boundary: successors then start chunk-aligned and the store
        // tier fans the span out one piece per chunk. Fetches inside
        // a single chunk (tail, or resuming behind a guest read) pass
        // through untouched.
        sim::Lba aligned_end = ((lba + count) /
                                params.copyFetchAlignSectors) *
                               params.copyFetchAlignSectors;
        if (aligned_end > lba)
            count = static_cast<std::uint32_t>(aligned_end - lba);
    }
    cursor = lba + count;

    retrieverBusy = true;
    if (gate_) {
        // Book the block against the shared deployment budget; a
        // congested lane pushes the issue into the future while the
        // retriever stays busy (no second pick races this one).
        sim::Tick start =
            gate_(sim::Bytes(count) * sim::kSectorSize, now());
        if (start > now()) {
            ++gateWaits_;
            schedule(start - now(), [this, lba, count]() {
                if (!running || done) {
                    retrieverBusy = false;
                    return;
                }
                issueFetch(lba, count);
            });
            return;
        }
    }
    issueFetch(lba, count);
}

void
BackgroundCopy::issueFetch(sim::Lba lba, std::uint32_t count)
{
    fetch(lba, count,
          [this, lba](const std::vector<std::uint64_t> &tokens) {
              retrieverBusy = false;
              // The fetch path answered: back to full-speed pacing.
              degradeShift = 0;
              if (!running || done)
                  return;
              forEachTokenRun(lba, tokens,
                              [this](sim::Lba rl, std::uint32_t rc,
                                     std::uint64_t rb) {
                                  fifo.push_back(Block{rl, rc, rb});
                              });
              retrieverLoop();
          });
}

void
BackgroundCopy::writerWake()
{
    writerArmed = false;
    if (!running || done) {
        stopSuspendPoll();
        return;
    }

    // Moderation (§3.3): suspend while the guest is I/O-active. The
    // re-check runs on a periodic timer, so a long suspension costs
    // no per-poll scheduling work.
    if (guestIoRate.ratePerSec(now()) > mod.guestIoFreqThreshold) {
        ++numSuspends;
        writerArmed = true; // the poll below is the pending wake-up
        if (!suspendPollActive) {
            noteMilestone("copy.suspend",
                          static_cast<double>(numSuspends));
            suspendPollActive = true;
            suspendPoll =
                schedulePeriodic(mod.vmmWriteSuspendInterval,
                                 [this]() { writerWake(); });
        }
        return;
    }
    stopSuspendPoll();

    // One copy block's worth of sectors per interval; small
    // copy-on-read stash entries chain until the budget is used.
    roundBudget = params.copyBlockSectors;
    roundStart = now();
    tryWriteHead();
}

void
BackgroundCopy::tryWriteHead()
{
    if (!running || done)
        return;

    // Copy-on-read data first (already fetched and needed again
    // soonest), then fresh blocks from the retriever.
    while (!stashQueue.empty()) {
        if (bitmap.claimForVmmWrite(stashQueue.front().lba,
                                    stashQueue.front().count)) {
            fifo.push_front(stashQueue.front());
            stashQueue.pop_front();
            break;
        }
        stashQueue.pop_front();
        ++skipped;
    }

    // Drop blocks that lost the race with guest writes (§3.3: the
    // bitmap is checked atomically before the VMM writes).
    while (!fifo.empty() &&
           !bitmap.claimForVmmWrite(fifo.front().lba,
                                    fifo.front().count)) {
        // Partially or fully filled meanwhile: write only what is
        // still empty, as separate sub-blocks.
        Block b = fifo.front();
        fifo.pop_front();
        auto empty = bitmap.emptyRanges(b.lba, b.count);
        if (empty.empty()) {
            ++skipped;
            continue;
        }
        // Re-queue the still-empty sub-ranges at the front, in
        // order.
        for (auto it = empty.rbegin(); it != empty.rend(); ++it) {
            fifo.push_front(Block{
                it->first,
                static_cast<std::uint32_t>(it->second - it->first),
                b.contentBase});
        }
        break;
    }

    if (fifo.empty()) {
        retrieverLoop();
        armWriter(pacedInterval());
        return;
    }

    Block b = fifo.front();
    if (writeInFlight)
        return;

    // The write interval is measured between round *starts*: the
    // pacing knob controls the block issue rate, not idle gaps.
    bool accepted = mediator.vmmWrite(
        b.lba, b.count, b.contentBase, [this, b]() {
            writeInFlight = false;
            if (observer)
                observer(b.lba, b.count);
            if (storeObserver)
                storeObserver(b.lba, b.count);
            // FILLED only at completion: until the data is on disk,
            // reads must keep going to the server.
            bitmap.markFilled(b.lba, b.count);
            written += sim::Bytes(b.count) * sim::kSectorSize;
            roundBudget = roundBudget > b.count
                              ? roundBudget - b.count
                              : 0;
            checkComplete();
            if (done || !running)
                return;
            retrieverLoop();
            if (roundBudget > 0 &&
                (!stashQueue.empty() || !fifo.empty())) {
                // Round budget remains: keep writing queued data.
                tryWriteHead();
                return;
            }
            if (!writerArmed) {
                sim::Tick elapsed = now() - roundStart;
                sim::Tick interval = pacedInterval();
                armWriter(interval > elapsed ? interval - elapsed
                                             : 0);
            }
        });

    if (accepted) {
        writeInFlight = true;
        fifo.pop_front();
    } else {
        // Device busy with guest I/O: retry shortly (the mediator
        // queues nothing for us; we poll).  The retry poll backs
        // off with the same degradation exponent.
        armWriter(std::min<sim::Tick>(pacedInterval(),
                                      2 * sim::kMs << degradeShift));
    }
}

void
BackgroundCopy::checkComplete()
{
    if (done)
        return;
    if (bitmap.isFilled(0, imageSectors)) {
        done = true;
        running = false;
        noteMilestone("copy.complete",
                      static_cast<double>(written / sim::kMiB));
        sim::inform(name(), ": deployment copy complete (",
                    written / sim::kMiB, " MiB written by VMM)");
        if (onComplete)
            onComplete();
    }
}

} // namespace bmcast
