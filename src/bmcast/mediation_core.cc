#include "bmcast/mediation_core.hh"

#include <algorithm>

#include "obs/registry.hh"
#include "simcore/logging.hh"

namespace bmcast {

void
publishMediatorStats(obs::Registry &reg, const std::string &label,
                     const MediatorStats &s)
{
    reg.counter("mediator.pt_reads", label).set(s.passthroughReads);
    reg.counter("mediator.pt_writes", label).set(s.passthroughWrites);
    reg.counter("mediator.redirected_reads", label)
        .set(s.redirectedReads);
    reg.counter("mediator.redirected_sectors", label)
        .set(s.redirectedSectors);
    reg.counter("mediator.mixed_redirects", label)
        .set(s.mixedRedirects);
    reg.counter("mediator.vmm_ops", label).set(s.vmmOps);
    reg.counter("mediator.queued_guest_writes", label)
        .set(s.queuedGuestWrites);
    reg.counter("mediator.reserved_conversions", label)
        .set(s.reservedConversions);
    reg.counter("mediator.dummy_restarts", label)
        .set(s.dummyRestarts);
}

MediationCore::MediationCore(std::string name_, hw::PhysMem &mem_,
                             ControllerPort &port_,
                             MediatorServices services,
                             sim::Addr bounce_buffer,
                             std::uint32_t bounce_sectors)
    : name(std::move(name_)), mem(mem_), port(port_),
      svc(std::move(services)), bounceBuffer(bounce_buffer),
      bounceSectors(bounce_sectors), obsTrack_(name)
{
    sim::panicIfNot(svc.bitmap != nullptr, "mediator needs a bitmap");
}

bool
MediationCore::onGuestWrite(std::uint32_t key, sim::Lba lba,
                            std::uint32_t count)
{
    bool overlaps_reserved =
        lba < svc.reservedEnd && svc.reservedBase < lba + count;
    if (overlaps_reserved) {
        // Protect the bitmap home: convert the write to a dummy
        // read (§3.3); the data is dropped.
        ++stats_.reservedConversions;
        sim::warn(name, ": guest write into reserved region dropped");
        queueRedirect(key, lba, count, /*zero_fill=*/true,
                      /*dropped_write=*/true, nullptr);
        return false;
    }
    // Guest data is the freshest: mark at issue time so the
    // background writer can never claim these blocks (§3.3).
    svc.bitmap->markFilled(lba, count);
    if (svc.onGuestWriteRange)
        svc.onGuestWriteRange(lba, count);
    ++stats_.passthroughWrites;
    if (svc.onGuestIo)
        svc.onGuestIo(true, count);
    return true;
}

bool
MediationCore::onGuestRead(std::uint32_t key, sim::Lba lba,
                           std::uint32_t count, const SgProvider &sg)
{
    if (svc.onGuestIo)
        svc.onGuestIo(false, count);
    bool overlaps_reserved =
        lba < svc.reservedEnd && svc.reservedBase < lba + count;
    if (overlaps_reserved) {
        // Reserved-region reads return zeros; nothing to fetch.
        ++stats_.reservedConversions;
        queueRedirect(key, lba, count, /*zero_fill=*/true,
                      /*dropped_write=*/false, sg);
        return false;
    }
    if (svc.bitmap->isFilled(lba, count)) {
        ++stats_.passthroughReads;
        return true;
    }
    queueRedirect(key, lba, count, /*zero_fill=*/false,
                  /*dropped_write=*/false, sg);
    return false;
}

void
MediationCore::queueGuestWrite(sim::Addr addr, std::uint64_t value)
{
    queuedWrites.emplace_back(addr, value);
    ++stats_.queuedGuestWrites;
}

void
MediationCore::queueRedirect(std::uint32_t key, sim::Lba lba,
                             std::uint32_t count, bool zero_fill,
                             bool dropped_write, const SgProvider &sg)
{
    ++stats_.redirectedReads;
    Redirect r;
    r.key = key;
    r.lba = lba;
    r.count = count;
    r.zeroFill = zero_fill;
    r.droppedWrite = dropped_write;
    r.obsId = ++obsSeq_;
    if (!dropped_write && sg)
        r.guestSg = sg();
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.asyncBegin(obsTrack_.id(t), "mediator", "redirect",
                     r.obsId, obs::now());
    }
    redirects.push_back(std::move(r));
}

void
MediationCore::beginRedirects()
{
    if (redirects.empty())
        return;
    if (port.deviceBusy()) {
        state_ = State::Draining;
        return;
    }
    state_ = State::Redirecting;
    port.takeDevice();

    Redirect &r = redirects.front();
    r.tokens.assign(r.count, 0);
    if (r.droppedWrite || r.zeroFill) {
        finishRedirectDataPhase();
        return;
    }

    // FILLED sub-ranges must come from the local disk (the server's
    // copy may be stale if the guest overwrote them). First
    // allocation-free pass: derive them as the complement of the
    // EMPTY ranges and fix the fetch count before any fetch can
    // complete.
    std::size_t numFetches = 0;
    sim::Lba pos = r.lba;
    svc.bitmap->forEachEmpty(r.lba, r.count,
                             [&](sim::Lba s, sim::Lba e) {
                                 if (s > pos)
                                     r.localRanges.emplace_back(pos, s);
                                 pos = e;
                                 ++numFetches;
                             });
    if (pos < r.lba + r.count)
        r.localRanges.emplace_back(pos, r.lba + r.count);
    if (!r.localRanges.empty())
        ++stats_.mixedRedirects;

    r.fetchesPending = numFetches;
    if (numFetches > 0 && !firstFetchNoted_) {
        firstFetchNoted_ = true;
        if (obs::armed()) {
            obs::Tracer &t = obs::tracer();
            t.milestone(obsTrack_.id(t), "cor.first_fetch",
                        obs::now());
        }
    }
    // Second pass issues the remote fetches.
    svc.bitmap->forEachEmpty(
        r.lba, r.count, [&](sim::Lba s, sim::Lba e) {
            auto n = static_cast<std::uint32_t>(e - s);
            stats_.redirectedSectors += n;
            sim::Lba seg = s;
            svc.fetchRemote(
                seg, n,
                [this, seg,
                 n](const std::vector<std::uint64_t> &tokens) {
                    if (redirects.empty() ||
                        state_ != State::Redirecting)
                        return; // stale (cannot normally happen)
                    Redirect &cur = redirects.front();
                    std::copy(tokens.begin(), tokens.end(),
                              cur.tokens.begin() + (seg - cur.lba));
                    if (svc.stashFetched)
                        svc.stashFetched(seg, n, tokens);
                    --cur.fetchesPending;
                    advanceRedirect();
                });
        });
    advanceRedirect();
}

void
MediationCore::advanceRedirect()
{
    if (redirects.empty() || state_ != State::Redirecting)
        return;
    Redirect &r = redirects.front();

    if (!r.localInFlight && r.nextLocal < r.localRanges.size()) {
        auto [s, e] = r.localRanges[r.nextLocal];
        r.localInFlight = true;
        VmmOp op;
        op.isWrite = false;
        op.lba = s;
        op.count = static_cast<std::uint32_t>(e - s);
        op.internal = true;
        op.readDone = [this,
                       s](const std::vector<std::uint64_t> &tokens) {
            if (redirects.empty())
                return;
            Redirect &cur = redirects.front();
            std::copy(tokens.begin(), tokens.end(),
                      cur.tokens.begin() + (s - cur.lba));
            cur.localInFlight = false;
            ++cur.nextLocal;
            advanceRedirect();
        };
        startVmmOp(std::move(op));
        return;
    }

    if (r.fetchesPending == 0 && !r.localInFlight &&
        r.nextLocal == r.localRanges.size() && !r.dataPhaseStarted) {
        finishRedirectDataPhase();
    }
}

void
MediationCore::finishRedirectDataPhase()
{
    Redirect &r = redirects.front();
    r.dataPhaseStarted = true;

    if (!r.droppedWrite) {
        // Act as a virtual DMA controller: place the tokens in the
        // guest's buffers exactly where its scatter list points
        // (§3.2 step 3).
        std::uint32_t i = 0;
        for (const hw::SgEntry &e : r.guestSg) {
            for (sim::Bytes off = 0; off < e.bytes && i < r.count;
                 off += sim::kSectorSize, ++i)
                mem.write64(e.addr + off, r.tokens[i]);
            if (i >= r.count)
                break;
        }
    }
    issueDummyRestart();
}

void
MediationCore::issueDummyRestart()
{
    // Restart the blocked access as a one-sector read of the dummy
    // sector so the *device* raises the completion interrupt (§3.2
    // step 4).
    ++stats_.dummyRestarts;
    RestartMode mode = port.issueDummyRestart(redirects.front().key);
    if (mode == RestartMode::Polled) {
        state_ = State::Restarting;
        return;
    }
    onRestartComplete();
}

void
MediationCore::onRestartComplete()
{
    port.onRestartRetired(redirects.front().key);
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.asyncEnd(obsTrack_.id(t), "mediator", "redirect",
                   redirects.front().obsId, obs::now());
    }
    redirects.pop_front();

    if (!redirects.empty()) {
        // Device is idle (the dummy just completed): serve the next
        // withheld command immediately.
        state_ = State::Passthrough;
        beginRedirects();
        return;
    }

    // Hand the device back to the guest.
    port.restoreDevice();
    state_ = State::Passthrough;
    replayQueuedWrites();
}

bool
MediationCore::canStartVmmOp() const
{
    return state_ == State::Passthrough && !vmmOp &&
           redirects.empty() && queuedWrites.empty() &&
           !port.guestBusy();
}

void
MediationCore::maybeStartPending()
{
    if (!canStartVmmOp())
        return;
    if (pendingOp) {
        VmmOp op = std::move(*pendingOp);
        pendingOp.reset();
        state_ = State::VmmActive;
        startVmmOp(std::move(op));
        return;
    }
    if (quiescent() && quiesceHook)
        quiesceHook();
}

void
MediationCore::startVmmOp(VmmOp op)
{
    sim::panicIfNot(!vmmOp, "overlapping VMM ops on mediator");
    sim::panicIfNot(op.count <= bounceSectors,
                    "VMM op exceeds bounce buffer");
    op.obsId = ++obsSeq_;
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.asyncBegin(obsTrack_.id(t), "mediator",
                     op.internal ? "local_read"
                     : op.isWrite ? "vmm_write"
                                  : "vmm_read",
                     op.obsId, obs::now());
    }
    vmmOp = std::make_unique<VmmOp>(std::move(op));
    vmmOpOnDevice = true;

    if (vmmOp->isWrite)
        hw::fillTokenBuffer(mem, bounceBuffer, vmmOp->lba,
                            vmmOp->count, vmmOp->contentBase);
    // The port suppresses the device interrupt: completion is
    // detected by polling (§3.2).
    port.issueVmmCommand(vmmOp->isWrite, vmmOp->lba, vmmOp->count);
}

void
MediationCore::checkVmmOpCompletion()
{
    if (!vmmOpOnDevice)
        return;
    if (!port.vmmCommandDone())
        return;

    std::unique_ptr<VmmOp> op = std::move(vmmOp);
    vmmOpOnDevice = false;
    if (obs::armed()) {
        obs::Tracer &t = obs::tracer();
        t.asyncEnd(obsTrack_.id(t), "mediator",
                   op->internal ? "local_read"
                   : op->isWrite ? "vmm_write"
                                 : "vmm_read",
                   op->obsId, obs::now());
    }

    std::vector<std::uint64_t> tokens;
    if (!op->isWrite) {
        tokens.resize(op->count);
        for (std::uint32_t i = 0; i < op->count; ++i)
            tokens[i] = hw::bufferTokenAt(mem, bounceBuffer, i);
    }

    if (op->internal) {
        // Redirection's local segment: remain in Redirecting.
        if (op->readDone)
            op->readDone(tokens);
        return;
    }

    ++stats_.vmmOps;
    port.releaseAfterVmmOp();
    state_ = State::Passthrough;
    replayQueuedWrites();
    if (op->isWrite) {
        if (op->writeDone)
            op->writeDone();
    } else if (op->readDone) {
        op->readDone(tokens);
    }
    maybeStartPending();
}

void
MediationCore::replayQueuedWrites()
{
    // Send queued requests to the device in order (§3.2). Replaying
    // through the front-end's intercept path means a queued command
    // can itself start a new redirection, in which case the
    // remainder stays queued.
    while (!queuedWrites.empty() && state_ == State::Passthrough) {
        auto [addr, value] = queuedWrites.front();
        queuedWrites.pop_front();
        port.replayGuestWrite(addr, value);
    }
}

void
MediationCore::poll()
{
    checkVmmOpCompletion();

    if (state_ == State::Draining && !port.deviceBusy()) {
        state_ = State::Passthrough;
        beginRedirects();
        return;
    }
    if (state_ == State::Restarting && port.restartDone()) {
        onRestartComplete();
        return;
    }
    maybeStartPending();
}

bool
MediationCore::vmmWrite(sim::Lba lba, std::uint32_t count,
                        std::uint64_t content_base,
                        std::function<void()> done)
{
    VmmOp op;
    op.isWrite = true;
    op.lba = lba;
    op.count = count;
    op.contentBase = content_base;
    op.writeDone = std::move(done);
    if (canStartVmmOp()) {
        state_ = State::VmmActive;
        startVmmOp(std::move(op));
        return true;
    }
    if (!pendingOp) {
        pendingOp = std::make_unique<VmmOp>(std::move(op));
        return true;
    }
    return false;
}

bool
MediationCore::vmmRead(
    sim::Lba lba, std::uint32_t count,
    std::function<void(const std::vector<std::uint64_t> &)> done)
{
    VmmOp op;
    op.isWrite = false;
    op.lba = lba;
    op.count = count;
    op.readDone = std::move(done);
    if (canStartVmmOp()) {
        state_ = State::VmmActive;
        startVmmOp(std::move(op));
        return true;
    }
    if (!pendingOp) {
        pendingOp = std::make_unique<VmmOp>(std::move(op));
        return true;
    }
    return false;
}

bool
MediationCore::vmmOpActive() const
{
    return vmmOp != nullptr || pendingOp != nullptr;
}

bool
MediationCore::quiescent() const
{
    return state_ == State::Passthrough && !vmmOp && !pendingOp &&
           redirects.empty() && queuedWrites.empty() &&
           !port.guestBusy();
}

void
MediationCore::warmDummy()
{
    // Pull the dummy sector into the drive cache so redirection
    // restarts are cheap from the first use.
    VmmOp op;
    op.isWrite = false;
    op.lba = svc.dummyLba;
    op.count = 1;
    op.readDone = [](const std::vector<std::uint64_t> &) {};
    state_ = State::VmmActive;
    startVmmOp(std::move(op));
}

void
MediationCore::reset()
{
    // Drop all in-flight mediation state; the machine is going down.
    queuedWrites.clear();
    redirects.clear();
    vmmOp.reset();
    pendingOp.reset();
    vmmOpOnDevice = false;
    state_ = State::Passthrough;
}

} // namespace bmcast
