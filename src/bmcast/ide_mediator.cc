#include "bmcast/ide_mediator.hh"

#include <algorithm>

#include "hw/dma.hh"
#include "simcore/logging.hh"

namespace bmcast {

using namespace hw::ide;
using hw::IoSpace;

IdeMediator::IdeMediator(sim::EventQueue &eq, std::string name,
                         hw::IoBus &bus_, hw::PhysMem &mem_,
                         hw::MemArena &vmm_arena,
                         MediatorServices services)
    : sim::SimObject(eq, std::move(name)),
      bus(bus_), vmmView(bus_, /*guestContext=*/false), mem(mem_),
      vmmPrd(vmm_arena.alloc(64 * kPrdEntrySize, 64)),
      vmmBuffer(vmm_arena.alloc(
          sim::Bytes(kVmmBufferSectors) * sim::kSectorSize, 4096)),
      dummyPrd(vmm_arena.alloc(kPrdEntrySize, 64)),
      dummyBuffer(vmm_arena.alloc(sim::kSectorSize, 512)),
      core(this->name(), mem_, *this, std::move(services), vmmBuffer,
           kVmmBufferSectors)
{
    // The dummy PRD never changes: one sector into the dummy buffer.
    mem.write32(dummyPrd, static_cast<std::uint32_t>(dummyBuffer));
    mem.write16(dummyPrd + 4, sim::kSectorSize);
    mem.write16(dummyPrd + 6, kPrdEot);

    core.setQuiesceHook([this]() { notifyQuiescent(); });
}

void
IdeMediator::install()
{
    sim::panicIfNot(!installed, "mediator installed twice");
    bus.intercept(IoSpace::Pio, kPioBase, kPioSize, this);
    bus.intercept(IoSpace::Pio, kCtrlPort, 1, this);
    bus.intercept(IoSpace::Pio, kBmBase, kBmSize, this);
    installed = true;
    core.warmDummy();
}

void
IdeMediator::uninstall()
{
    sim::panicIfNot(quiescent(),
                    "de-virtualizing a non-quiescent IDE mediator");
    bus.removeIntercept(IoSpace::Pio, kPioBase, kPioSize);
    bus.removeIntercept(IoSpace::Pio, kCtrlPort, 1);
    bus.removeIntercept(IoSpace::Pio, kBmBase, kBmSize);
    installed = false;
}

void
IdeMediator::powerOff()
{
    if (!installed)
        return;
    bus.removeIntercept(IoSpace::Pio, kPioBase, kPioSize);
    bus.removeIntercept(IoSpace::Pio, kCtrlPort, 1);
    bus.removeIntercept(IoSpace::Pio, kBmBase, kBmSize);
    installed = false;
    core.reset();
    guestCmdActive = false;
}

sim::Lba
IdeMediator::shadowLba(bool ext) const
{
    if (ext) {
        return (sim::Lba(sh.lbaHigh[1]) << 40) |
               (sim::Lba(sh.lbaMid[1]) << 32) |
               (sim::Lba(sh.lbaLow[1]) << 24) |
               (sim::Lba(sh.lbaHigh[0]) << 16) |
               (sim::Lba(sh.lbaMid[0]) << 8) | sim::Lba(sh.lbaLow[0]);
    }
    return (sim::Lba(sh.device & 0x0F) << 24) |
           (sim::Lba(sh.lbaHigh[0]) << 16) |
           (sim::Lba(sh.lbaMid[0]) << 8) | sim::Lba(sh.lbaLow[0]);
}

std::uint32_t
IdeMediator::shadowCount(bool ext) const
{
    if (ext) {
        std::uint32_t c = (std::uint32_t(sh.sectorCount[1]) << 8) |
                          sh.sectorCount[0];
        return c == 0 ? 65536u : c;
    }
    std::uint32_t c = sh.sectorCount[0];
    return c == 0 ? 256u : c;
}

bool
IdeMediator::interceptWrite(sim::Addr addr, std::uint64_t value,
                            unsigned size)
{
    (void)size;

    if (core.state() != MediationCore::State::Passthrough) {
        // The device is owned by a redirection or a VMM command:
        // queue the guest's register writes for later replay (§3.2
        // I/O multiplexing).
        core.queueGuestWrite(addr, value);
        return true;
    }

    auto v8 = static_cast<std::uint8_t>(value);
    if (addr >= kPioBase && addr < kPioBase + kPioSize) {
        switch (addr - kPioBase) {
          case kSectorCount:
            sh.sectorCount[1] = sh.sectorCount[0];
            sh.sectorCount[0] = v8;
            return false;
          case kLbaLow:
            sh.lbaLow[1] = sh.lbaLow[0];
            sh.lbaLow[0] = v8;
            return false;
          case kLbaMid:
            sh.lbaMid[1] = sh.lbaMid[0];
            sh.lbaMid[0] = v8;
            return false;
          case kLbaHigh:
            sh.lbaHigh[1] = sh.lbaHigh[0];
            sh.lbaHigh[0] = v8;
            return false;
          case kDevice:
            sh.device = v8;
            return false;
          case kCmdStatus:
            // onGuestCommand() decides whether the command reaches
            // the device (passthrough) or is withheld (redirection /
            // reserved-region conversion).
            return !onGuestCommand(v8);
          default:
            return false;
        }
    }
    if (addr == kCtrlPort) {
        sh.devCtrl = v8;
        return false;
    }
    if (addr >= kBmBase && addr < kBmBase + kBmSize) {
        switch (addr - kBmBase) {
          case kBmCommand:
            sh.bmCommand = v8;
            return false;
          case kBmPrdtAddr:
            sh.bmPrdt = static_cast<std::uint32_t>(value);
            return false;
          default:
            return false;
        }
    }
    return false;
}

bool
IdeMediator::interceptRead(sim::Addr addr, unsigned size,
                           std::uint64_t &value)
{
    (void)size;
    bool is_status = addr == kPioBase + kCmdStatus;
    bool is_alt = addr == kCtrlPort;
    bool is_bm_status = addr == kBmBase + kBmStatus;

    if (core.state() == MediationCore::State::Redirecting) {
        // Emulate "busy" while we serve the read (§3.2: "device
        // mediators emulate the status information so that the guest
        // OS can determine that the device is busy").
        if (is_status || is_alt) {
            value = kStatusBsy;
            return true;
        }
        if (is_bm_status) {
            value = kBmStActive;
            return true;
        }
        return false;
    }

    if (core.state() == MediationCore::State::VmmActive) {
        // Emulate "idle" so the guest proceeds to issue its request,
        // which we queue (§3.2: "emulate the status of the device as
        // if the device is not busy").
        if (is_status || is_alt) {
            value = kStatusDrdy;
            return true;
        }
        if (is_bm_status) {
            value = 0;
            return true;
        }
        return false;
    }

    // Passthrough: observe the guest's status read to learn when its
    // command completed (interpretation), performing the read on its
    // behalf so INTRQ ack semantics are preserved exactly once.
    if (is_status) {
        value = vmmView.read(IoSpace::Pio, addr, 1);
        if (guestCmdActive && !(value & kStatusBsy)) {
            guestCmdActive = false;
            // The device just quiesced: inject a waiting VMM
            // command before the guest issues its next one.
            core.maybeStartPending();
        }
        return true;
    }
    return false;
}

bool
IdeMediator::onGuestCommand(std::uint8_t cmd)
{
    if (!isDmaCommand(cmd)) {
        // FLUSH/IDENTIFY and friends pass through untouched.
        guestCmdActive = true;
        return true;
    }

    bool ext = isExtCommand(cmd);
    sim::Lba lba = shadowLba(ext);
    std::uint32_t count = shadowCount(ext);

    bool forward;
    if (isWriteCommand(cmd)) {
        forward = core.onGuestWrite(0, lba, count);
    } else {
        forward = core.onGuestRead(0, lba, count, [this]() {
            return parseGuestPrdt(sh.bmPrdt);
        });
    }
    if (forward) {
        guestCmdActive = true;
        return true;
    }
    core.beginRedirects();
    return false;
}

void
IdeMediator::programTaskFile(sim::Lba lba, std::uint32_t count,
                             std::uint8_t cmd, sim::Addr prd,
                             std::uint8_t bm_dir)
{
    vmmView.write(IoSpace::Pio, kBmBase + kBmPrdtAddr,
                  static_cast<std::uint32_t>(prd), 4);
    vmmView.write(IoSpace::Pio, kBmBase + kBmCommand, bm_dir, 1);

    // LBA48 task file: high bytes first (they land in the "previous"
    // register slots), then low bytes.
    vmmView.write(IoSpace::Pio, kPioBase + kSectorCount,
                  (count >> 8) & 0xFF, 1);
    vmmView.write(IoSpace::Pio, kPioBase + kSectorCount, count & 0xFF,
                  1);
    vmmView.write(IoSpace::Pio, kPioBase + kLbaLow, (lba >> 24) & 0xFF,
                  1);
    vmmView.write(IoSpace::Pio, kPioBase + kLbaMid, (lba >> 32) & 0xFF,
                  1);
    vmmView.write(IoSpace::Pio, kPioBase + kLbaHigh,
                  (lba >> 40) & 0xFF, 1);
    vmmView.write(IoSpace::Pio, kPioBase + kLbaLow, lba & 0xFF, 1);
    vmmView.write(IoSpace::Pio, kPioBase + kLbaMid, (lba >> 8) & 0xFF,
                  1);
    vmmView.write(IoSpace::Pio, kPioBase + kLbaHigh,
                  (lba >> 16) & 0xFF, 1);
    vmmView.write(IoSpace::Pio, kPioBase + kDevice, kDeviceLbaMode, 1);
    vmmView.write(IoSpace::Pio, kPioBase + kCmdStatus, cmd, 1);
    vmmView.write(IoSpace::Pio, kBmBase + kBmCommand,
                  bm_dir | kBmCmdStart, 1);
}

RestartMode
IdeMediator::issueDummyRestart(std::uint32_t key)
{
    (void)key;
    vmmView.write(IoSpace::Pio, kCtrlPort, sh.devCtrl, 1);
    programTaskFile(core.services().dummyLba, 1, kCmdReadDmaExt,
                    dummyPrd, kBmCmdToMemory);
    guestCmdActive = true; // until the guest acks the interrupt
    return RestartMode::FireAndForget;
}

void
IdeMediator::issueVmmCommand(bool is_write, sim::Lba lba,
                             std::uint32_t count)
{
    // Suppress the device interrupt: completion is detected by
    // polling (§3.2: "device mediators temporarily disable
    // interrupts and detect completion of requests by polling").
    vmmView.write(IoSpace::Pio, kCtrlPort, sh.devCtrl | kCtrlNIen, 1);

    // Build the VMM PRD list (64 KiB elements).
    sim::Bytes total = sim::Bytes(count) * sim::kSectorSize;
    sim::Addr entry = vmmPrd;
    sim::Addr buf = vmmBuffer;
    while (total > 0) {
        sim::Bytes chunk = std::min<sim::Bytes>(total, 65536);
        mem.write32(entry, static_cast<std::uint32_t>(buf));
        mem.write16(entry + 4,
                    static_cast<std::uint16_t>(chunk == 65536 ? 0
                                                              : chunk));
        total -= chunk;
        buf += chunk;
        mem.write16(entry + 6, total == 0 ? kPrdEot : 0);
        entry += kPrdEntrySize;
    }

    programTaskFile(lba, count,
                    is_write ? kCmdWriteDmaExt : kCmdReadDmaExt,
                    vmmPrd, is_write ? 0 : kBmCmdToMemory);
}

bool
IdeMediator::vmmCommandDone()
{
    auto st = static_cast<std::uint8_t>(
        vmmView.read(IoSpace::Pio, kCtrlPort, 1));
    if (st & kStatusBsy)
        return false;
    auto bm = static_cast<std::uint8_t>(
        vmmView.read(IoSpace::Pio, kBmBase + kBmStatus, 1));
    if (!(bm & kBmStIrq))
        return false;

    // Stop the engine, clear the interrupt, restore the guest's
    // interrupt-enable intent.
    vmmView.write(IoSpace::Pio, kBmBase + kBmCommand, 0, 1);
    vmmView.write(IoSpace::Pio, kBmBase + kBmStatus,
                  kBmStIrq | kBmStError, 1);
    vmmView.write(IoSpace::Pio, kCtrlPort, sh.devCtrl, 1);
    return true;
}

void
IdeMediator::replayGuestWrite(sim::Addr addr, std::uint64_t value)
{
    if (!interceptWrite(addr, value, 1))
        vmmView.write(IoSpace::Pio, addr, value, 1);
}

std::vector<hw::SgEntry>
IdeMediator::parseGuestPrdt(std::uint32_t addr) const
{
    std::vector<hw::SgEntry> sg;
    sim::Addr entry = addr;
    for (int i = 0; i < 512; ++i) {
        std::uint32_t dba = mem.read32(entry);
        std::uint16_t count = mem.read16(entry + 4);
        std::uint16_t flags = mem.read16(entry + 6);
        sg.push_back(hw::SgEntry{dba, count == 0 ? 65536u : count});
        if (flags & kPrdEot)
            return sg;
        entry += kPrdEntrySize;
    }
    sim::panic("guest PRD table without EOT at ", addr);
}

} // namespace bmcast
