/**
 * @file
 * BMcast VMM parameters. Paper-derived values are annotated with
 * their source section.
 */

#ifndef BMCAST_PARAMS_HH
#define BMCAST_PARAMS_HH

#include <functional>

#include "netmed/types.hh"
#include "simcore/types.hh"

namespace bmcast {

/**
 * Deployment-bandwidth token gate: gate(bytes, now) books a fetch of
 * `bytes` against a shared budget and returns the earliest tick the
 * fetch may be issued (>= now). Structurally identical to
 * cloud::RateGate so a cloud::CongestionController lane can be bound
 * here without the data plane linking the control plane; a default-
 * constructed (empty) gate means unshaped — the historical behavior.
 */
using RateGate = std::function<sim::Tick(sim::Bytes, sim::Tick)>;

/** Background-copy moderation (paper §3.3): three knobs. */
struct ModerationParams
{
    /**
     * If guest disk I/O frequency (ops/s over the trailing window)
     * exceeds this threshold, the writer suspends.
     */
    double guestIoFreqThreshold = 24.0;
    /** Interval between background writes when the guest is quiet. */
    sim::Tick vmmWriteInterval = 12 * sim::kMs;
    /** Sleep when the guest is busy. */
    sim::Tick vmmWriteSuspendInterval = 200 * sim::kMs;
    /** Window over which guest I/O frequency is measured. */
    sim::Tick guestIoWindow = 1 * sim::kSec;
};

/** VMM configuration. */
struct VmmParams
{
    /** Network boot time of the minimized VMM (paper §5.1: 5 s,
     *  6x faster than KVM's 30 s host boot). */
    sim::Tick bootTime = 5 * sim::kSec;

    /** Memory reserved from the guest via the BIOS map (§4.3:
     *  128 MB, not yet released after de-virtualization). */
    sim::Bytes reservedBytes = 128 * sim::kMiB;
    /** Where the reservation sits in the physical map. */
    sim::Addr reservedBase = 0x78000000; // 2 GiB - 128 MiB

    /** Preemption-timer polling interval (§4.1: estimated from
     *  recent RTT and I/O latency; this is the default). */
    sim::Tick pollInterval = 100 * sim::kUs;
    /** CPU consumed by one poll pass (drivers + mediators). */
    sim::Tick pollCost = 4 * sim::kUs;

    /** Sectors per background-copy block (Fig. 14 uses 1024 KB). */
    std::uint32_t copyBlockSectors = 2048;

    /**
     * When non-zero, background-copy fetches never cross a multiple
     * of this alignment (the store tier sets it to the chunk size so
     * every fetch maps to exactly one chunk).  Zero = legacy
     * unaligned blocks.
     */
    std::uint32_t copyFetchAlignSectors = 0;

    /** Depth of the retriever->writer FIFO (blocks). */
    std::size_t copyFifoDepth = 8;

    ModerationParams moderation;

    /**
     * Deployment-phase cost profile inputs (paper §5.2): TLB miss
     * rate up to 5x, miss latency 2x under nested paging; ~6% total
     * CPU (5% deployment threads + 1% VMM core).
     */
    double tlbMissRateMult = 5.0;
    double tlbMissLatencyMult = 2.0;
    double deployCpuWork = 0.05;
    double coreCpuWork = 0.01;
    /** BMcast's own cache footprint is small. */
    double cachePollution = 0.01;
    /** RDMA latency overhead while deploying (§5.5.3: <1%). */
    double rdmaOverheadDeploy = 0.008;

    /** Reserved on-disk region (block bitmap + dummy sector) size. */
    std::uint32_t reservedDiskSectors = 2048;

    /** @name Shared-NIC deployment (paper §6, netmed tier)
     * When sharedNic is set the VMM initializes no dedicated
     * management NIC: it mediates the guest's NIC instead and rides
     * its deployment traffic through the netmed core.
     */
    /// @{
    bool sharedNic = false;
    netmed::MedMode sharedNicMode = netmed::MedMode::Trap;
    /** Exitless doorbell page (0 = allocate from the VMM arena). */
    sim::Addr sharedNicDoorbell = 0;
    /** Dedicated netmed service interval — the sidecore of the
     *  exitless path (0 = ride the preemption-timer poll loop). */
    sim::Tick netmedPollInterval = 0;
    /** QoS contract for the guest's slot on the shared NIC. */
    netmed::GuestQos sharedNicQos;
    /// @}

    /** AoE target (shelf/slot) holding this instance's image. */
    std::uint16_t aoeMajor = 0;
    std::uint8_t aoeMinor = 0;

    /**
     * Per-request AoE retry budget before the VMM's error handler
     * runs (failover / degradation); negative = retry forever.
     * Forwarded to InitiatorParams::maxRetries.
     */
    int aoeMaxRetries = 24;
    /** Floor for the AoE retransmission timeout. */
    sim::Tick aoeMinTimeout = 80 * sim::kMs;
};

} // namespace bmcast

#endif // BMCAST_PARAMS_HH
