/**
 * @file
 * Figures 12 & 13: raw InfiniBand RDMA throughput and latency
 * (paper §5.5.3 — ib_rdma_bw / ib_rdma_lat, 64 KB x 1000).
 *
 * Throughput is identical across systems (the HCA's command queuing
 * hides per-op overhead at saturation); latency exposes KVM/Direct's
 * IOMMU + nested-paging cost (+23.6%) while BMcast adds <1% during
 * deployment and nothing after.
 */

#include "baselines/kvm.hh"
#include "bench/harness.hh"
#include "workloads/ib_perftest.hh"

using namespace bench;

namespace {

struct Res
{
    double bw = 0;
    double lat = 0;
};

Res
run(Testbed &tb)
{
    workloads::IbPerftest pt(tb.eq, "perftest", tb.machine(0),
                             tb.machine(1));
    Res out;
    bool done = false;
    pt.runBandwidth([&](workloads::IbPerftestResult r) {
        out.bw = r.mbPerSec;
        done = true;
    });
    tb.runUntil(tb.eq.now() + 400 * sim::kSec, [&]() { return done; });
    done = false;
    pt.runLatency([&](workloads::IbPerftestResult r) {
        out.lat = r.meanLatencyUs;
        done = true;
    });
    tb.runUntil(tb.eq.now() + 400 * sim::kSec, [&]() { return done; });
    return out;
}

} // namespace

int
main()
{
    figureHeader("Figures 12/13: InfiniBand RDMA 64 KB x 1000 — "
                 "throughput (MB/s) and latency (us)");
    std::vector<std::pair<std::string, Res>> rows;

    {
        Testbed tb(2);
        rows.emplace_back("Baremetal", run(tb));
    }
    {
        Testbed tb(2);
        std::vector<std::unique_ptr<bmcast::BmcastDeployer>> deps;
        unsigned up = 0;
        for (unsigned i = 0; i < 2; ++i) {
            deps.push_back(std::make_unique<bmcast::BmcastDeployer>(
                tb.eq, "dep" + std::to_string(i), tb.machine(i),
                tb.guest(i), kServerMac, tb.imageSectors,
                paperVmmParams(), false));
            deps.back()->run([&up]() { ++up; });
        }
        tb.runUntil(2000 * sim::kSec, [&]() { return up == 2; });
        rows.emplace_back("Deploy", run(tb));
    }
    {
        sim::Lba small = (2 * sim::kGiB) / sim::kSectorSize;
        Testbed tb(2, hw::StorageKind::Ahci, small);
        std::vector<std::unique_ptr<bmcast::BmcastDeployer>> deps;
        bmcast::VmmParams fast = paperVmmParams();
        fast.moderation.vmmWriteInterval = 2 * sim::kMs;
        unsigned done_n = 0;
        for (unsigned i = 0; i < 2; ++i) {
            deps.push_back(std::make_unique<bmcast::BmcastDeployer>(
                tb.eq, "dep" + std::to_string(i), tb.machine(i),
                tb.guest(i), kServerMac, small, fast, false));
            deps.back()->run([]() {});
        }
        tb.runUntil(4000 * sim::kSec, [&]() {
            done_n = 0;
            for (auto &d : deps)
                if (d->bareMetalReached())
                    ++done_n;
            return done_n == 2;
        });
        rows.emplace_back("Devirt", run(tb));
    }
    {
        Testbed tb(2);
        baselines::KvmConfig cfg;
        for (unsigned i = 0; i < 2; ++i) {
            baselines::KvmVmm kvm(tb.eq, "kvm" + std::to_string(i),
                                  tb.machine(i), cfg, kServerMac);
            tb.machine(i).setProfile(kvm.profile());
        }
        rows.emplace_back("KVM/Direct", run(tb));
    }

    Res base = rows[0].second;
    sim::Table t({"System", "Throughput MB/s", "vs bare",
                  "Latency us", "vs bare"});
    for (auto &[name, r] : rows)
        t.addRow({name, sim::Table::num(r.bw, 0),
                  sim::Table::pct(r.bw, base.bw),
                  sim::Table::num(r.lat, 2),
                  sim::Table::pct(r.lat, base.lat)});
    t.print(std::cout);
    std::cout << "\nPaper: throughput identical everywhere "
                 "(saturated); latency KVM/Direct +23.6%, BMcast "
                 "Deploy <1%, Devirt 0%.\n";
    return 0;
}
