#include "migrate/migration.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace migrate {

std::vector<DirtyRun>
diffDisks(const hw::DiskStore &src, const hw::DiskStore &ref,
          sim::Lba start, std::uint64_t count)
{
    // Both walks tile [start, start+count) contiguously (gaps appear
    // with base 0), so a merge walk over run boundaries finds every
    // maximal differing segment.
    struct Run
    {
        sim::Lba lba;
        std::uint64_t count;
        std::uint64_t base;
    };
    std::vector<Run> a, b;
    src.forEachBase(start, count,
                    [&a](sim::Lba l, std::uint64_t c,
                         std::uint64_t bs) { a.push_back({l, c, bs}); });
    ref.forEachBase(start, count,
                    [&b](sim::Lba l, std::uint64_t c,
                         std::uint64_t bs) { b.push_back({l, c, bs}); });

    std::vector<DirtyRun> out;
    std::size_t i = 0, j = 0;
    sim::Lba pos = start;
    const sim::Lba end = start + count;
    while (pos < end) {
        while (i < a.size() && a[i].lba + a[i].count <= pos)
            ++i;
        while (j < b.size() && b[j].lba + b[j].count <= pos)
            ++j;
        sim::panicIfNot(i < a.size() && j < b.size(),
                        "diffDisks: walks must tile the range");
        sim::Lba seg_end = std::min(a[i].lba + a[i].count,
                                    b[j].lba + b[j].count);
        seg_end = std::min(seg_end, end);
        if (a[i].base != b[j].base) {
            if (!out.empty() &&
                out.back().lba + out.back().count == pos &&
                out.back().base == a[i].base) {
                out.back().count += seg_end - pos;
            } else {
                out.push_back({pos, seg_end - pos, a[i].base});
            }
        }
        pos = seg_end;
    }
    return out;
}

MigrationManager::MigrationManager(sim::EventQueue &eq,
                                   std::string name,
                                   MigrateParams params,
                                   sim::Lba image_sectors)
    : sim::SimObject(eq, std::move(name)), prm_(params),
      tracker_(image_sectors)
{
}

void
MigrationManager::seedDirty(const std::vector<DirtyRun> &runs)
{
    for (const DirtyRun &r : runs)
        tracker_.note(r.lba, r.count);
}

void
MigrationManager::start(Hooks hooks)
{
    sim::panicIfNot(phase_ == Phase::Idle, "migration started twice");
    sim::panicIfNot(hooks.revirt && hooks.ship && hooks.handoff,
                    "migration needs revirt/ship/handoff hooks");
    hooks_ = std::move(hooks);
    phase_ = Phase::Revirt;
    stats_.startedAt = now();
    hooks_.revirt([this]() {
        if (canceled_)
            return;
        beginRound();
    });
}

void
MigrationManager::cancel()
{
    canceled_ = true;
    if (!finished()) {
        phase_ = Phase::Aborted;
        stats_.aborted = true;
        stats_.abortAtRound = stats_.rounds;
        tracker_.clear();
    }
}

sim::Bytes
MigrationManager::memRedirty(sim::Tick duration) const
{
    if (prm_.memoryDirtyBytesPerSec == 0 || duration == 0)
        return 0;
    // rate * duration overflows 64 bits for realistic rates (GiB/s)
    // times second-scale rounds; 128-bit keeps it exact — anything
    // lossy here would break cross-shard determinism.
    unsigned __int128 redirty =
        static_cast<unsigned __int128>(prm_.memoryDirtyBytesPerSec) *
        duration / sim::kSec;
    if (redirty > prm_.memoryBytes)
        return prm_.memoryBytes;
    return static_cast<sim::Bytes>(redirty);
}

void
MigrationManager::beginRound()
{
    phase_ = Phase::PreCopy;
    ++stats_.rounds;
    if (fi_ && fi_->shouldFire(sim::FaultSite::MigrateStreamDrop,
                               stats_.rounds)) {
        abort();
        return;
    }
    // Round 1 owes the whole memory working set; later rounds owe
    // the re-dirty of the previous round's flight time.
    if (stats_.rounds == 1)
        memPending_ = prm_.memoryBytes;
    const sim::Bytes disk = tracker_.dirtyBytes();
    tracker_.clear(); // writes during the round re-dirty
    const sim::Bytes ship = disk + memPending_;
    stats_.diskBytesShipped += disk;
    stats_.memoryBytesShipped += memPending_;
    stats_.bytesShipped += ship;
    const sim::Tick ship_start = now();
    if (ship == 0) {
        roundShipped(ship_start);
        return;
    }
    hooks_.ship(ship, [this, ship_start]() {
        if (canceled_)
            return;
        roundShipped(ship_start);
    });
}

void
MigrationManager::roundShipped(sim::Tick ship_start)
{
    memPending_ = memRedirty(now() - ship_start);
    const sim::Bytes remaining = tracker_.dirtyBytes() + memPending_;
    if (remaining <= prm_.stopCopyThresholdBytes) {
        stopAndCopy();
        return;
    }
    if (stats_.rounds >= prm_.maxRounds) {
        stats_.forcedStop = true;
        stopAndCopy();
        return;
    }
    beginRound();
}

void
MigrationManager::stopAndCopy()
{
    phase_ = Phase::StopAndCopy; // the guest pauses here
    stats_.pausedAt = now();
    const sim::Bytes disk = tracker_.dirtyBytes();
    tracker_.clear();
    const sim::Bytes final_bytes = disk + memPending_;
    stats_.finalBytes = final_bytes;
    stats_.diskBytesShipped += disk;
    stats_.memoryBytesShipped += memPending_;
    stats_.bytesShipped += final_bytes;
    if (fi_ && fi_->shouldFire(sim::FaultSite::MigrateStreamDrop,
                               stats_.rounds + 1)) {
        abort();
        return;
    }
    if (final_bytes == 0) {
        finalShipped();
        return;
    }
    hooks_.ship(final_bytes, [this]() {
        if (canceled_)
            return;
        finalShipped();
    });
}

void
MigrationManager::finalShipped()
{
    if (fi_ && fi_->shouldFire(sim::FaultSite::MigrateDestCrash)) {
        abort();
        return;
    }
    // The handoff budget: destination de-virtualization + resume.
    // State application (the handoff hook) runs at its end, so the
    // destination's disk snapshot sees every pre-pause write and
    // nothing later — the guest is paused throughout.
    schedule(prm_.handoffTime, [this]() {
        if (canceled_)
            return;
        hooks_.handoff([this]() {
            if (canceled_)
                return;
            phase_ = Phase::Done;
            stats_.finishedAt = now();
            stats_.downtime = stats_.finishedAt - stats_.pausedAt;
            if (hooks_.onDone)
                hooks_.onDone(stats_);
        });
    });
}

void
MigrationManager::abort()
{
    phase_ = Phase::Aborted;
    stats_.aborted = true;
    stats_.abortAtRound = stats_.rounds;
    stats_.finishedAt = now();
    tracker_.clear();
    if (hooks_.onAbort)
        hooks_.onAbort(stats_);
}

} // namespace migrate
