#include "simcore/event_queue.hh"

#include "simcore/logging.hh"

namespace sim {

EventId
EventQueue::schedule(Tick delay, Callback cb)
{
    return scheduleAt(curTick + delay, std::move(cb));
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    panicIfNot(static_cast<bool>(cb), "scheduling an empty callback");
    if (when < curTick)
        panic("scheduling into the past: ", when, " < ", curTick);
    std::uint64_t seq = nextSeq++;
    events.emplace(Key{when, seq}, std::move(cb));
    return EventId(when, seq);
}

bool
EventQueue::cancel(const EventId &id)
{
    if (!id.valid())
        return false;
    return events.erase(Key{id.when, id.seq}) > 0;
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    auto it = events.begin();
    panicIfNot(it->first.first >= curTick, "event queue went backwards");
    curTick = it->first.first;
    Callback cb = std::move(it->second);
    events.erase(it);
    ++numExecuted;
    cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!events.empty() && events.begin()->first.first <= limit) {
        step();
        ++n;
    }
    return n;
}

std::uint64_t
EventQueue::runUntil(Tick when)
{
    std::uint64_t n = run(when);
    if (when > curTick)
        curTick = when;
    return n;
}

} // namespace sim
