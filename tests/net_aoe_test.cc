/**
 * @file
 * Network substrate and AoE protocol tests: frame timing and MTU
 * semantics, protocol serialization round trips (property-swept),
 * initiator/server transfers, fragmentation, retransmission under
 * loss, and the vblade thread-pool behaviour.
 */

#include <gtest/gtest.h>

#include "aoe/initiator.hh"
#include "aoe/protocol.hh"
#include "aoe/server.hh"
#include "hw/disk_store.hh"
#include "net/l2.hh"
#include "net/network.hh"
#include "simcore/random.hh"

namespace {

TEST(Network, DeliversUnicast)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    net::Port &a = lan.attach(1);
    net::Port &b = lan.attach(2);

    int received = 0;
    b.onReceive([&](const net::Frame &f) {
        EXPECT_EQ(f.src, 1u);
        EXPECT_EQ(f.dst, 2u);
        ++received;
    });
    net::Frame f;
    f.dst = 2;
    f.payload = {1, 2, 3};
    a.send(f);
    eq.run();
    EXPECT_EQ(received, 1);
}

TEST(Network, SerializationDelayMatchesLineRate)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan", 0); // no switch latency
    net::Port &a = lan.attach(1, {1e9, 9000, 0.0});
    net::Port &b = lan.attach(2, {1e9, 9000, 0.0});

    sim::Tick arrival = 0;
    b.onReceive([&](const net::Frame &) { arrival = eq.now(); });
    net::Frame f;
    f.dst = 2;
    f.payload.assign(1000, 0);
    a.send(f);
    eq.run();
    // ~1038 wire bytes at 1 Gb/s, serialized twice (tx + rx).
    sim::Tick one_dir = sim::Tick(1038 * 8);
    EXPECT_NEAR(double(arrival), double(2 * one_dir), 100.0);
}

TEST(Network, BroadcastReachesAllButSender)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    net::Port &a = lan.attach(1);
    net::Port &b = lan.attach(2);
    net::Port &c = lan.attach(3);

    int rx = 0;
    a.onReceive([&](const net::Frame &) { FAIL(); });
    b.onReceive([&](const net::Frame &) { ++rx; });
    c.onReceive([&](const net::Frame &) { ++rx; });
    net::Frame f;
    f.dst = net::kBroadcastMac;
    a.send(f);
    eq.run();
    EXPECT_EQ(rx, 2);
}

TEST(Network, OversizeFrameDropped)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    net::Port &a = lan.attach(1, {1e9, 1500, 0.0});
    net::Port &b = lan.attach(2);
    b.onReceive([&](const net::Frame &) { FAIL(); });
    net::Frame f;
    f.dst = 2;
    f.payload.assign(2000, 0); // > MTU
    a.send(f);
    eq.run();
    EXPECT_EQ(a.framesDropped(), 1u);
}

TEST(Network, PaddingCountsTowardMtu)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    net::Port &a = lan.attach(1, {1e9, 1500, 0.0});
    lan.attach(2);
    net::Frame f;
    f.dst = 2;
    f.payload.assign(100, 0);
    f.padding = 2000; // declared elided bytes push past MTU
    a.send(f);
    eq.run();
    EXPECT_EQ(a.framesDropped(), 1u);
}

TEST(Network, LossInjectionDropsFraction)
{
    sim::EventQueue eq;
    net::Network lan(eq, "lan");
    net::Port &a = lan.attach(1, {1e9, 9000, 0.5});
    net::Port &b = lan.attach(2);
    int rx = 0;
    b.onReceive([&](const net::Frame &) { ++rx; });
    for (int i = 0; i < 400; ++i) {
        net::Frame f;
        f.dst = 2;
        a.send(f);
    }
    eq.run();
    EXPECT_GT(rx, 120);
    EXPECT_LT(rx, 280);
}

// --- AoE protocol serialization ---

class AoeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(AoeRoundTrip, SerializeParseIdentity)
{
    sim::Rng rng(GetParam());
    aoe::Message m;
    m.response = rng.chance(0.5);
    m.error = rng.chance(0.1);
    m.major = static_cast<std::uint16_t>(rng.uniformInt(0, 65535));
    m.minor = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    m.command = rng.chance(0.9) ? aoe::kCmdAta : aoe::kCmdDiscover;
    m.tag = static_cast<std::uint32_t>(rng.next());
    m.ataCmd = rng.chance(0.5) ? 0x25 : 0x35;
    m.lba = rng.next() & 0xFFFFFFFFFFFFULL;
    m.sectors = static_cast<std::uint16_t>(rng.uniformInt(0, 1024));
    m.fragOffset = static_cast<std::uint32_t>(rng.uniformInt(0, 4096));
    m.totalSectors =
        static_cast<std::uint32_t>(rng.uniformInt(1, 65536));
    auto n = rng.uniformInt(0, 17);
    for (std::uint64_t i = 0; i < n; ++i)
        m.data.push_back(rng.next());

    net::Frame f = aoe::toFrame(m, 0x99);
    EXPECT_EQ(f.padding, m.data.size() * aoe::kSectorPadding);

    auto parsed = aoe::parse(f);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->response, m.response);
    EXPECT_EQ(parsed->error, m.error);
    EXPECT_EQ(parsed->major, m.major);
    EXPECT_EQ(parsed->minor, m.minor);
    EXPECT_EQ(parsed->command, m.command);
    EXPECT_EQ(parsed->tag, m.tag);
    EXPECT_EQ(parsed->ataCmd, m.ataCmd);
    EXPECT_EQ(parsed->lba, m.lba);
    EXPECT_EQ(parsed->sectors, m.sectors);
    EXPECT_EQ(parsed->fragOffset, m.fragOffset);
    EXPECT_EQ(parsed->totalSectors, m.totalSectors);
    EXPECT_EQ(parsed->data, m.data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AoeRoundTrip,
                         ::testing::Range(1, 21));

TEST(AoeProtocol, RejectsForeignFrames)
{
    net::Frame f;
    f.etherType = 0x0800; // IPv4, not AoE
    f.payload.assign(64, 0);
    EXPECT_FALSE(aoe::parse(f).has_value());

    net::Frame short_frame;
    short_frame.etherType = aoe::kEtherType;
    short_frame.payload.assign(4, 0); // below header size
    EXPECT_FALSE(aoe::parse(short_frame).has_value());
}

TEST(AoeProtocol, SectorsPerFrame)
{
    EXPECT_EQ(aoe::sectorsPerFrame(9000), (9000u - 32) / 512);
    EXPECT_EQ(aoe::sectorsPerFrame(1500), 2u);
    EXPECT_EQ(aoe::sectorsPerFrame(100), 1u); // degenerate floor
}

// --- Initiator <-> server integration ---

struct AoeWorld
{
    explicit AoeWorld(double loss = 0.0, unsigned workers = 4)
        : lan(eq, "lan"),
          sport(lan.attach(1, {1e9, 9000, loss})),
          cport(lan.attach(2, {1e9, 9000, loss})),
          server(eq, "server", sport,
                 aoe::ServerParams{workers}),
          endpoint(cport),
          initiator(eq, "init", endpoint, 1)
    {
        server.addTarget(0, 0, kCap, kBase);
    }

    static constexpr sim::Lba kCap = 1 << 20;
    static constexpr std::uint64_t kBase = 0xBEEF000000000001ULL;

    sim::EventQueue eq;
    net::Network lan;
    net::Port &sport;
    net::Port &cport;
    aoe::AoeServer server;
    net::PortEndpoint endpoint;
    aoe::AoeInitiator initiator;
};

TEST(AoeTransfer, ReadReturnsImageTokens)
{
    AoeWorld w;
    std::vector<std::uint64_t> got;
    w.initiator.readSectors(100, 40, [&](const auto &t) { got = t; });
    w.eq.run();
    ASSERT_EQ(got.size(), 40u);
    for (std::uint32_t i = 0; i < 40; ++i)
        EXPECT_EQ(got[i], hw::sectorToken(AoeWorld::kBase, 100 + i));
}

TEST(AoeTransfer, LargeReadSplitsAndFragments)
{
    AoeWorld w;
    std::vector<std::uint64_t> got;
    // 3000 sectors > one request (2048) and many frames.
    w.initiator.readSectors(0, 3000, [&](const auto &t) { got = t; });
    w.eq.run();
    ASSERT_EQ(got.size(), 3000u);
    for (std::uint32_t i = 0; i < 3000; i += 97)
        EXPECT_EQ(got[i], hw::sectorToken(AoeWorld::kBase, i));
    EXPECT_GE(w.initiator.requestsIssued(), 2u);
}

TEST(AoeTransfer, WriteThenReadBack)
{
    AoeWorld w;
    const std::uint64_t mine = 0x7777000000000001ULL;
    bool wrote = false;
    w.initiator.writeRange(500, 300, mine, [&]() { wrote = true; });
    w.eq.run();
    ASSERT_TRUE(wrote);
    EXPECT_TRUE(w.server.findTarget(0, 0)->store.rangeHasBase(
        500, 300, mine));
    // The rest of the image is untouched.
    EXPECT_TRUE(w.server.findTarget(0, 0)->store.rangeHasBase(
        0, 500, AoeWorld::kBase));

    std::vector<std::uint64_t> got;
    w.initiator.readSectors(500, 300, [&](const auto &t) { got = t; });
    w.eq.run();
    for (std::uint32_t i = 0; i < 300; i += 17)
        EXPECT_EQ(got[i], hw::sectorToken(mine, 500 + i));
}

TEST(AoeTransfer, Discover)
{
    AoeWorld w;
    bool found = false, done = false;
    w.initiator.discover([&](bool ok) {
        found = ok;
        done = true;
    });
    w.eq.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(found);
}

TEST(AoeTransfer, OutOfRangeReadNeverCompletes)
{
    AoeWorld w;
    bool completed = false;
    w.initiator.readSectors(AoeWorld::kCap - 1, 16,
                            [&](const auto &) { completed = true; });
    // The server reports an error; the initiator keeps retrying
    // (conservative), so the read must not complete.
    w.eq.run(2 * sim::kSec);
    EXPECT_FALSE(completed);
}

class AoeLossy : public ::testing::TestWithParam<double>
{
};

TEST_P(AoeLossy, RetransmissionRecoversData)
{
    AoeWorld w(GetParam());
    std::vector<std::uint64_t> got;
    bool wrote = false;
    w.initiator.readSectors(0, 600, [&](const auto &t) { got = t; });
    w.initiator.writeRange(4096, 128, 0x5151000000000001ULL,
                           [&]() { wrote = true; });
    w.eq.run(400 * sim::kSec);
    ASSERT_EQ(got.size(), 600u);
    for (std::uint32_t i = 0; i < 600; i += 13)
        EXPECT_EQ(got[i], hw::sectorToken(AoeWorld::kBase, i));
    EXPECT_TRUE(wrote);
    if (GetParam() > 0.0) {
        EXPECT_GT(w.initiator.retransmissions(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(LossRates, AoeLossy,
                         ::testing::Values(0.0, 0.05, 0.2));

TEST(AoeServer, ThreadPoolOutperformsSingleThread)
{
    // The paper's §4.2 fix: vblade single-threaded is a bottleneck
    // under a significant volume of read requests.
    auto run_with = [](unsigned workers) {
        AoeWorld w(0.0, workers);
        unsigned done = 0;
        for (int i = 0; i < 16; ++i) {
            w.initiator.readSectors(
                sim::Lba(i) * 40000, 2048,
                [&](const auto &) { ++done; });
        }
        w.eq.run(400 * sim::kSec);
        EXPECT_EQ(done, 16u);
        return w.eq.now();
    };
    sim::Tick single = run_with(1);
    sim::Tick pooled = run_with(8);
    EXPECT_LT(pooled, single);
}

} // namespace
