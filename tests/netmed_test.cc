/**
 * @file
 * Conformance suite for the shared-NIC mediation tier (src/netmed/),
 * value-parameterized over the three mediation modes:
 *
 *  - Trap: shadow rings, every doorbell access VM-exits.
 *  - Exitless: shadow rings, doorbells via a shared-memory page, the
 *    VMM poll loop does the moving — no steady-state exits.
 *  - Passthrough: the guest owns the real rings; the VMM keeps only
 *    software taps (TX pacing, RX steering).
 *
 * Every mode must satisfy the same contract: guest traffic flows,
 * VMM (AoE) traffic demultiplexes by ether type, uninstall hands a
 * clean device back to the guest, per-guest rate limits cap
 * throughput, and one guest's flood cannot starve another past its
 * DRR weight.
 */

#include <gtest/gtest.h>

#include "aoe/initiator.hh"
#include "aoe/protocol.hh"
#include "aoe/server.hh"
#include "hw/e1000_driver.hh"
#include "hw/machine.hh"
#include "hw/nic_doorbell.hh"
#include "netmed/net_mediation_core.hh"
#include "tests/test_util.hh"

using namespace testutil;

namespace {

constexpr net::MacAddr kVg1Mac = 0x525400000021ULL;
constexpr net::MacAddr kVg2Mac = 0x525400000022ULL;
constexpr net::MacAddr kPeerMac = 0x42;

/** First virtual guest-NIC register window (no device behind it;
 *  0xFEB0_0000 is taken by the AHCI ABAR). */
constexpr sim::Addr kVirtNicBase = 0xFEC00000;

/**
 * One machine whose guest NIC is mediated by a NetMediationCore in
 * the parameterized mode, with slot 0 on the real register window
 * (catch-all MAC: the legacy single-guest shape) and any number of
 * additional guests on virtual windows. Guest drivers are ordinary
 * hw::E1000Driver instances in interrupt mode; in exitless mode they
 * attach the core-provided doorbell page after ring setup.
 */
struct NetmedWorld
{
    explicit NetmedWorld(netmed::MedMode mode)
        : mode(mode), lan(eq, "lan", 4 * sim::kUs, 42),
          sport(lan.attach(kServerMac, {1e9, 9000, 0.0})),
          server(eq, "server", sport)
    {
        server.addTarget(0, 0, 1 << 20, kImageBase);

        hw::MachineConfig mc;
        mc.name = "m";
        machine = std::make_unique<hw::Machine>(eq, mc, lan,
                                                kGuestMac, lan,
                                                kMgmtMac);
        vmmArena = std::make_unique<hw::MemArena>(0x78000000,
                                                  128 * sim::kMiB);
        core = std::make_unique<netmed::NetMediationCore>(
            eq, "netmed", machine->bus(), machine->mem(),
            machine->guestNic(), *vmmArena, mode, aoe::kEtherType);

        netmed::NetMediationCore::GuestConfig g0;
        if (mode == netmed::MedMode::Exitless) {
            g0.doorbell = vmmArena->alloc(hw::nicdb::kPageSize, 64);
            g0.intc = &machine->intc();
            g0.irqVector = hw::kGuestNicIrq;
        }
        core->addGuest(g0);
    }

    /** Add a guest on its own virtual window (before start()). */
    unsigned
    addVirtualGuest(net::MacAddr mac, netmed::GuestQos qos)
    {
        netmed::NetMediationCore::GuestConfig g;
        g.windowBase = kVirtNicBase +
                       sim::Addr(virtCfgs.size()) *
                           hw::e1000::kMmioSize;
        g.mac = mac;
        g.qos = qos;
        g.intc = &machine->intc();
        g.irqVector = 16 + unsigned(virtCfgs.size());
        if (mode == netmed::MedMode::Exitless)
            g.doorbell = vmmArena->alloc(hw::nicdb::kPageSize, 64);
        unsigned slot = core->addGuest(g);
        virtCfgs.push_back(g);
        virtSlots.push_back(slot);
        return slot;
    }

    /** Install the core, boot the guest drivers, start polling. */
    void
    start()
    {
        core->install();
        guestDrv = std::make_unique<hw::E1000Driver>(
            eq, "gdrv", hw::BusView(machine->bus(), true),
            machine->guestNic(), machine->mem(), *nextArena(),
            hw::E1000Driver::Mode::Interrupt, &machine->intc(),
            hw::kGuestNicIrq);
        if (mode == netmed::MedMode::Exitless)
            guestDrv->attachDoorbell(
                core->guestPort(0).doorbellPage());
        for (std::size_t i = 0; i < virtCfgs.size(); ++i) {
            auto d = std::make_unique<hw::E1000Driver>(
                eq, "vdrv" + std::to_string(i),
                hw::BusView(machine->bus(), true),
                virtCfgs[i].windowBase, virtCfgs[i].mac, 1500,
                machine->mem(), *nextArena(),
                hw::E1000Driver::Mode::Interrupt, &machine->intc(),
                virtCfgs[i].irqVector);
            if (mode == netmed::MedMode::Exitless)
                d->attachDoorbell(
                    core->guestPort(virtSlots[i]).doorbellPage());
            virtDrvs.push_back(std::move(d));
        }
        pollLoop();
    }

    void
    pollLoop()
    {
        core->poll();
        eq.schedule(100 * sim::kUs, [this]() { pollLoop(); });
    }

    hw::MemArena *
    nextArena()
    {
        arenas.push_back(std::make_unique<hw::MemArena>(
            32 * sim::kMiB + sim::Addr(arenas.size()) * 16 * sim::kMiB,
            16 * sim::kMiB));
        return arenas.back().get();
    }

    netmed::MedMode mode;
    sim::EventQueue eq;
    net::Network lan;
    net::Port &sport;
    aoe::AoeServer server;
    std::unique_ptr<hw::Machine> machine;
    std::unique_ptr<hw::MemArena> vmmArena;
    std::vector<std::unique_ptr<hw::MemArena>> arenas;
    std::unique_ptr<netmed::NetMediationCore> core;
    std::unique_ptr<hw::E1000Driver> guestDrv;
    std::vector<netmed::NetMediationCore::GuestConfig> virtCfgs;
    std::vector<unsigned> virtSlots;
    std::vector<std::unique_ptr<hw::E1000Driver>> virtDrvs;
};

net::Frame
testFrame(net::MacAddr dst, std::vector<std::uint8_t> payload)
{
    net::Frame f;
    f.dst = dst;
    f.etherType = 0x88B5;
    f.payload = std::move(payload);
    return f;
}

class NetmedModeTest
    : public ::testing::TestWithParam<netmed::MedMode>
{
};

TEST_P(NetmedModeTest, GuestTrafficFlows)
{
    NetmedWorld w(GetParam());
    w.start();
    net::Port &peer = w.lan.attach(kPeerMac);
    std::vector<std::uint8_t> peer_got;
    peer.onReceive(
        [&](const net::Frame &f) { peer_got = f.payload; });

    w.guestDrv->sendFrame(testFrame(kPeerMac, {1, 2, 3, 4}));
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec,
                         [&]() { return !peer_got.empty(); }));
    EXPECT_EQ(peer_got, (std::vector<std::uint8_t>{1, 2, 3, 4}));

    std::vector<std::uint8_t> guest_got;
    w.guestDrv->setRxHandler(
        [&](const net::Frame &f) { guest_got = f.payload; });
    peer.send(testFrame(kGuestMac, {9, 9, 9}));
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec,
                         [&]() { return !guest_got.empty(); }));
    EXPECT_EQ(guest_got, (std::vector<std::uint8_t>{9, 9, 9}));
    if (GetParam() == netmed::MedMode::Passthrough) {
        EXPECT_GT(w.core->stats().guestTx, 0u);
    } else {
        EXPECT_GT(w.core->stats().guestTx, 0u);
        EXPECT_GT(w.core->stats().guestRx, 0u);
        EXPECT_GT(w.core->stats().copies, 0u);
    }
}

TEST_P(NetmedModeTest, VmmTrafficDemuxesByEtherType)
{
    NetmedWorld w(GetParam());
    w.start();
    aoe::AoeInitiator init(w.eq, "aoe", *w.core, kServerMac);

    std::vector<std::uint64_t> got;
    init.readSectors(64, 32, [&](const auto &t) { got = t; });
    ASSERT_TRUE(runUntil(w.eq, 10 * sim::kSec,
                         [&]() { return !got.empty(); }));
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(got[i], hw::sectorToken(kImageBase, 64 + i));
    EXPECT_GT(w.core->stats().vmmTx, 0u);
    EXPECT_GT(w.core->stats().vmmRx, 0u);
    // Deployment traffic never lands in a guest ring.
    EXPECT_EQ(w.core->guestStats(0).rxFrames, 0u);
}

TEST_P(NetmedModeTest, UninstallDrainsAndHandsBackDevice)
{
    NetmedWorld w(GetParam());
    w.start();
    net::Port &peer = w.lan.attach(kPeerMac);
    unsigned peer_rx = 0;
    peer.onReceive([&](const net::Frame &) { ++peer_rx; });

    // Queue TX work, then uninstall before the next poll: pending
    // shadow-ring (and un-polled exitless doorbell) frames must be
    // drained through, not dropped.
    for (int i = 0; i < 4; ++i)
        w.guestDrv->sendFrame(
            testFrame(kPeerMac, {std::uint8_t(i)}));
    w.core->uninstall();
    EXPECT_FALSE(w.machine->bus().anyInterceptActive());
    if (GetParam() == netmed::MedMode::Exitless)
        w.guestDrv->detachDoorbell();
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec,
                         [&]() { return peer_rx == 4; }));

    // The guest now drives the physical NIC directly.
    w.guestDrv->sendFrame(testFrame(kPeerMac, {7, 7}));
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec,
                         [&]() { return peer_rx == 5; }));
    std::vector<std::uint8_t> guest_got;
    w.guestDrv->setRxHandler(
        [&](const net::Frame &f) { guest_got = f.payload; });
    peer.send(testFrame(kGuestMac, {5}));
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec,
                         [&]() { return !guest_got.empty(); }));
}

TEST_P(NetmedModeTest, RateLimitCapsGuestThroughput)
{
    NetmedWorld w(GetParam());
    netmed::GuestQos qos;
    qos.rateBps = 8e6; // 1 MB/s
    qos.burstBytes = 8 * sim::kKiB;
    w.core->setGuestQos(0, qos);
    w.start();
    net::Port &peer = w.lan.attach(kPeerMac);

    // Offer ~2 MB in the first instant; only ~1 MB may pass in 1 s.
    for (int i = 0; i < 2000; ++i)
        w.guestDrv->sendFrame(
            testFrame(kPeerMac,
                      std::vector<std::uint8_t>(1000, 0xAB)));
    sim::Tick deadline = w.eq.now() + 1 * sim::kSec;
    runUntil(w.eq, deadline, [&]() { return false; });

    sim::Bytes delivered = peer.bytesReceivedOnWire();
    // Budget: rate * 1 s + initial burst + one in-flight frame.
    EXPECT_LE(delivered, sim::Bytes(1e6) + qos.burstBytes + 2 * 1538);
    EXPECT_GE(delivered, sim::Bytes(3e5)); // and it makes progress
    if (GetParam() != netmed::MedMode::Passthrough)
        EXPECT_GT(w.core->stats().txThrottled, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, NetmedModeTest,
    ::testing::Values(netmed::MedMode::Trap,
                      netmed::MedMode::Exitless,
                      netmed::MedMode::Passthrough),
    [](const auto &info) {
        return std::string(netmed::medModeName(info.param));
    });

/** Shadow-ring modes only (passthrough has exactly one guest). */
class NetmedMultiGuestTest
    : public ::testing::TestWithParam<netmed::MedMode>
{
};

TEST_P(NetmedMultiGuestTest, BroadcastReachesEveryGuest)
{
    NetmedWorld w(GetParam());
    w.addVirtualGuest(kVg1Mac, netmed::GuestQos{});
    w.start();
    net::Port &peer = w.lan.attach(kPeerMac);

    unsigned g0_rx = 0, g1_rx = 0;
    w.guestDrv->setRxHandler(
        [&](const net::Frame &) { ++g0_rx; });
    w.virtDrvs[0]->setRxHandler(
        [&](const net::Frame &) { ++g1_rx; });

    peer.send(testFrame(net::kBroadcastMac, {1}));
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec, [&]() {
        return g0_rx == 1 && g1_rx == 1;
    }));

    // Unicast to the NIC's MAC falls through to the catch-all guest
    // (slot 0), not to the MAC-bound virtual guest.
    peer.send(testFrame(kGuestMac, {2}));
    ASSERT_TRUE(runUntil(w.eq, 1 * sim::kSec,
                         [&]() { return g0_rx == 2; }));
    EXPECT_EQ(g1_rx, 1u);
}

TEST_P(NetmedMultiGuestTest, FloodCannotStarveAnotherGuest)
{
    NetmedWorld w(GetParam());
    netmed::GuestQos q;
    q.weight = 1;
    w.addVirtualGuest(kVg1Mac, q); // the flooder
    w.addVirtualGuest(kVg2Mac, q); // the victim
    w.start();
    net::Port &peer = w.lan.attach(kPeerMac);
    unsigned flood_rx = 0, victim_rx = 0;
    sim::Tick flood_done = 0, victim_done = 0;
    // The shared port stamps its own MAC on egress, so tell the two
    // guests apart by payload marker, not source address.
    peer.onReceive([&](const net::Frame &f) {
        if (f.payload.empty())
            return;
        if (f.payload[0] == 0x11 && ++flood_rx == 400)
            flood_done = w.eq.now();
        if (f.payload[0] == 0x22 && ++victim_rx == 40)
            victim_done = w.eq.now();
    });

    for (int i = 0; i < 400; ++i)
        w.virtDrvs[0]->sendFrame(
            testFrame(kPeerMac,
                      std::vector<std::uint8_t>(1000, 0x11)));
    for (int i = 0; i < 40; ++i)
        w.virtDrvs[1]->sendFrame(
            testFrame(kPeerMac,
                      std::vector<std::uint8_t>(200, 0x22)));

    ASSERT_TRUE(runUntil(w.eq, 2 * sim::kSec, [&]() {
        return flood_rx == 400 && victim_rx == 40;
    }));
    // Equal weights: the small victim burst must not be trapped
    // behind the flooder's whole backlog.
    EXPECT_LT(victim_done, flood_done);
}

TEST_P(NetmedMultiGuestTest, WeightedFairSharingUnderSaturation)
{
    NetmedWorld w(GetParam());
    netmed::GuestQos q1;
    q1.weight = 1;
    netmed::GuestQos q3;
    q3.weight = 3;
    unsigned s1 = w.addVirtualGuest(kVg1Mac, q1);
    unsigned s3 = w.addVirtualGuest(kVg2Mac, q3);
    w.start();
    w.lan.attach(kPeerMac);

    for (int i = 0; i < 1000; ++i) {
        w.virtDrvs[0]->sendFrame(
            testFrame(kPeerMac,
                      std::vector<std::uint8_t>(1000, 0x11)));
        w.virtDrvs[1]->sendFrame(
            testFrame(kPeerMac,
                      std::vector<std::uint8_t>(1000, 0x22)));
    }
    // The scheduler is only exercised while both guests are
    // backlogged, so the measurement window is keyed on pump-side
    // progress of the weight-3 guest: past the startup FIFO prefix,
    // stopped before its 1000-frame backlog exhausts (the wire is the
    // slow stage here; pumping runs well ahead of delivery).
    auto pumped3 = [&]() {
        return w.core->guestStats(s3).txFrames;
    };
    ASSERT_TRUE(runUntil(w.eq, 4 * sim::kSec,
                         [&]() { return pumped3() >= 300; }));
    double b1_start =
        static_cast<double>(w.core->guestStats(s1).txWireBytes);
    double b3_start =
        static_cast<double>(w.core->guestStats(s3).txWireBytes);
    ASSERT_TRUE(runUntil(w.eq, 4 * sim::kSec,
                         [&]() { return pumped3() >= 900; }));
    double b1 = static_cast<double>(
                    w.core->guestStats(s1).txWireBytes) -
                b1_start;
    double b3 = static_cast<double>(
                    w.core->guestStats(s3).txWireBytes) -
                b3_start;
    ASSERT_GT(b1, 0.0);
    double ratio = b3 / b1;
    EXPECT_GE(ratio, 1.8) << "weight-3 guest starved";
    EXPECT_LE(ratio, 5.0) << "weight-1 guest starved";
}

INSTANTIATE_TEST_SUITE_P(
    ShadowModes, NetmedMultiGuestTest,
    ::testing::Values(netmed::MedMode::Trap,
                      netmed::MedMode::Exitless),
    [](const auto &info) {
        return std::string(netmed::medModeName(info.param));
    });

/**
 * The exitless claim, measured: after ring setup, a steady-state
 * guest traffic burst causes zero VM exits in the guest-NIC register
 * window, while trap mode exits on every doorbell.
 */
TEST(NetmedExitless, SteadyStateCausesNoNicWindowExits)
{
    auto run = [](netmed::MedMode mode) {
        NetmedWorld w(mode);
        w.start();
        net::Port &peer = w.lan.attach(kPeerMac);
        unsigned peer_rx = 0, guest_rx = 0;
        peer.onReceive([&](const net::Frame &) { ++peer_rx; });
        w.guestDrv->setRxHandler(
            [&](const net::Frame &) { ++guest_rx; });
        // Let ring setup and the first service pass settle.
        runUntil(w.eq, w.eq.now() + 10 * sim::kMs,
                 [&]() { return false; });
        std::uint64_t before = w.machine->bus().interceptedIn(
            hw::IoSpace::Mmio, hw::kGuestNicMmio,
            hw::e1000::kMmioSize);
        for (int i = 0; i < 100; ++i)
            w.guestDrv->sendFrame(
                testFrame(kPeerMac,
                          std::vector<std::uint8_t>(256, 1)));
        for (int i = 0; i < 100; ++i)
            peer.send(testFrame(
                kGuestMac, std::vector<std::uint8_t>(256, 2)));
        runUntil(w.eq, 10 * sim::kSec, [&]() {
            return peer_rx == 100 && guest_rx == 100;
        });
        EXPECT_EQ(peer_rx, 100u);
        EXPECT_EQ(guest_rx, 100u);
        return w.machine->bus().interceptedIn(
                   hw::IoSpace::Mmio, hw::kGuestNicMmio,
                   hw::e1000::kMmioSize) -
               before;
    };
    std::uint64_t trap_exits = run(netmed::MedMode::Trap);
    std::uint64_t exitless_exits = run(netmed::MedMode::Exitless);
    EXPECT_GE(trap_exits, 100u);
    EXPECT_EQ(exitless_exits, 0u)
        << "exitless data path still traps";
}

} // namespace
