#include "store/placement.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace store {

Placement::Placement(unsigned data_shards, unsigned parity_shards,
                     std::vector<net::MacAddr> servers)
    : k_(data_shards), m_(parity_shards), servers_(std::move(servers))
{
    sim::fatalIf(k_ == 0, "placement needs at least one data shard");
    sim::fatalIf(servers_.size() < k_, "placement needs >= k servers (",
                 servers_.size(), " < ", k_, ")");
    width_ = static_cast<unsigned>(
        std::min<std::size_t>(servers_.size(), k_ + m_));
}

std::vector<net::MacAddr>
Placement::stripeFor(Digest d) const
{
    std::vector<net::MacAddr> stripe;
    stripe.reserve(width_);
    std::size_t n = servers_.size();
    for (unsigned i = 0; i < width_; ++i)
        stripe.push_back(servers_[(d + i) % n]);
    return stripe;
}

std::optional<Placement::Plan>
Placement::planFor(Digest d,
                   const std::function<bool(net::MacAddr)> &live) const
{
    std::vector<net::MacAddr> stripe = stripeFor(d);
    Plan plan;
    plan.sources.reserve(k_);
    // Data members first...
    for (unsigned i = 0; i < k_ && i < stripe.size(); ++i) {
        if (live(stripe[i]))
            plan.sources.push_back(stripe[i]);
    }
    // ...then live parity fills the gaps.
    for (unsigned i = k_;
         i < stripe.size() && plan.sources.size() < k_; ++i) {
        if (live(stripe[i])) {
            plan.sources.push_back(stripe[i]);
            ++plan.parityUsed;
        }
    }
    if (plan.sources.size() < k_)
        return std::nullopt;
    return plan;
}

} // namespace store
