/**
 * @file
 * The guest-side contract of the mediation tier: one GuestPort per
 * guest, owning that guest's virtualized ring-register file and the
 * machinery to move frames between it and the core.
 *
 * The port is passive: it never touches the physical NIC. The core
 * drives it — pulling queued TX frames (peekTxWire/takeTx, so QoS can
 * inspect a frame's wire cost before committing to it), pushing RX
 * frames (deliverRx), and posting interrupt causes. The port calls
 * back into the core only through the two hooks, from intercepted
 * guest accesses.
 */

#ifndef NETMED_GUEST_PORT_HH
#define NETMED_GUEST_PORT_HH

#include <functional>

#include "net/frame.hh"
#include "netmed/ring_port.hh"

namespace netmed {

/** Core-provided callbacks, invoked from guest register accesses. */
struct GuestPortHooks
{
    /** The guest rang its TX doorbell (trap mode only). */
    std::function<void()> txKick;
    /** The guest entered its ISR (trap-mode ICR read): sync RX now. */
    std::function<void()> rxSync;
};

/** One guest's attachment point. */
class GuestPort
{
  public:
    virtual ~GuestPort() = default;

    /** Begin virtualizing the guest's register window. */
    virtual void attach(GuestPortHooks hooks) = 0;

    /** Stop virtualizing (de-virtualization or teardown). */
    virtual void detach() = 0;

    /**
     * Exitless mode: fold the doorbell page into the virtual register
     * state. @return true if the TX tail moved (work to pump).
     */
    virtual bool syncDoorbell() = 0;

    /**
     * Wire size of the next queued TX frame, 0 when none. The frame
     * stays queued until takeTx() — QoS admission happens in between.
     */
    virtual sim::Bytes peekTxWire() = 0;

    /** Dequeue the next TX frame and complete its guest descriptor. */
    virtual bool takeTx(net::Frame &frame) = 0;

    /** Copy @p frame into the guest's RX ring; false = not ready. */
    virtual bool deliverRx(const net::Frame &frame) = 0;

    /** Post TX-done / RX interrupt causes toward the guest. */
    virtual void postTxCause() = 0;
    virtual void postRxCause() = 0;

    /** Snapshot of the virtual register file (for RingPort::release). */
    virtual GuestRingState rings() const = 0;

    /** Exitless doorbell page address (0 = trapped doorbells). */
    virtual sim::Addr doorbellPage() const = 0;
};

} // namespace netmed

#endif // NETMED_GUEST_PORT_HH
