/**
 * @file
 * IDE (parallel ATA) controller model with bus-master DMA.
 *
 * Implements the primary channel's command block registers, the
 * device control register, and the BM-DMA block, faithfully enough
 * that a register-level driver and the BMcast IDE device mediator can
 * both operate it: two-deep LBA48 register FIFOs, nIEN interrupt
 * gating, INTRQ acknowledged by reading the status register, PRD
 * table parsing from physical memory.
 */

#ifndef HW_IDE_CONTROLLER_HH
#define HW_IDE_CONTROLLER_HH

#include <cstdint>

#include "hw/disk.hh"
#include "hw/dma.hh"
#include "hw/ide_regs.hh"
#include "hw/interrupts.hh"
#include "hw/io_bus.hh"
#include "hw/phys_mem.hh"
#include "simcore/sim_object.hh"

namespace hw {

/** The primary-channel IDE controller with one attached drive. */
class IdeController : public sim::SimObject
{
  public:
    IdeController(sim::EventQueue &eq, std::string name, IoBus &bus,
                  PhysMem &mem, Disk &disk, IrqLine irq);

    /** @name Register interface (invoked via the IoBus). */
    /// @{
    std::uint64_t pioRead(sim::Addr offset, unsigned size);
    void pioWrite(sim::Addr offset, std::uint64_t value, unsigned size);
    std::uint64_t ctrlRead(sim::Addr offset, unsigned size);
    void ctrlWrite(sim::Addr offset, std::uint64_t value, unsigned size);
    std::uint64_t bmRead(sim::Addr offset, unsigned size);
    void bmWrite(sim::Addr offset, std::uint64_t value, unsigned size);
    /// @}

    /** True while a command is executing. */
    bool commandActive() const { return cmdActive; }

    /** Commands executed (telemetry). */
    std::uint64_t commandsCompleted() const { return numCompleted; }

    /** Attached drive. */
    Disk &disk() { return disk_; }

  private:
    struct TaskFile
    {
        std::uint8_t sectorCount[2] = {0, 0}; //!< [0]=current, [1]=prev
        std::uint8_t lbaLow[2] = {0, 0};
        std::uint8_t lbaMid[2] = {0, 0};
        std::uint8_t lbaHigh[2] = {0, 0};
        std::uint8_t device = 0;
    };

    void commandWrite(std::uint8_t cmd);
    void maybeStartDma();
    void finishDma();
    void completeNoData();
    void raiseIrq();
    void softReset();

    sim::Lba currentLba(bool ext) const;
    std::uint32_t currentCount(bool ext) const;
    std::vector<SgEntry> parsePrdt() const;

    IoBus &bus;
    PhysMem &mem;
    Disk &disk_;
    IrqLine irq;

    TaskFile tf;
    std::uint8_t status = ide::kStatusDrdy;
    std::uint8_t devCtrl = 0;
    bool irqPending = false;

    std::uint8_t bmCommand = 0;
    std::uint8_t bmStatus = 0;
    std::uint32_t prdtAddr = 0;

    // In-flight command state.
    bool cmdPending = false; //!< command latched, awaiting BM start
    bool cmdActive = false;  //!< media operation in progress
    std::uint8_t pendingCmd = 0;
    sim::Lba activeLba = 0;
    std::uint32_t activeCount = 0;
    bool activeWrite = false;

    std::uint64_t numCompleted = 0;
};

} // namespace hw

#endif // HW_IDE_CONTROLLER_HH
