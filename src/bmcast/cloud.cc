#include "bmcast/cloud.hh"

#include "simcore/logging.hh"

namespace bmcast {

namespace {

constexpr net::MacAddr kServerMac = 0x525400FFFF01ULL;
/** Per-node chunk-export MAC: base + pool slot. */
constexpr net::MacAddr kPeerMacBase = 0xC00000000000ULL;

} // namespace

Cloud::Cloud(sim::EventQueue &eq, std::string name, CloudConfig config)
    : sim::SimObject(eq, std::move(name)),
      cfg(std::move(config)),
      lan(eq, this->name() + ".lan")
{
    // Legacy mode keeps the single image server (and its exact
    // object name) so disabled-store runs stay bit-identical.
    unsigned nservers = cfg.store.enabled ? cfg.store.seedServers : 1;
    sim::fatalIf(nservers == 0, "store mode needs seed servers");
    for (unsigned i = 0; i < nservers; ++i) {
        net::MacAddr mac = kServerMac + i;
        serverMacs_.push_back(mac);
        net::Port &p = lan.attach(mac, net::PortConfig{1e9, 9000, 0.0});
        std::string sname = this->name() + ".imgsrv";
        if (i > 0)
            sname += std::to_string(i);
        servers_.push_back(std::make_unique<aoe::AoeServer>(
            eq, sname, p, cfg.server));
    }
    if (cfg.store.enabled) {
        fabric_ = std::make_unique<store::StoreFabric>(
            eq, this->name() + ".store", cfg.store, serverMacs_);
        for (unsigned i = 0; i < nservers; ++i)
            fabric_->bindSeedServer(serverMacs_[i], servers_[i].get());
    }

    for (unsigned i = 0; i < cfg.machines; ++i) {
        hw::MachineConfig mc = cfg.machineTemplate;
        mc.name = this->name() + ".node" + std::to_string(i);
        mc.storage = cfg.storage;
        mc.seed = cfg.machineTemplate.seed + i;
        pool.push_back(std::make_unique<hw::Machine>(
            eq, mc, lan, 0xA00000000000ULL + i, lan,
            0xB00000000000ULL + i));
    }

    if (cfg.topology.racks > 0) {
        sim::fatalIf(cfg.topology.racks != cfg.racks,
                     "topology racks must match the pool striping");
        topo_ = std::make_unique<net::Topology>(cfg.topology);
        for (net::MacAddr mac : serverMacs_)
            topo_->placeAtCore(mac);
        for (unsigned i = 0; i < cfg.machines; ++i) {
            unsigned rack = rackOf(i);
            topo_->placeNode(0xA00000000000ULL + i, rack);
            topo_->placeNode(0xB00000000000ULL + i, rack);
            topo_->placeNode(kPeerMacBase + i, rack);
        }
        lan.setTopology(topo_.get());
    }
    if (cfg.congestion.enabled) {
        congestion_ = std::make_unique<cloud::CongestionController>(
            cfg.congestion, cfg.racks, topo_.get());
    }
    if (fabric_ && cfg.store.repair.enabled) {
        // Seed-pool lifecycle: the background healer that rebuilds
        // lost stripe members onto live pool members.  Its bytes
        // draw the Scavenger lane (seed servers sit at the core;
        // rack 0's lane stands in for the region).
        repair_ = std::make_unique<store::RepairScheduler>(
            eq, this->name() + ".repair", *fabric_,
            cfg.store.repair);
        if (congestion_)
            repair_->setRateGate(congestion_->scavengerGateFor(0, 0));
        repair_->start();
    }
    // The port conversion must happen here (the base is private).
    cloud::ProvisionerPort &port = *this;
    plane_ = std::make_unique<cloud::ControlPlane>(
        eq, this->name() + ".cp", cfg.controlPlane, port);
}

void
Cloud::addImage(const std::string &img_name, sim::Bytes size,
                std::uint64_t content_base)
{
    sim::fatalIf(images.count(img_name) > 0,
                 "duplicate image ", img_name);
    auto sectors = static_cast<sim::Lba>(size / sim::kSectorSize);
    std::uint16_t major = nextMajor++;
    // Every seed server exports the full image: any stripe member
    // holds the truth for any chunk (erasure coding is modeled at
    // the placement/traffic level, see store::Placement).
    for (auto &srv : servers_)
        srv->addTarget(major, 0, sectors, content_base);
    if (fabric_) {
        fabric_->catalog().addFlat(img_name, major, sectors,
                                   content_base);
        fabric_->noteImageAdded(img_name);
    }
    images[img_name] = Image{major, sectors, content_base, {}, {}};
    sim::inform(name(), ": image '", img_name, "' registered (",
                size / sim::kMiB, " MiB)");
}

void
Cloud::addOverlayImage(const std::string &img_name,
                       const std::string &base_name,
                       const std::vector<store::DeltaRun> &deltas)
{
    sim::fatalIf(images.count(img_name) > 0,
                 "duplicate image ", img_name);
    auto base = images.find(base_name);
    sim::fatalIf(base == images.end(),
                 "unknown base image ", base_name);
    sim::fatalIf(!base->second.deltas.empty(),
                 "overlay base must be a flat image");
    std::uint16_t major = nextMajor++;
    sim::Lba sectors = base->second.sectors;
    for (auto &srv : servers_) {
        aoe::AoeTarget &t = srv->addTarget(major, 0, sectors,
                                           base->second.contentBase);
        for (const auto &d : deltas)
            t.store.write(d.lba, d.count, d.base);
    }
    if (fabric_) {
        fabric_->catalog().addOverlay(img_name, major, base_name,
                                      deltas);
        fabric_->noteImageAdded(img_name);
    }
    images[img_name] = Image{major, sectors, base->second.contentBase,
                             deltas, base_name};
    sim::inform(name(), ": overlay '", img_name, "' on '", base_name,
                "' registered (", deltas.size(), " delta runs)");
}

unsigned
Cloud::freeMachines() const
{
    return plane_->freeSlots();
}

unsigned
Cloud::rackOf(unsigned slot) const
{
    return cfg.racks > 1 ? slot % cfg.racks : 0;
}

unsigned
Cloud::rackLoad(unsigned rack) const
{
    return plane_->rackLoad(rack);
}

std::uint64_t
Cloud::rackScore(unsigned rack) const
{
    return topo_ ? topo_->downlinkBacklog(rack, now()) : 0;
}

void
Cloud::setFaultInjector(sim::FaultInjector *fi)
{
    fi_ = fi;
    lan.setFaultInjector(fi);
    for (auto &srv : servers_)
        srv->setFaultInjector(fi);
    for (auto &m : pool)
        m->setFaultInjector(fi);
    if (fabric_)
        fabric_->setFaultInjector(fi);
    if (repair_)
        repair_->setFaultInjector(fi);
}

Instance *
Cloud::provision(const std::string &img_name,
                 std::function<void(Instance &)> on_serving)
{
    cloud::LeaseRequest rq;
    rq.image = img_name;
    rq.failFast = true; // the historical blocking contract
    cloud::Lease *l = submitLease(std::move(rq), std::move(on_serving));
    if (l->state() == cloud::LeaseState::Rejected)
        return nullptr; // region full
    return instanceFor(*l);
}

cloud::Lease *
Cloud::submitLease(cloud::LeaseRequest rq,
                   std::function<void(Instance &)> on_serving,
                   cloud::Lease::RejectedFn on_rejected)
{
    // Unknown images are a configuration error, caught before the
    // request ever reaches the admission queue.
    sim::fatalIf(images.find(rq.image) == images.end(),
                 "unknown image ", rq.image);
    return plane_->submit(
        std::move(rq),
        [this, cb = std::move(on_serving)](cloud::Lease &l) {
            if (cb)
                cb(*leaseInst_.at(l.id()));
        },
        std::move(on_rejected));
}

Instance *
Cloud::instanceFor(const cloud::Lease &l)
{
    auto it = leaseInst_.find(l.id());
    return it == leaseInst_.end() ? nullptr : it->second;
}

void
Cloud::startDeployment(cloud::Lease &l)
{
    auto img = images.find(l.image());
    sim::panicIfNot(img != images.end(),
                    "plane placed a lease for an unknown image");
    const unsigned slot = l.slot();

    auto inst = std::make_unique<Instance>();
    Instance *ref = inst.get();
    ref->image_ = l.image();
    ref->rack_ = l.rack();
    ref->machine_ = pool[slot].get();
    ref->lease_ = &l;
    leaseInst_[l.id()] = ref;

    guest::GuestOsParams gp = cfg.guestTemplate;
    gp.seed += slot;
    ref->guest_ = std::make_unique<guest::GuestOs>(
        eventQueue(), pool[slot]->name() + ".guest", *pool[slot], gp);

    VmmParams vp = cfg.vmm;
    // The AoE major number selects this instance's image on the
    // shared storage server.
    vp.aoeMajor = img->second.major;
    if (fabric_) {
        ref->deployer_ = std::make_unique<BmcastDeployer>(
            eventQueue(), pool[slot]->name() + ".dep", *pool[slot],
            *ref->guest_, serverMacs_, img->second.sectors, vp,
            cfg.coldFirmware);
        net::MacAddr peer_mac = kPeerMacBase + slot;
        store::DeploySpec spec;
        spec.fabric = fabric_.get();
        spec.image = l.image();
        spec.peerMac = peer_mac;
        ref->deployer_->setStoreSpec(std::move(spec));
        fabric_->attachPeer(lan, peer_mac,
                            pool[slot]->name() + ".chunksrv");
    } else {
        ref->deployer_ = std::make_unique<BmcastDeployer>(
            eventQueue(), pool[slot]->name() + ".dep", *pool[slot],
            *ref->guest_, kServerMac, img->second.sectors, vp,
            cfg.coldFirmware);
    }
    if (congestion_) {
        ref->deployer_->setRateGate(
            congestion_->gateFor(l.rack(), l.tenant()));
    }

    ref->deployer_->onBareMetal([ref]() {
        ref->state_ = Instance::State::BareMetal;
    });
    ref->deployer_->run([this, ref, id = l.id()]() {
        // Devirtualization is transparent to the guest: a fast copy
        // can reach bare metal while the guest is still booting, so
        // never downgrade the state when the boot callback arrives
        // late.
        if (ref->state_ != Instance::State::BareMetal)
            ref->state_ = Instance::State::Serving;
        plane_->noteServing(id);
    });

    leased.push_back(std::move(inst));
}

void
Cloud::release(Instance &inst)
{
    sim::fatalIf(inst.state_ == Instance::State::Released,
                 "instance released twice");
    sim::fatalIf(inst.lease_ == nullptr,
                 "releasing an instance this region does not lease");
    plane_->release(*inst.lease_);
}

void
Cloud::releaseLease(cloud::Lease &l)
{
    plane_->release(l);
}

void
Cloud::startRelease(cloud::Lease &l)
{
    Instance &inst = *leaseInst_.at(l.id());
    const unsigned slot = l.slot();

    // A release racing a live migration wins: tear the state machine
    // down first so its in-flight ship/handoff events retire without
    // touching the slots the plane is about to free.
    if (inst.mig_ && !inst.mig_->finished())
        inst.mig_->cancel();

    // Power off whatever is still running: the VMM tears down its
    // intercepts, copy engine and AoE session; the guest stops its
    // workload and unhooks its driver's interrupt handlers. Both
    // objects stay parked in the instance handle so events still in
    // the queue retire harmlessly.
    inst.deployer_->vmm().powerOff();
    inst.guest_->halt();

    // Return the node's cached chunks to the store: replica refs are
    // released and its chunk exporter goes dark (in-flight fetches
    // against it fail over to the erasure stripe).
    if (fabric_)
        fabric_->nodeReleased(kPeerMacBase + slot);

    // Fold the instance's writes into an overlay image before the
    // scrub erases them: a re-lease then redeploys base + delta.
    auto po = pendingOverlay_.find(l.id());
    if (po != pendingOverlay_.end()) {
        const Image &img = images.at(inst.image_);
        const std::string flat =
            img.deltas.empty() ? inst.image_ : img.baseName;
        hw::DiskStore flat_ref;
        flat_ref.write(0, img.sectors, img.contentBase);
        std::vector<store::DeltaRun> deltas;
        for (const auto &r :
             migrate::diffDisks(inst.machine_->disk().store(),
                                flat_ref, 0, img.sectors))
            deltas.push_back(
                {r.lba, static_cast<std::uint32_t>(r.count), r.base});
        addOverlayImage(po->second, flat, deltas);
        pendingOverlay_.erase(po);
    }

    // Scrub the local disk: tenant data must not leak to the next
    // lease, and a stale saved bitmap would make the next deployment
    // "resume" the wrong image.
    inst.machine_->disk().store().clear();
    inst.machine_->clearProfile();

    inst.machine_ = nullptr;
    inst.state_ = Instance::State::Released;
    sim::inform(name(), ": node ", slot, " released back to the pool");
    plane_->noteReleased(l.id());
}

void
Cloud::releaseToOverlay(Instance &inst, const std::string &overlay)
{
    sim::fatalIf(inst.state_ != Instance::State::BareMetal,
                 "overlay release needs a fully landed bare-metal "
                 "instance");
    sim::fatalIf(images.count(overlay) > 0,
                 "duplicate image ", overlay);
    pendingOverlay_[inst.lease_->id()] = overlay;
    plane_->release(*inst.lease_);
}

cloud::MigrateReject
Cloud::migrate(Instance &inst, unsigned dest_slot)
{
    sim::fatalIf(inst.lease_ == nullptr,
                 "migrating an instance this region does not lease");
    sim::fatalIf(inst.mig_ != nullptr,
                 "instance already migrated: the destination runs "
                 "native, with no VMM to re-arm");
    return plane_->migrate(inst.lease_->id(), dest_slot);
}

hw::DiskStore
Cloud::imageDisk(const Image &img) const
{
    hw::DiskStore ref;
    ref.write(0, img.sectors, img.contentBase);
    for (const auto &d : img.deltas)
        ref.write(d.lba, d.count, d.base);
    return ref;
}

void
Cloud::startMigration(cloud::Lease &l, unsigned dest_slot)
{
    Instance &inst = *leaseInst_.at(l.id());
    sim::fatalIf(inst.mig_ != nullptr,
                 "instance already migrated once");
    // Re-virtualization needs the source at bare metal (the VMM
    // re-arms under the running guest). A Serving-but-still-deploying
    // instance waits for its first de-virtualization to finish.
    inst.deployer_->onBareMetal(
        [this, ref = &inst, id = l.id(), dest_slot]() {
            ref->state_ = Instance::State::BareMetal;
            cloud::Lease *l2 = plane_->leaseById(id);
            if (l2->state() != cloud::LeaseState::Migrating)
                return; // released while waiting for bare metal
            beginMigration(*l2, dest_slot);
        });
}

void
Cloud::beginMigration(cloud::Lease &l, unsigned dest_slot)
{
    Instance *ref = leaseInst_.at(l.id());
    const unsigned src_slot = l.slot();
    const Image &img = images.at(ref->image_);
    const sim::Lba sectors = img.sectors;

    ref->mig_ = std::make_unique<migrate::MigrationManager>(
        eventQueue(), pool[src_slot]->name() + ".mig", cfg.migrate,
        sectors);
    migrate::MigrationManager *mig = ref->mig_.get();
    if (fi_)
        mig->setFaultInjector(fi_);

    // Blocks the destination cannot reconstruct from the image store
    // must stream: seed the dirty set with the source disk's
    // divergence from its deployed image.
    mig->seedDirty(migrate::diffDisks(pool[src_slot]->disk().store(),
                                      imageDisk(img), 0, sectors));

    migrate::MigrationManager::Hooks hooks;

    hooks.revirt = [this, ref, mig](std::function<void()> done) {
        Vmm &vmm = ref->deployer_->vmm();
        vmm.setGuestWriteHook(
            [mig](sim::Lba lba, std::uint32_t count) {
                mig->noteGuestWrite(lba, count);
            });
        vmm.revirtualize(
            [g = ref->guest_.get()]() { return g->blk().idle(); },
            [ref, done = std::move(done)]() {
                // Mediated again: the instance is virtualized for
                // the duration of the pre-copy.
                ref->state_ = Instance::State::Serving;
                done();
            });
    };

    const net::MacAddr src_mac = 0xA00000000000ULL + src_slot;
    const net::MacAddr dst_mac = 0xA00000000000ULL + dest_slot;
    hooks.ship = [this, src_mac, dst_mac, src_rack = rackOf(src_slot),
                  tenant = l.tenant()](sim::Bytes bytes,
                                       std::function<void()> done) {
        // Migration streams share the deployment fabric: the same
        // congestion budget shapes the departure and the same
        // aggregation links carry (and bill) the bytes.
        sim::Tick depart = now();
        if (congestion_)
            depart = congestion_->admit(src_rack, tenant, bytes,
                                        depart);
        sim::Tick arrive = depart + bytes * 8; // 1 Gbps wire
        if (topo_)
            arrive += topo_->charge(src_mac, dst_mac, bytes, depart);
        schedule(arrive - now(), std::move(done));
    };

    hooks.handoff = [this, ref, src_slot, dest_slot,
                     sectors](std::function<void()> done) {
        quiesceThenHandoff(ref, src_slot, dest_slot, sectors,
                           std::move(done));
    };

    hooks.onDone = [this, id = l.id()](const migrate::MigrateStats &) {
        plane_->noteMigrated(id);
    };

    hooks.onAbort = [this, ref, dest_slot,
                     id = l.id()](const migrate::MigrateStats &) {
        // Roll back: drop the intercept hook, de-virtualize the
        // source again (the guest never stopped — zero lost writes)
        // and scrub whatever partial stream reached the destination.
        Vmm &vmm = ref->deployer_->vmm();
        vmm.setGuestWriteHook({});
        vmm.devirtualizeAgain([this, ref, dest_slot, id]() {
            ref->state_ = Instance::State::BareMetal;
            pool[dest_slot]->disk().store().clear();
            plane_->noteMigrationFailed(id);
        });
    };

    mig->start(std::move(hooks));
}

void
Cloud::quiesceThenHandoff(Instance *ref, unsigned src_slot,
                          unsigned dest_slot, sim::Lba sectors,
                          std::function<void()> done)
{
    // A release (or abort) racing the pause wins: nothing to apply.
    if (!ref->mig_ || ref->mig_->finished())
        return;
    // The pause stopped the vCPUs, not the controller: commands
    // queued before the pause keep completing against the source
    // disk, and copying under them would lose their writes on the
    // destination. Drain first; the drain tail is honest downtime.
    if (!ref->guest_->blk().idle()) {
        schedule(500 * sim::kUs,
                 [this, ref, src_slot, dest_slot, sectors,
                  done = std::move(done)]() mutable {
                     quiesceThenHandoff(ref, src_slot, dest_slot,
                                        sectors, std::move(done));
                 });
        return;
    }

    // Apply state: the destination disk becomes a byte-identical
    // replica of the source at the pause point (the guest has been
    // paused — and now drained — for the whole handoff window).
    hw::DiskStore &src = pool[src_slot]->disk().store();
    hw::DiskStore &dst = pool[dest_slot]->disk().store();
    dst.clear();
    src.forEachBase(0, sectors,
                    [&dst](sim::Lba lba, std::uint64_t count,
                           std::uint64_t base) {
                        if (base != 0)
                            dst.write(lba, count, base);
                    });

    // Resume the guest on the destination, native: the handoff
    // budget covered its de-virtualization, so it comes up directly
    // on bare metal.
    guest::GuestOsParams gp = cfg.guestTemplate;
    gp.seed += dest_slot;
    auto dguest = std::make_unique<guest::GuestOs>(
        eventQueue(), pool[dest_slot]->name() + ".guest",
        *pool[dest_slot], gp);
    dguest->resume();

    // Tear the source down: stop intercepting, halt the (now stale)
    // source guest, scrub the node for its next lease.
    Vmm &vmm = ref->deployer_->vmm();
    vmm.setGuestWriteHook({});
    vmm.powerOff();
    ref->guest_->halt();
    if (fabric_)
        fabric_->nodeReleased(kPeerMacBase + src_slot);
    pool[src_slot]->disk().store().clear();
    pool[src_slot]->clearProfile();

    ref->oldGuests_.push_back(std::move(ref->guest_));
    ref->guest_ = std::move(dguest);
    ref->machine_ = pool[dest_slot].get();
    ref->rack_ = rackOf(dest_slot);
    ref->state_ = Instance::State::BareMetal;
    sim::inform(name(), ": node ", src_slot, " migrated to node ",
                dest_slot);
    done();
}

} // namespace bmcast
