#include "obs/obs.hh"

namespace obs {

namespace detail {
thread_local bool gArmed = false;
thread_local Tracer *gTracer = nullptr;
thread_local sim::Tick (*gClockFn)(const void *) = nullptr;
thread_local const void *gClockCtx = nullptr;
thread_local Registry *gMetrics = nullptr;
thread_local std::uint64_t gMetricsEpoch = 0;
} // namespace detail

void
arm(Tracer *t)
{
    detail::gTracer = t;
    detail::gArmed = t != nullptr;
    if (t == nullptr) {
        detail::gClockFn = nullptr;
        detail::gClockCtx = nullptr;
    }
}

void
setClock(sim::Tick (*fn)(const void *), const void *ctx)
{
    detail::gClockFn = fn;
    detail::gClockCtx = ctx;
}

void
setMetrics(Registry *r)
{
    detail::gMetrics = r;
    ++detail::gMetricsEpoch;
}

} // namespace obs
