#include "netmed/e1000_ring_port.hh"

#include "simcore/logging.hh"

namespace netmed {

using namespace hw::e1000;
using hw::IoSpace;

E1000RingPort::E1000RingPort(hw::IoBus &bus, hw::PhysMem &mem_,
                             hw::E1000Nic &nic, hw::MemArena &vmm_arena,
                             MedMode mode_)
    : vmmView(bus, /*guestContext=*/false), mem(mem_), nic_(nic),
      mode(mode_)
{
    sTxRing = vmm_arena.alloc(kShadowSize * kDescSize, 128);
    sRxRing = vmm_arena.alloc(kShadowSize * kDescSize, 128);
    sTxBufs = vmm_arena.alloc(kShadowSize * kBufSize, 4096);
    sRxBufs = vmm_arena.alloc(kShadowSize * kBufSize, 4096);
}

void
E1000RingPort::take()
{
    sim::Addr base = nic_.mmioBase();
    sTxTail = sTxClean = sRxHead = 0;
    for (unsigned i = 0; i < kShadowSize; ++i) {
        sim::Addr d = sRxRing + i * kDescSize;
        mem.write64(d, sRxBufs + i * kBufSize);
        mem.write32(d + 8, 0);
        mem.write32(d + 12, 0);
    }
    for (unsigned i = 0; i < kShadowSize; ++i)
        mem.write8(sTxRing + i * kDescSize + 12, 0);
    vmmView.write(IoSpace::Mmio, base + kRdbal,
                  static_cast<std::uint32_t>(sRxRing), 4);
    vmmView.write(IoSpace::Mmio, base + kRdlen,
                  kShadowSize * kDescSize, 4);
    vmmView.write(IoSpace::Mmio, base + kRdh, 0, 4);
    vmmView.write(IoSpace::Mmio, base + kRdt, kShadowSize - 1, 4);
    vmmView.write(IoSpace::Mmio, base + kRctl, kRctlEn, 4);
    vmmView.write(IoSpace::Mmio, base + kTdbal,
                  static_cast<std::uint32_t>(sTxRing), 4);
    vmmView.write(IoSpace::Mmio, base + kTdlen,
                  kShadowSize * kDescSize, 4);
    vmmView.write(IoSpace::Mmio, base + kTdh, 0, 4);
    vmmView.write(IoSpace::Mmio, base + kTdt, 0, 4);
    vmmView.write(IoSpace::Mmio, base + kTctl, kTctlEn, 4);
    if (mode == MedMode::Trap) {
        // The physical interrupt stays armed: the device's IRQ drives
        // the guest's ISR, whose first (intercepted) ICR read is
        // where the core syncs the shadow rings.
        vmmView.write(IoSpace::Mmio, base + kIms,
                      kIcrTxdw | kIcrRxt0, 4);
    } else {
        // Exitless: the sidecore polls; no interrupts at the device.
        vmmView.write(IoSpace::Mmio, base + kImc, ~0u, 4);
    }
}

void
E1000RingPort::release(const GuestRingState &g)
{
    sim::Addr base = nic_.mmioBase();
    // The device transmits asynchronously; shadow descriptors queued
    // just before release (the uninstall drain) have not hit the wire
    // yet, and reprogramming the rings would orphan them. Hand those
    // frames to the port directly: [device TDH, shadow tail) is
    // exactly the un-transmitted window.
    auto tdh_now = static_cast<std::uint32_t>(
        vmmView.read(IoSpace::Mmio, base + kTdh, 4));
    while (tdh_now != sTxTail) {
        sim::Addr d = sTxRing + tdh_now * kDescSize;
        if (!(mem.read8(d + 12) & kDescDd)) {
            sim::Addr buf = mem.read64(d);
            std::uint16_t len = mem.read16(d + 8);
            std::uint16_t special = mem.read16(d + 14);
            net::Frame f;
            std::uint64_t dst = 0, src = 0;
            for (int i = 0; i < 6; ++i) {
                dst = (dst << 8) | mem.read8(buf + i);
                src = (src << 8) | mem.read8(buf + 6 + i);
            }
            f.dst = dst;
            f.src = src;
            f.etherType = static_cast<std::uint16_t>(
                (mem.read8(buf + 12) << 8) | mem.read8(buf + 13));
            f.payload.resize(len > 14 ? len - 14 : 0);
            if (!f.payload.empty())
                mem.read(buf + 14, f.payload.data(),
                         f.payload.size());
            f.padding = sim::Bytes(special) << 3;
            nic_.port().send(std::move(f));
        }
        tdh_now = (tdh_now + 1) % kShadowSize;
    }
    vmmView.write(IoSpace::Mmio, base + kRdbal, g.rdbal, 4);
    vmmView.write(IoSpace::Mmio, base + kRdlen, g.rdlen, 4);
    vmmView.write(IoSpace::Mmio, base + kRdh, g.rdh, 4);
    vmmView.write(IoSpace::Mmio, base + kRdt, g.rdt, 4);
    vmmView.write(IoSpace::Mmio, base + kRctl, g.rctl, 4);
    vmmView.write(IoSpace::Mmio, base + kTdbal, g.tdbal, 4);
    vmmView.write(IoSpace::Mmio, base + kTdlen, g.tdlen, 4);
    vmmView.write(IoSpace::Mmio, base + kTdh, g.tdh, 4);
    vmmView.write(IoSpace::Mmio, base + kTdt, g.tdt, 4);
    vmmView.write(IoSpace::Mmio, base + kTctl, g.tctl, 4);
    vmmView.write(IoSpace::Mmio, base + kIms, g.ims, 4);
}

unsigned
E1000RingPort::reapTx()
{
    unsigned reaped = 0;
    while (sTxClean != sTxTail) {
        sim::Addr d = sTxRing + sTxClean * kDescSize;
        if (!(mem.read8(d + 12) & kDescDd))
            break;
        sTxClean = (sTxClean + 1) % kShadowSize;
        ++reaped;
    }
    return reaped;
}

unsigned
E1000RingPort::txFree()
{
    // Pure read: the core reaps explicitly (so reclaim counts land in
    // its stats); completions only appear between event callbacks.
    unsigned used = (sTxTail + kShadowSize - sTxClean) % kShadowSize;
    return kShadowSize - 1 - used;
}

bool
E1000RingPort::txPush(const net::Frame &frame)
{
    if (txFree() == 0)
        return false;
    sim::Addr buf = sTxBufs + sTxTail * kBufSize;
    sim::Bytes len = 14 + frame.payload.size();
    sim::panicIfNot(len <= kBufSize, "oversize frame in shadow ring");
    for (int i = 0; i < 6; ++i) {
        mem.write8(buf + i, static_cast<std::uint8_t>(
                                frame.dst >> (8 * (5 - i))));
        mem.write8(buf + 6 + i, static_cast<std::uint8_t>(
                                    frame.src >> (8 * (5 - i))));
    }
    mem.write8(buf + 12,
               static_cast<std::uint8_t>(frame.etherType >> 8));
    mem.write8(buf + 13, static_cast<std::uint8_t>(frame.etherType));
    if (!frame.payload.empty())
        mem.write(buf + 14, frame.payload.data(),
                  frame.payload.size());

    sim::Addr d = sTxRing + sTxTail * kDescSize;
    mem.write64(d, buf);
    mem.write16(d + 8, static_cast<std::uint16_t>(len));
    mem.write8(d + 11, kTxCmdEop | kTxCmdRs);
    mem.write8(d + 12, 0);
    mem.write16(d + 14,
                static_cast<std::uint16_t>(frame.padding >> 3));
    sTxTail = (sTxTail + 1) % kShadowSize;
    vmmView.write(IoSpace::Mmio, nic_.mmioBase() + kTdt, sTxTail, 4);
    return true;
}

bool
E1000RingPort::rxPop(net::Frame &frame)
{
    sim::Addr d = sRxRing + sRxHead * kDescSize;
    std::uint8_t st = mem.read8(d + 12);
    if (!(st & kDescDd))
        return false;
    sim::Addr buf = mem.read64(d);
    std::uint16_t len = mem.read16(d + 8);
    std::uint16_t special = mem.read16(d + 14);

    std::uint64_t dst = 0, src = 0;
    for (int i = 0; i < 6; ++i) {
        dst = (dst << 8) | mem.read8(buf + i);
        src = (src << 8) | mem.read8(buf + 6 + i);
    }
    frame.dst = dst;
    frame.src = src;
    frame.etherType = static_cast<std::uint16_t>(
        (mem.read8(buf + 12) << 8) | mem.read8(buf + 13));
    frame.payload.resize(len > 14 ? len - 14 : 0);
    if (!frame.payload.empty())
        mem.read(buf + 14, frame.payload.data(), frame.payload.size());
    frame.padding = sim::Bytes(special) << 3;

    // Return the shadow descriptor to hardware.
    mem.write8(d + 12, 0);
    vmmView.write(IoSpace::Mmio, nic_.mmioBase() + kRdt, sRxHead, 4);
    sRxHead = (sRxHead + 1) % kShadowSize;
    return true;
}

net::MacAddr
E1000RingPort::mac() const
{
    return nic_.port().mac();
}

sim::Bytes
E1000RingPort::mtu() const
{
    return nic_.port().config().mtu;
}

} // namespace netmed
